//! Matrix-expansion properties: determinism, order stability, exclude
//! composition, and the scenario-major key enumeration contract that the
//! sweep journal format relies on.
//!
//! Everything here goes through the public API only ([`MatrixSpec`],
//! [`SweepFile`], [`TrialSet`]) — these are the invariants resume
//! correctness is built on, so they must hold for *arbitrary* matrices,
//! not just the committed smoke file.

use mca_scenario::matrix::{ExcludeFilter, MatrixSpec, SeedsSpec};
use mca_scenario::{DeploymentSpec, Scenario};
use proptest::prelude::*;

/// The base world every matrix in these tests expands: uniform (so the
/// `n` axis is rewritable) with a couple of channels.
fn base() -> Scenario {
    Scenario::builder("matrix-prop")
        .deployment(DeploymentSpec::Uniform { n: 24, side: 6.0 })
        .channels(2)
        .max_slots(50)
        .build()
}

/// A matrix sweeping random (distinct, sorted-by-draw) `n` and `channels`
/// axes with the given excludes.
fn matrix_for(
    ns: Vec<usize>,
    channels: Vec<u16>,
    seeds: SeedsSpec,
    exclude: Vec<ExcludeFilter>,
) -> MatrixSpec {
    let mut m = MatrixSpec {
        seeds,
        exclude,
        ..MatrixSpec::default()
    };
    m.axes.n = Some(ns);
    m.axes.channels = Some(channels);
    m
}

/// Distinct axis values, preserving first-occurrence (file) order.
fn dedup<T: PartialEq + Clone>(values: Vec<T>) -> Vec<T> {
    let mut out: Vec<T> = Vec::new();
    for v in values {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

fn names(scenarios: &[Scenario]) -> Vec<String> {
    scenarios.iter().map(|s| s.name.clone()).collect()
}

fn exclude_n(n: usize) -> ExcludeFilter {
    ExcludeFilter {
        n: Some(n),
        ..ExcludeFilter::default()
    }
}

fn exclude_pair(n: usize, channels: u16) -> ExcludeFilter {
    ExcludeFilter {
        n: Some(n),
        channels: Some(channels),
        ..ExcludeFilter::default()
    }
}

proptest! {
    /// Expanding the same matrix twice yields identical scenario lists —
    /// same names, same order, same contents — and expansion order is the
    /// documented nesting (`n` outermost, then `channels`) over the axis
    /// values in file order.
    #[test]
    fn expansion_is_deterministic_and_order_stable(
        ns in proptest::collection::vec(4usize..64, 1..5),
        chans in proptest::collection::vec(1u16..9, 1..4),
        master in 0u64..u64::MAX,
        count in 1u64..6,
    ) {
        let (ns, chans) = (dedup(ns), dedup(chans));
        let mut m = matrix_for(ns.clone(), chans.clone(), SeedsSpec::Count(count), vec![]);
        m.master_seed = master;
        let base = base();
        let once = m.expand(&base);
        let twice = m.expand(&base);
        prop_assert_eq!(&once, &twice, "expansion must be a pure function of the matrix");
        prop_assert_eq!(once.len(), ns.len() * chans.len());
        // Nesting order: n outermost, channels inner, values in file order.
        for (i, s) in once.iter().enumerate() {
            let (ni, ci) = (i / chans.len(), i % chans.len());
            prop_assert_eq!(s.len(), ns[ni]);
            prop_assert_eq!(s.channels, chans[ci]);
        }
        // Names are unique (the duplicate-name guard never fires on a
        // well-formed matrix), and seeds are stable across calls.
        let mut seen = names(&once);
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), once.len(), "expanded names must be unique");
        prop_assert_eq!(m.seeds(), m.seeds());
        prop_assert_eq!(m.seeds().len(), count as usize);
    }

    /// Exclude filters compose as a union of exclusions: expanding with
    /// `[f, g]` keeps exactly the scenarios kept by *both* `[f]` and
    /// `[g]`, in the order of the unfiltered expansion.
    #[test]
    fn exclude_filters_compose(
        ns in proptest::collection::vec(4usize..64, 2..5),
        chans in proptest::collection::vec(1u16..9, 2..4),
        pick_a in 0usize..8,
        pick_b in 0usize..8,
    ) {
        let (ns, chans) = (dedup(ns), dedup(chans));
        prop_assume!(ns.len() >= 2 && chans.len() >= 2);
        let f = exclude_n(ns[pick_a % ns.len()]);
        let g = exclude_pair(ns[pick_b % ns.len()], chans[pick_b % chans.len()]);
        let base = base();

        let seeds = SeedsSpec::Count(1);
        let all = matrix_for(ns.clone(), chans.clone(), seeds.clone(), vec![]).expand(&base);
        let only_f = matrix_for(ns.clone(), chans.clone(), seeds.clone(), vec![f.clone()])
            .expand(&base);
        let only_g = matrix_for(ns.clone(), chans.clone(), seeds.clone(), vec![g.clone()])
            .expand(&base);
        let both = matrix_for(ns.clone(), chans.clone(), seeds, vec![f, g]).expand(&base);

        let (fset, gset) = (names(&only_f), names(&only_g));
        let expect: Vec<String> = names(&all)
            .into_iter()
            .filter(|name| fset.contains(name) && gset.contains(name))
            .collect();
        prop_assert_eq!(names(&both), expect, "excludes must compose as a union");
        // Single-filter sanity: f alone removes exactly one n-row.
        prop_assert_eq!(only_f.len(), (ns.len() - 1) * chans.len());
    }

    /// The trial-set key enumeration is scenario-major and round-trips
    /// through `position` — the invariant that makes the sweep journal a
    /// prefix of the enumeration.
    #[test]
    fn trial_set_keys_enumerate_scenario_major(
        ns in proptest::collection::vec(4usize..64, 1..4),
        seeds in proptest::collection::vec(0u64..u64::MAX, 1..5),
    ) {
        let ns = dedup(ns);
        let seeds = dedup(seeds);
        let m = matrix_for(ns, vec![1, 2], SeedsSpec::List(seeds.clone()), vec![]);
        let base = base();
        let scenarios = m.expand(&base);
        let set = mca_scenario::TrialSet::new(scenarios.clone(), seeds.clone()).unwrap();
        prop_assert_eq!(set.len(), scenarios.len() * seeds.len());
        for (i, key) in set.keys().enumerate() {
            prop_assert_eq!(&key.scenario_id, &scenarios[i / seeds.len()].name);
            prop_assert_eq!(key.seed, seeds[i % seeds.len()]);
            prop_assert_eq!(&key, &set.key_at(i));
            prop_assert_eq!(set.position(&key), Some(i));
            // The journal line format round-trips every key of the set.
            let line = key.journal_line();
            let parsed = mca_scenario::TrialKey::parse_journal_line(&line);
            prop_assert_eq!(parsed.as_ref(), Some(&key));
        }
    }
}
