//! Adversary-world properties: TOML round-trips for the `[adversary]` /
//! `[duty_cycle]` tables, and bit-determinism of adversarial simulations
//! under `MCA_FORCE_PAR=1`.
//!
//! Lives in its own test binary: the force-par override is read once per
//! process, so it must be set before the first `Engine` is built and
//! would leak into unrelated tests otherwise. Every test here sets it at
//! entry, so whichever runs first still forces the fan-out for all.

use mca_radio::{Action, Channel, ChannelCondition, Observation, Protocol};
use mca_scenario::{AdversarySpec, DeploymentSpec, DutyCycleSpec, Scenario, ScenarioSim};
use proptest::prelude::*;
use proptest::TestCaseError;
use rand::rngs::SmallRng;

fn force_par() {
    std::env::set_var("MCA_FORCE_PAR", "1");
}

fn tracking_jammer_for(
    epoch: u64,
    radius: f64,
    speed: f64,
    chan_sel: u16,
    channels: u16,
) -> AdversarySpec {
    AdversarySpec::TrackingJammer {
        epoch,
        radius,
        speed,
        // chan_sel doubles as the Some/None switch: half the draws jam
        // one (in-range) channel, the other half jam the whole spectrum.
        channel: (chan_sel % 2 == 0).then_some(chan_sel % channels),
    }
}

fn correlated_fading_for(p0: f64, p1: f64, corr: f64, power: f64, drop: bool) -> AdversarySpec {
    AdversarySpec::CorrelatedFading {
        p_degrade: p0,
        p_recover: p1,
        correlation: corr,
        bad: ChannelCondition {
            extra_interference: power,
            drop,
        },
    }
}

fn duty_cycle_for(period: u64, on_frac: u64, stride: u64, nodes_sel: u64) -> DutyCycleSpec {
    DutyCycleSpec {
        period,
        on: (on_frac % period).max(1),
        stride,
        nodes: (nodes_sel % 2 == 0).then_some((nodes_sel % 64) as usize),
    }
}

// ---------------------------------------------------------------------------
// Property: the adversary and duty-cycle tables round-trip through TOML.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn adversary_and_duty_cycle_round_trip_through_toml(
        (sel, chan_sel, channels) in (0u8..3, 0u16..100, 1u16..9),
        (epoch, radius, speed) in (1u64..200, 0.1..6.0f64, 0.0..1.5f64),
        (p0, p1, corr) in (0.0..=1.0f64, 0.0..=1.0f64, 0.0..=1.0f64),
        (power, drop) in (0.0..200.0f64, 0u8..2),
        (period, on_frac, stride, nodes_sel) in (1u64..80, 0u64..80, 0u64..20, 0u64..100),
    ) {
        let adversary = match sel {
            0 => tracking_jammer_for(epoch, radius, speed, chan_sel, channels),
            1 => correlated_fading_for(p0, p1, corr, power, drop == 1),
            _ => correlated_fading_for(p0, p1, corr, 0.0, true),
        };
        let scenario = Scenario::builder("adversary-prop")
            .deployment(DeploymentSpec::Uniform { n: 30, side: 8.0 })
            .adversary(adversary)
            .duty_cycle(duty_cycle_for(period, on_frac, stride, nodes_sel))
            .channels(channels)
            .max_slots(100)
            .build();

        let text = scenario.to_toml();
        let back = Scenario::from_toml_str(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- TOML ---\n{text}")))?;
        prop_assert_eq!(&back, &scenario, "emitted TOML:\n{}", text);
        prop_assert_eq!(back.to_toml(), text, "second emission drifted");
    }
}

// ---------------------------------------------------------------------------
// Property: adversarial trials are bit-deterministic under forced fan-out.
// ---------------------------------------------------------------------------

/// A fixed beacon mesh (the adversary bench's workload in miniature):
/// every fifth node transmits each slot, the rest listen, so the jammer
/// always has traffic to destroy and sleepers always have slots to miss.
struct Beacon {
    tx: Option<Channel>,
    listen: Channel,
    heard: u64,
}

impl Protocol for Beacon {
    type Msg = u32;
    fn act(&mut self, _slot: u64, _rng: &mut SmallRng) -> Action<u32> {
        match self.tx {
            Some(channel) => Action::Transmit { channel, msg: 0 },
            None => Action::Listen {
                channel: self.listen,
            },
        }
    }
    fn observe(&mut self, _slot: u64, obs: Observation<u32>, _rng: &mut SmallRng) {
        if matches!(obs, Observation::Received(_)) {
            self.heard += 1;
        }
    }
}

fn beacon_for(i: usize, channels: u16) -> Beacon {
    Beacon {
        tx: (i % 5 == 0).then_some(Channel((i / 5) as u16 % channels)),
        listen: Channel(i as u16 % channels),
        heard: 0,
    }
}

/// Runs `scenario` to completion and fingerprints everything the
/// environment decided: engine metrics plus each node's reception count.
fn fingerprint(scenario: &Scenario, seed: u64) -> (u64, u64, u64, Vec<u64>) {
    let channels = scenario.channels;
    let mut sim = ScenarioSim::new(scenario, seed, |i, _| beacon_for(i, channels));
    sim.run(scenario.max_slots);
    let m = sim.metrics();
    let (rx, busy, drops) = (m.receptions, m.busy_failures, m.env_drops);
    let heard = sim.protocols().iter().map(|p| p.heard).collect();
    (rx, busy, drops, heard)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random tracking-jammer worlds replay bit-identically with the
    /// parallel fan-out forced on — the jammer draws no randomness and
    /// shard order never leaks into outcomes.
    #[test]
    fn tracking_jammer_worlds_replay_bit_identically_under_forced_par(
        (n, channels, seed) in (20usize..50, 2u16..5, 0u64..u64::MAX),
        (epoch, radius, speed) in (5u64..40, 0.5..3.0f64, 0.0..0.6f64),
        chan_sel in 0u16..100,
    ) {
        force_par();
        let scenario = Scenario::builder("tj-prop")
            .deployment(DeploymentSpec::Uniform { n, side: 8.0 })
            .adversary(tracking_jammer_for(epoch, radius, speed, chan_sel, channels))
            .channels(channels)
            .max_slots(120)
            .build();
        prop_assert_eq!(fingerprint(&scenario, seed), fingerprint(&scenario, seed));
    }

    /// Random duty-cycle worlds likewise: the sleep schedule is a pure
    /// function of `(period, on, stride)`, so forced-par replays agree
    /// down to each node's per-slot reception history.
    #[test]
    fn duty_cycle_worlds_replay_bit_identically_under_forced_par(
        (n, channels, seed) in (20usize..50, 2u16..5, 0u64..u64::MAX),
        (period, on_frac, stride) in (4u64..48, 1u64..48, 1u64..11),
    ) {
        force_par();
        let scenario = Scenario::builder("dc-prop")
            .deployment(DeploymentSpec::Uniform { n, side: 8.0 })
            .duty_cycle(duty_cycle_for(period, on_frac, stride, 1))
            .channels(channels)
            .max_slots(120)
            .build();
        prop_assert_eq!(fingerprint(&scenario, seed), fingerprint(&scenario, seed));
    }
}
