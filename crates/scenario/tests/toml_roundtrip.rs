//! Scenario ⇄ TOML round-trip properties, the pinned golden file, and
//! malformed-input error quality.

use mca_geom::{BoundingBox, Point};
use mca_radio::{FaultPlan, JamSpec};
use mca_scenario::{
    builtin_scenarios, ChurnSpec, DeploymentSpec, FadingSpec, MobilitySpec, Scenario,
};
use mca_sinr::{ResolveMode, SinrParams};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Property: Scenario -> TOML -> Scenario is the identity, across every
// deployment / mobility / fading / churn / fault variant.
// ---------------------------------------------------------------------------

fn deployment_for(sel: u8, n: usize, a: f64, b: f64) -> DeploymentSpec {
    match sel {
        0 => DeploymentSpec::Uniform { n, side: a },
        1 => DeploymentSpec::Disk { n, radius: a },
        2 => DeploymentSpec::Grid {
            nx: (n % 7) + 1,
            ny: (n % 5) + 1,
            step: a,
            jitter: b / 10.0,
        },
        3 => DeploymentSpec::Line { n, spacing: a },
        4 => DeploymentSpec::Corridor {
            n,
            length: a,
            width: b,
        },
        _ => DeploymentSpec::Explicit(
            (0..n.min(8))
                .map(|i| Point::new(a * i as f64, b - i as f64))
                .collect(),
        ),
    }
}

fn mobility_for(sel: u8, lo: f64, hi: f64, pause: u64) -> MobilitySpec {
    match sel {
        0 => MobilitySpec::Static,
        1 => MobilitySpec::RandomWaypoint {
            speed_min: lo.min(hi),
            speed_max: lo.max(hi),
            pause,
        },
        _ => MobilitySpec::Convoy {
            groups: (pause as usize % 4) + 1,
            speed: hi,
            spread: lo,
            pause,
        },
    }
}

/// Node ids must stay inside the deployment (`< n_nodes`) — the decoder
/// rejects out-of-range ids, so the generator only produces valid ones.
fn churn_for(sel: u8, frac: f64, w0: u64, w1: u64, n_nodes: usize) -> ChurnSpec {
    let top = (n_nodes as u32).saturating_sub(1);
    match sel {
        0 => ChurnSpec::None,
        1 => ChurnSpec::Random {
            join_fraction: frac,
            join_window: (w0.min(w1), w0.max(w1)),
            crash_fraction: 1.0 - frac,
            crash_window: (w0.min(w1), w0.max(w1) + 10),
        },
        _ => ChurnSpec::Explicit {
            joins: vec![(0, w0), (top, w1)],
            crashes: vec![(top / 2, w0.max(w1))],
        },
    }
}

/// Jam channels likewise must stay inside the scenario's channel count.
fn faults_for(sel: u8, seed: u64, power: f64, n_nodes: usize, channels: u16) -> FaultPlan {
    let mut plan = FaultPlan::none();
    let node = |k: u64| (k % n_nodes as u64) as u32;
    match sel {
        0 => {}
        1 => {
            plan.crash_at(node(seed), seed % 300);
            plan.jam(JamSpec::Fixed {
                channel: (seed % channels as u64) as u16,
                from: 5,
                to: 5 + (seed % 100),
                power,
            });
        }
        _ => {
            plan.join_at(node(seed >> 8), seed % 50);
            plan.jam(JamSpec::Random {
                t: 1,
                total: channels,
                power,
                seed,
            });
        }
    }
    plan
}

proptest! {
    #[test]
    fn scenario_round_trips_through_toml(
        (dep_sel, mob_sel, churn_sel, fault_sel) in (0u8..6, 0u8..3, 0u8..3, 0u8..3),
        (n, a, b) in (1usize..40, 0.5..25.0f64, 0.5..15.0f64),
        (lo, hi, frac) in (0.0..0.5f64, 0.0..2.0f64, 0.0..1.0f64),
        (pause, w0, w1, seed) in (0u64..12, 0u64..200, 0u64..200, 0u64..u64::MAX),
        (channels, slots) in (1u16..17, 1u64..5_000),
        (with_area, with_fading, drop, par, fast) in (0u8..2, 0u8..2, 0u8..2, 0u8..2, 0u8..2),
    ) {
        let deployment = deployment_for(dep_sel, n, a, b);
        let n_nodes = deployment.len().max(1);
        let mut builder = Scenario::builder("prop-world")
            .deployment(deployment)
            .mobility(mobility_for(mob_sel, lo, hi, pause))
            .churn(churn_for(churn_sel, frac, w0, w1, n_nodes))
            .faults(faults_for(fault_sel, seed, 1.0 + a, n_nodes, channels))
            .channels(channels)
            .max_slots(slots)
            .par_channels(par == 1);
        if with_area == 1 {
            builder = builder.area(BoundingBox::new(
                Point::new(-a, -b),
                Point::new(a + 1.0, b + 2.0),
            ));
        }
        if with_fading == 1 {
            builder = builder.fading(FadingSpec {
                p_degrade: frac,
                p_recover: 1.0 - frac,
                bad: if drop == 1 {
                    mca_radio::ChannelCondition::dropped(b)
                } else {
                    mca_radio::ChannelCondition::interfered(b)
                },
            });
        }
        if fast == 1 {
            builder = builder.resolve_mode(ResolveMode::Fast { cutoff_factor: 1.0 + frac });
        }
        let scenario = builder.build();

        let text = scenario.to_toml();
        let back = Scenario::from_toml_str(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- TOML ---\n{text}")))?;
        prop_assert_eq!(&back, &scenario, "emitted TOML:\n{}", text);

        // Emission is stable: a second round-trip produces identical bytes.
        prop_assert_eq!(back.to_toml(), text);
    }

    #[test]
    fn sinr_params_round_trip_bitwise(
        alpha in 2.01..6.0f64,
        beta in 1.0..4.0f64,
        noise in 0.01..10.0f64,
        range in 0.5..50.0f64,
        eps in 0.01..0.99f64,
    ) {
        let params = SinrParams::with_range(alpha, beta, noise, range, eps);
        let scenario = Scenario::builder("phys").sinr(params).build();
        let back = Scenario::from_toml_str(&scenario.to_toml()).unwrap();
        // Float fields survive bit-for-bit, so derived radii match exactly.
        prop_assert_eq!(back.params.power.to_bits(), params.power.to_bits());
        prop_assert_eq!(
            back.params.transmission_range().to_bits(),
            params.transmission_range().to_bits()
        );
    }
}

use proptest::TestCaseError;

// ---------------------------------------------------------------------------
// Golden file: the emitted bytes of a built-in scenario are pinned.
// ---------------------------------------------------------------------------

#[test]
fn golden_static_uniform_emission_is_pinned() {
    let entry = &builtin_scenarios()[0];
    assert_eq!(entry.scenario.name, "static-uniform");
    let golden = include_str!("golden/static-uniform.toml");
    assert_eq!(
        entry.file_contents(),
        golden,
        "emitter layout changed; update tests/golden/static-uniform.toml \
         and the committed scenarios/ catalog (experiments export-scenarios)"
    );
}

#[test]
fn committed_catalog_matches_the_builtin_scenarios() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    for entry in builtin_scenarios() {
        let path = dir.join(entry.file_name());
        let loaded = Scenario::load(&path)
            .unwrap_or_else(|e| panic!("{e} (run `experiments export-scenarios`)"));
        assert_eq!(
            loaded,
            entry.scenario,
            "{} drifted from the catalog (run `experiments export-scenarios`)",
            path.display()
        );
        // The committed bytes are exactly what export writes.
        let committed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            committed,
            entry.file_contents(),
            "{} bytes drifted (run `experiments export-scenarios`)",
            path.display()
        );
    }
}

// ---------------------------------------------------------------------------
// Malformed inputs: every error names the line and the field.
// ---------------------------------------------------------------------------

const VALID_TAIL: &str = "[deployment]\nkind = \"uniform\"\nn = 10\nside = 5.0\n";

#[test]
fn malformed_inputs_report_line_and_field() {
    // (source, expected line, expected path, expected message fragment)
    let cases: &[(String, usize, &str, &str)] = &[
        (
            format!("name = \"x\"\ntypo = 1\n{VALID_TAIL}"),
            2,
            "typo",
            "unknown field",
        ),
        (
            format!("name = \"x\"\n[sinr]\nbeta = 0.5\n{VALID_TAIL}"),
            3,
            "sinr.beta",
            "at least 1",
        ),
        (
            format!("name = \"x\"\n[sinr]\nnoise = -1.0\n{VALID_TAIL}"),
            3,
            "sinr.noise",
            "positive",
        ),
        (
            format!("name = \"x\"\n[sinr]\neps = 1.5\n{VALID_TAIL}"),
            3,
            "sinr.eps",
            "(0, 1)",
        ),
        (
            "name = \"x\"\n[deployment]\nkind = \"uniform\"\nside = 5.0\n".to_string(),
            2,
            "deployment.n",
            "missing required field",
        ),
        (
            "name = \"x\"\n[deployment]\nkind = \"uniform\"\nn = 10\nside = \"wide\"\n".to_string(),
            5,
            "deployment.side",
            "expected a number",
        ),
        (
            "name = \"x\"\n[deployment]\nkind = \"blob\"\n".to_string(),
            3,
            "deployment.kind",
            "unknown deployment kind",
        ),
        (
            format!(
                "name = \"x\"\n{VALID_TAIL}[mobility]\nkind = \"random-waypoint\"\n\
                 speed_min = 2.0\nspeed_max = 1.0\n"
            ),
            9,
            "mobility.speed_max",
            "at least speed_min",
        ),
        (
            format!("name = \"x\"\n{VALID_TAIL}[fading]\np_degrade = 1.5\np_recover = 0.5\npower = 1.0\n"),
            7,
            "fading.p_degrade",
            "[0, 1]",
        ),
        (
            format!("name = \"x\"\n{VALID_TAIL}[churn]\nkind = \"explicit\"\njoins = [[1, 2, 3]]\n"),
            8,
            "churn.joins[0]",
            "[node, slot]",
        ),
        (
            format!("name = \"x\"\n{VALID_TAIL}[faults]\ncrashes = [[-1, 5]]\n"),
            7,
            "faults.crashes[0]",
            "out of range",
        ),
        (
            format!("name = \"x\"\n{VALID_TAIL}[[faults.jam]]\nkind = \"fixed\"\nchannel = 0\n"),
            6,
            "faults.jam[0].power",
            "missing required field",
        ),
        (
            format!("name = \"x\"\nchannels = 0\n{VALID_TAIL}"),
            2,
            "channels",
            "at least 1",
        ),
        (
            format!("name = \"x\"\n{VALID_TAIL}[faults]\ncrashes = [[99, 5]]\n"),
            7,
            "faults.crashes[0]",
            "out of range for a 10-node deployment",
        ),
        (
            format!(
                "name = \"x\"\nchannels = 2\n{VALID_TAIL}[[faults.jam]]\nkind = \"fixed\"\nchannel = 5\npower = 1.0\n"
            ),
            9,
            "faults.jam[0].channel",
            "out of range for 2 channels",
        ),
        (
            format!("name = \"x\"\n[sinr]\nrange = 1e200\n{VALID_TAIL}"),
            3,
            "sinr.range",
            "derived transmission power",
        ),
    ];
    for (src, line, path, fragment) in cases {
        let e = Scenario::from_toml_str(src).expect_err(src);
        assert_eq!(e.line, *line, "line of {e} for\n{src}");
        assert_eq!(e.path, *path, "path of {e} for\n{src}");
        assert!(
            e.message.contains(fragment),
            "message {e:?} lacks `{fragment}`"
        );
        // The rendered form shows both coordinates.
        let shown = e.to_string();
        assert!(shown.contains(&format!("line {line}")), "{shown}");
        assert!(shown.contains(path.split('[').next().unwrap()), "{shown}");
    }
}

#[test]
fn syntax_errors_report_the_line() {
    let cases: &[(&str, usize)] = &[
        ("name = \"x\"\n[deployment\nkind = \"uniform\"\n", 2),
        ("name = \"x\"\nn = = 1\n", 2),
        ("name = \"unterminated\nn = 1\n", 1),
        ("name = \"x\"\nn = [1, \n", 3),
    ];
    for (src, line) in cases {
        let e = Scenario::from_toml_str(src).expect_err(src);
        assert_eq!(e.line, *line, "{e} for\n{src}");
    }
}

#[test]
fn duplicate_sections_rejected() {
    let e = Scenario::from_toml_str(&format!(
        "name = \"x\"\n{VALID_TAIL}[sinr]\nalpha = 3.0\n[sinr]\nbeta = 1.5\n"
    ))
    .expect_err("duplicate [sinr]");
    assert_eq!(e.path, "sinr");
    assert!(e.message.contains("twice"), "{e}");
}
