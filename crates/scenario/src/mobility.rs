//! Mobility models: random waypoint and group convoy.
//!
//! Both are classic MANET workloads (see Islam & Shaikh's survey of ad hoc
//! network research trends): *random waypoint* moves every node
//! independently toward uniformly drawn targets with per-leg speeds and
//! pauses; *group convoy* (reference-point group mobility) moves a few
//! group centers by random waypoint while members hold formation offsets
//! around their center. All positions are clamped to the deployment area
//! via [`BoundingBox::clamp`].

use crate::environment::{EnvironmentModel, World};
use mca_geom::{BoundingBox, Point};
use rand::rngs::SmallRng;
use rand::Rng;

/// Per-entity waypoint state: where it is headed and how fast.
#[derive(Debug, Clone, Copy)]
struct Leg {
    target: Point,
    speed: f64,
    pause_left: u64,
}

fn fresh_leg(area: &BoundingBox, speed_min: f64, speed_max: f64, rng: &mut SmallRng) -> Leg {
    let target = Point::new(
        rng.gen_range(area.min().x..=area.max().x),
        rng.gen_range(area.min().y..=area.max().y),
    );
    let speed = if speed_max > speed_min {
        rng.gen_range(speed_min..speed_max)
    } else {
        speed_min
    };
    Leg {
        target,
        speed,
        pause_left: 0,
    }
}

/// Advances `pos` one slot along its leg; returns `true` when the leg ended
/// (arrival) and a new target is needed.
fn advance(pos: &mut Point, leg: &mut Leg, area: &BoundingBox, pause: u64) -> bool {
    if leg.pause_left > 0 {
        leg.pause_left -= 1;
        return false;
    }
    let dist = pos.dist(leg.target);
    if dist <= leg.speed {
        *pos = area.clamp(leg.target);
        leg.pause_left = pause;
        return true;
    }
    let t = leg.speed / dist;
    *pos = area.clamp(pos.lerp(leg.target, t));
    false
}

/// Independent random-waypoint mobility for every node.
pub struct RandomWaypoint {
    area: BoundingBox,
    speed_min: f64,
    speed_max: f64,
    pause: u64,
    legs: Vec<Leg>,
}

impl RandomWaypoint {
    /// A waypoint process for `n` nodes inside `area` with per-leg speeds
    /// drawn from `[speed_min, speed_max]` (distance units per slot) and a
    /// `pause`-slot dwell at each waypoint.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ speed_min ≤ speed_max`.
    pub fn new(
        area: BoundingBox,
        n: usize,
        speed_min: f64,
        speed_max: f64,
        pause: u64,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(
            (0.0 <= speed_min) && (speed_min <= speed_max),
            "need 0 <= speed_min <= speed_max"
        );
        let legs = (0..n)
            .map(|_| fresh_leg(&area, speed_min, speed_max, rng))
            .collect();
        RandomWaypoint {
            area,
            speed_min,
            speed_max,
            pause,
            legs,
        }
    }

    /// The deployment area nodes are confined to.
    pub fn area(&self) -> BoundingBox {
        self.area
    }
}

impl EnvironmentModel for RandomWaypoint {
    fn step(&mut self, _slot: u64, world: &mut World<'_>) {
        for (i, leg) in self.legs.iter_mut().enumerate() {
            if i >= world.positions.len() {
                break;
            }
            if advance(&mut world.positions[i], leg, &self.area, self.pause) {
                *leg = Leg {
                    pause_left: leg.pause_left,
                    ..fresh_leg(&self.area, self.speed_min, self.speed_max, world.rng)
                };
            }
        }
    }

    fn is_static(&self) -> bool {
        self.speed_max == 0.0
    }
}

/// Group-convoy (reference-point group) mobility: group centers follow
/// random waypoint; each member keeps a fixed formation offset from its
/// center (assignment: node `i` belongs to group `i % groups`).
pub struct GroupConvoy {
    area: BoundingBox,
    pause: u64,
    centers: Vec<Point>,
    center_legs: Vec<Leg>,
    speed: f64,
    offsets: Vec<Point>,
}

impl GroupConvoy {
    /// A convoy of `groups` groups over `n` nodes inside `area`, centers
    /// moving at `speed` units/slot, members offset up to `spread` from
    /// their center.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0`, `speed < 0`, or `spread < 0`.
    pub fn new(
        area: BoundingBox,
        n: usize,
        groups: usize,
        speed: f64,
        spread: f64,
        pause: u64,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(groups > 0, "need at least one group");
        assert!(speed >= 0.0 && spread >= 0.0);
        let centers: Vec<Point> = (0..groups)
            .map(|_| {
                Point::new(
                    rng.gen_range(area.min().x..=area.max().x),
                    rng.gen_range(area.min().y..=area.max().y),
                )
            })
            .collect();
        let center_legs = (0..groups)
            .map(|_| fresh_leg(&area, speed, speed, rng))
            .collect();
        let offsets = (0..n)
            .map(|_| {
                let r = spread * rng.gen_range(0.0f64..1.0).sqrt();
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                Point::unit(theta) * r
            })
            .collect();
        GroupConvoy {
            area,
            pause,
            centers,
            center_legs,
            speed,
            offsets,
        }
    }

    /// The group index of node `i`.
    pub fn group_of(&self, i: usize) -> usize {
        i % self.centers.len()
    }

    /// Current group-center positions.
    pub fn centers(&self) -> &[Point] {
        &self.centers
    }
}

impl EnvironmentModel for GroupConvoy {
    fn step(&mut self, _slot: u64, world: &mut World<'_>) {
        for (g, leg) in self.center_legs.iter_mut().enumerate() {
            if advance(&mut self.centers[g], leg, &self.area, self.pause) {
                *leg = Leg {
                    pause_left: leg.pause_left,
                    ..fresh_leg(&self.area, self.speed, self.speed, world.rng)
                };
            }
        }
        for (i, pos) in world.positions.iter_mut().enumerate() {
            let g = i % self.centers.len();
            *pos = self.area.clamp(self.centers[g] + self.offsets[i]);
        }
    }

    fn is_static(&self) -> bool {
        self.speed == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_radio::FaultPlan;
    use rand::SeedableRng;

    fn drive<E: EnvironmentModel>(env: &mut E, positions: &mut Vec<Point>, slots: u64, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut conds = Vec::new();
        let mut faults = FaultPlan::none();
        for s in 0..slots {
            env.step(
                s,
                &mut World {
                    positions,
                    conditions: &mut conds,
                    faults: &mut faults,
                    rng: &mut rng,
                },
            );
        }
    }

    #[test]
    fn waypoint_stays_in_area_and_moves() {
        let area = BoundingBox::square(10.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut positions = vec![Point::new(5.0, 5.0); 20];
        let mut env = RandomWaypoint::new(area, 20, 0.1, 0.5, 2, &mut rng);
        let start = positions.clone();
        drive(&mut env, &mut positions, 200, 4);
        assert!(positions.iter().all(|p| area.contains(*p)));
        assert!(
            positions.iter().zip(&start).any(|(a, b)| a.dist(*b) > 1.0),
            "200 slots at up to 0.5 u/slot must move someone"
        );
    }

    #[test]
    fn waypoint_speed_bounds_hold_per_slot() {
        let area = BoundingBox::square(50.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 10;
        let mut positions = vec![Point::new(25.0, 25.0); n];
        let vmax = 0.7;
        let mut env = RandomWaypoint::new(area, n, 0.2, vmax, 0, &mut rng);
        let mut env_rng = SmallRng::seed_from_u64(6);
        let mut conds = Vec::new();
        let mut faults = FaultPlan::none();
        for s in 0..100 {
            let before = positions.clone();
            env.step(
                s,
                &mut World {
                    positions: &mut positions,
                    conditions: &mut conds,
                    faults: &mut faults,
                    rng: &mut env_rng,
                },
            );
            for (a, b) in before.iter().zip(&positions) {
                assert!(
                    a.dist(*b) <= vmax + 1e-9,
                    "slot speed exceeded: {}",
                    a.dist(*b)
                );
            }
        }
    }

    #[test]
    fn zero_speed_waypoint_is_static() {
        let area = BoundingBox::square(10.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let env = RandomWaypoint::new(area, 5, 0.0, 0.0, 0, &mut rng);
        assert!(env.is_static());
    }

    #[test]
    fn convoy_members_track_their_center() {
        let area = BoundingBox::square(30.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 12;
        let spread = 2.0;
        let mut env = GroupConvoy::new(area, n, 3, 0.4, spread, 0, &mut rng);
        let mut positions = vec![Point::ORIGIN; n];
        drive(&mut env, &mut positions, 50, 10);
        for (i, p) in positions.iter().enumerate() {
            let c = env.centers()[env.group_of(i)];
            // Offset ≤ spread, up to clamping at the boundary.
            assert!(
                p.dist(c) <= spread + 1e-9 || !area.contains(c + (*p - c) * 1.01),
                "member {i} strayed {} from its center",
                p.dist(c)
            );
            assert!(area.contains(*p));
        }
    }

    #[test]
    fn mobility_is_deterministic_in_seed() {
        let area = BoundingBox::square(20.0);
        let run = || {
            let mut rng = SmallRng::seed_from_u64(11);
            let mut env = RandomWaypoint::new(area, 8, 0.1, 0.3, 1, &mut rng);
            let mut positions = vec![Point::new(10.0, 10.0); 8];
            drive(&mut env, &mut positions, 120, 12);
            positions
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
