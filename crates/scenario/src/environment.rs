//! The per-slot environment hook.
//!
//! An [`EnvironmentModel`] is evaluated once before every engine slot and
//! may rewrite anything in the [`World`]: node positions (mobility),
//! per-channel [`ChannelCondition`]s (fading), or the fault plan (churn).
//! All randomness flows through the world's RNG — a dedicated stream
//! derived from the trial's master seed — so a run remains a pure function
//! of `(scenario, seed)`.

use mca_geom::Point;
use mca_radio::{ChannelCondition, FaultPlan};
use rand::rngs::SmallRng;

/// Everything an environment model may mutate between slots.
pub struct World<'a> {
    /// Node positions (index = node id).
    pub positions: &'a mut [Point],
    /// Per-channel dynamic conditions (index = channel; missing = clear).
    pub conditions: &'a mut Vec<ChannelCondition>,
    /// The fault plan — environment-driven churn adds crashes/joins here.
    pub faults: &'a mut FaultPlan,
    /// The environment's RNG stream for this trial.
    pub rng: &'a mut SmallRng,
}

/// A dynamic-environment process, evaluated once per slot.
///
/// Implementations must draw randomness only from [`World::rng`] so that
/// trials replay deterministically.
pub trait EnvironmentModel: Send {
    /// Mutates the world before engine slot `slot` executes.
    fn step(&mut self, slot: u64, world: &mut World<'_>);

    /// Whether this model never changes the world. The scenario driver may
    /// skip evaluation entirely for static models, which guarantees
    /// bit-identical behavior to a plain [`mca_radio::Engine`] run.
    fn is_static(&self) -> bool {
        false
    }
}

/// The do-nothing environment: a static world.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticEnvironment;

impl EnvironmentModel for StaticEnvironment {
    fn step(&mut self, _slot: u64, _world: &mut World<'_>) {}

    fn is_static(&self) -> bool {
        true
    }
}

/// Runs several environment models in sequence each slot (e.g. mobility
/// followed by fading).
#[derive(Default)]
pub struct CompositeEnvironment {
    models: Vec<Box<dyn EnvironmentModel>>,
}

impl CompositeEnvironment {
    /// An empty composite (static until models are added).
    pub fn new() -> Self {
        CompositeEnvironment::default()
    }

    /// Appends a model, evaluated after the ones already present.
    pub fn push(&mut self, model: Box<dyn EnvironmentModel>) {
        self.models.push(model);
    }

    /// Number of component models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the composite has no component models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

impl EnvironmentModel for CompositeEnvironment {
    fn step(&mut self, slot: u64, world: &mut World<'_>) {
        for m in &mut self.models {
            m.step(slot, world);
        }
    }

    fn is_static(&self) -> bool {
        self.models.iter().all(|m| m.is_static())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct Nudge;
    impl EnvironmentModel for Nudge {
        fn step(&mut self, _slot: u64, world: &mut World<'_>) {
            world.positions[0].x += 1.0;
        }
    }

    fn world_fixture() -> (Vec<Point>, Vec<ChannelCondition>, FaultPlan, SmallRng) {
        (
            vec![Point::ORIGIN],
            Vec::new(),
            FaultPlan::none(),
            SmallRng::seed_from_u64(1),
        )
    }

    #[test]
    fn static_is_static_and_inert() {
        let (mut p, mut c, mut f, mut r) = world_fixture();
        let mut env = StaticEnvironment;
        assert!(env.is_static());
        env.step(
            0,
            &mut World {
                positions: &mut p,
                conditions: &mut c,
                faults: &mut f,
                rng: &mut r,
            },
        );
        assert_eq!(p[0], Point::ORIGIN);
        assert!(f.is_trivial());
    }

    #[test]
    fn composite_runs_in_order_and_reports_staticness() {
        let mut env = CompositeEnvironment::new();
        assert!(env.is_static(), "empty composite is static");
        env.push(Box::new(StaticEnvironment));
        assert!(env.is_static());
        env.push(Box::new(Nudge));
        assert!(!env.is_static());
        assert_eq!(env.len(), 2);

        let (mut p, mut c, mut f, mut r) = world_fixture();
        env.step(
            0,
            &mut World {
                positions: &mut p,
                conditions: &mut c,
                faults: &mut f,
                rng: &mut r,
            },
        );
        assert_eq!(p[0].x, 1.0);
    }
}
