//! `[matrix]` sweep expansion: one TOML file → a named [`TrialSet`].
//!
//! A sweep file is an ordinary scenario file (see `docs/SCENARIO_FORMAT.md`)
//! plus an optional `[matrix]` table describing the axes to sweep:
//!
//! ```toml
//! name = "sweep-base"
//! channels = 4
//! [deployment]
//! kind = "uniform"
//! n = 50
//! side = 8.0
//!
//! [matrix]
//! seeds = 3                       # count (derived) — or an explicit list
//! exclude = [{ n = 100, channels = 1 }]
//! [matrix.axes]
//! n = [50, 100]                   # list, or { from = 50, to = 200, step = 50 }
//! channels = [1, 4]
//! ```
//!
//! Expansion is deterministic and order-stable: combinations enumerate
//! with `n` as the outermost axis, then `channels`, `speed`, `fading`,
//! each axis's values in file order; every combination becomes one
//! scenario whose name is the base name plus one suffix per swept axis
//! (`-n100-c4-v0.2-p0.05`). `exclude` filters are partial combinations —
//! a combination is dropped when *any* filter matches it on every axis
//! the filter names (filters compose as an OR of ANDs). The expanded
//! scenarios × seeds form the [`TrialSet`] that `experiments sweep`
//! executes and journals.
//!
//! Validation follows the scenario loader's discipline: every error
//! carries the source line and the dotted path of the offending field
//! (`matrix.axes.speed`, `matrix.exclude[1].n`, …), and axes are checked
//! against the base scenario at decode time — an `n` axis requires a
//! deployment kind with a rewritable node count, `speed` requires mobility,
//! `fading` requires a base `[fading]` table to rescale.

use crate::runner::{TrialSet, TrialSetError};
use crate::spec::{DeploymentSpec, MobilitySpec, Scenario};
use crate::toml::ScenarioFileError;
use mca_analysis::trial_seed;
use mca_serde::{parse, Fields, FromToml, Kind, Table, TomlError, Value};
use std::path::Path;

/// Default master seed for derived seed lists (matches [`crate::ScenarioRunner`]).
const DEFAULT_MASTER_SEED: u64 = 0xC0DE;

/// The seed axis of a matrix: a count of derived seeds, or an explicit list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedsSpec {
    /// `seeds = N`: the first `N` seeds of the [`trial_seed`] stream for
    /// the matrix's master seed.
    Count(u64),
    /// `seeds = [..]`: exactly these seeds, in file order.
    List(Vec<u64>),
}

/// One spanned axis: which parameter it rewrites and the values to sweep.
///
/// Axes are stored in canonical expansion order (`n`, `channels`, `speed`,
/// `fading`); each value list is non-empty with distinct values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixAxes {
    /// Node counts (rewrites the deployment's `n`).
    pub n: Option<Vec<usize>>,
    /// Channel counts.
    pub channels: Option<Vec<u16>>,
    /// Mobility speeds (waypoint `speed_max` / convoy `speed`).
    pub speed: Option<Vec<f64>>,
    /// Fading degradation probabilities (`fading.p_degrade`).
    pub fading: Option<Vec<f64>>,
}

/// A partial combination to drop from the expansion. A combination matches
/// when every axis the filter names has exactly the filter's value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExcludeFilter {
    /// Matches combinations with this node count.
    pub n: Option<usize>,
    /// Matches combinations with this channel count.
    pub channels: Option<u16>,
    /// Matches combinations with this speed.
    pub speed: Option<f64>,
    /// Matches combinations with this fading probability.
    pub fading: Option<f64>,
}

/// One expanded combination: the value each swept axis takes (`None` for
/// axes the matrix does not sweep).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Combo {
    /// Node count, if the `n` axis is swept.
    pub n: Option<usize>,
    /// Channel count, if the `channels` axis is swept.
    pub channels: Option<u16>,
    /// Speed, if the `speed` axis is swept.
    pub speed: Option<f64>,
    /// Fading probability, if the `fading` axis is swept.
    pub fading: Option<f64>,
}

impl ExcludeFilter {
    fn matches(&self, c: &Combo) -> bool {
        fn axis<T: PartialEq>(filter: &Option<T>, combo: &Option<T>) -> bool {
            match filter {
                None => true,
                Some(want) => combo.as_ref() == Some(want),
            }
        }
        axis(&self.n, &c.n)
            && axis(&self.channels, &c.channels)
            && axis(&self.speed, &c.speed)
            && axis(&self.fading, &c.fading)
    }
}

/// The decoded `[matrix]` table of a sweep file.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSpec {
    /// Master seed the [`SeedsSpec::Count`] form derives from.
    pub master_seed: u64,
    /// The seed axis.
    pub seeds: SeedsSpec,
    /// The parameter axes.
    pub axes: MatrixAxes,
    /// Combination filters (OR of ANDs).
    pub exclude: Vec<ExcludeFilter>,
}

impl Default for MatrixSpec {
    /// The matrix of a file without a `[matrix]` table: the base scenario
    /// itself, one derived seed.
    fn default() -> Self {
        MatrixSpec {
            master_seed: DEFAULT_MASTER_SEED,
            seeds: SeedsSpec::Count(1),
            axes: MatrixAxes::default(),
            exclude: Vec::new(),
        }
    }
}

impl MatrixSpec {
    /// The seed list of the matrix, in trial order.
    pub fn seeds(&self) -> Vec<u64> {
        match &self.seeds {
            SeedsSpec::Count(c) => (0..*c).map(|i| trial_seed(self.master_seed, i)).collect(),
            SeedsSpec::List(v) => v.clone(),
        }
    }

    /// Every surviving combination, in canonical expansion order
    /// (`n` outermost, then `channels`, `speed`, `fading`; values in file
    /// order), with `exclude` filters applied.
    pub fn combos(&self) -> Vec<Combo> {
        // An unswept axis contributes the single value `None`, so the
        // nested loops below degrade gracefully to fewer dimensions.
        fn lane<T: Copy>(axis: &Option<Vec<T>>) -> Vec<Option<T>> {
            match axis {
                None => vec![None],
                Some(vs) => vs.iter().map(|&v| Some(v)).collect(),
            }
        }
        let mut out = Vec::new();
        for &n in &lane(&self.axes.n) {
            for &channels in &lane(&self.axes.channels) {
                for &speed in &lane(&self.axes.speed) {
                    for &fading in &lane(&self.axes.fading) {
                        let combo = Combo {
                            n,
                            channels,
                            speed,
                            fading,
                        };
                        if !self.exclude.iter().any(|f| f.matches(&combo)) {
                            out.push(combo);
                        }
                    }
                }
            }
        }
        out
    }

    /// Expands the matrix over `base` into concrete scenarios, one per
    /// surviving combination, each named `base-<suffixes>`.
    ///
    /// # Panics
    ///
    /// Panics if an axis does not apply to `base` (an `n` axis over a
    /// `grid`/`explicit` deployment, `speed` over static mobility, or
    /// `fading` without a base `[fading]` table). The TOML decoder
    /// validates applicability up front, so this only concerns
    /// hand-constructed specs.
    pub fn expand(&self, base: &Scenario) -> Vec<Scenario> {
        self.combos()
            .iter()
            .map(|combo| apply_combo(base, combo))
            .collect()
    }

    /// Decodes a `[matrix]` value, validating axes against `base`.
    pub fn decode(value: &Value, base: &Scenario) -> Result<Self, TomlError> {
        let mut f = Fields::new(value, "matrix")?;
        let master_seed = f.opt_u64("master_seed")?.unwrap_or(DEFAULT_MASTER_SEED);
        let seeds = decode_seeds(&mut f)?;
        let axes = match f.opt_fields("axes")? {
            None => MatrixAxes::default(),
            Some(mut af) => {
                let axes = decode_axes(&mut af, base)?;
                af.finish()?;
                axes
            }
        };
        let exclude = decode_excludes(&mut f, &axes)?;
        f.finish()?;
        Ok(MatrixSpec {
            master_seed,
            seeds,
            axes,
            exclude,
        })
    }
}

fn decode_seeds(f: &mut Fields<'_>) -> Result<SeedsSpec, TomlError> {
    let path = f.key_path("seeds");
    let Some(v) = f.take("seeds") else {
        return Ok(SeedsSpec::Count(1));
    };
    match &v.kind {
        Kind::Int(_) => {
            let count = v.as_u64(&path)?;
            if count == 0 {
                return Err(TomlError::field(v.line, path, "must be at least 1"));
            }
            Ok(SeedsSpec::Count(count))
        }
        Kind::Array(items) => {
            if items.is_empty() {
                return Err(TomlError::field(
                    v.line,
                    path,
                    "seed list must not be empty",
                ));
            }
            let mut seeds = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let seed = item.as_u64(&format!("{path}[{i}]"))?;
                if seeds.contains(&seed) {
                    return Err(TomlError::field(
                        item.line,
                        format!("{path}[{i}]"),
                        format!("duplicate seed {seed}: trial keys must be unique"),
                    ));
                }
                seeds.push(seed);
            }
            Ok(SeedsSpec::List(seeds))
        }
        _ => Err(TomlError::field(
            v.line,
            path,
            format!("expected a count or a seed list, found {}", v.kind_name()),
        )),
    }
}

fn decode_axes(af: &mut Fields<'_>, base: &Scenario) -> Result<MatrixAxes, TomlError> {
    let n = int_axis(af, "n")?;
    if let Some(values) = &n {
        let rewritable = matches!(
            base.deployment,
            DeploymentSpec::Uniform { .. }
                | DeploymentSpec::Disk { .. }
                | DeploymentSpec::Line { .. }
                | DeploymentSpec::Corridor { .. }
        );
        if !rewritable {
            return Err(af.invalid(
                "n",
                "the base deployment kind has no rewritable node count \
                 (use uniform, disk, line, or corridor)",
            ));
        }
        if let Some(&zero) = values.iter().find(|&&v| v == 0) {
            return Err(af.invalid("n", format!("node counts must be at least 1, got {zero}")));
        }
    }
    let channels = int_axis(af, "channels")?;
    if let Some(values) = &channels {
        if values.iter().any(|&c| c == 0 || c > u16::MAX as u64) {
            return Err(af.invalid("channels", "channel counts must lie in [1, 65535]"));
        }
    }
    let speed = float_axis(af, "speed")?;
    if let Some(values) = &speed {
        if matches!(base.mobility, MobilitySpec::Static) {
            return Err(af.invalid(
                "speed",
                "the base scenario has static mobility; add a [mobility] table to sweep speed",
            ));
        }
        if let Some(&bad) = values.iter().find(|v| !(v.is_finite() && **v > 0.0)) {
            return Err(af.invalid("speed", format!("speeds must be positive, got {bad}")));
        }
    }
    let fading = float_axis(af, "fading")?;
    if let Some(values) = &fading {
        if base.fading.is_none() {
            return Err(af.invalid(
                "fading",
                "the base scenario has no [fading] table to sweep p_degrade over",
            ));
        }
        if let Some(&bad) = values.iter().find(|v| !(0.0..=1.0).contains(*v)) {
            return Err(af.invalid(
                "fading",
                format!("fading probabilities must lie in [0, 1], got {bad}"),
            ));
        }
    }
    Ok(MatrixAxes {
        n: n.map(|v| v.into_iter().map(|x| x as usize).collect()),
        channels: channels.map(|v| v.into_iter().map(|x| x as u16).collect()),
        speed,
        fading,
    })
}

/// Decodes an integer axis: a value list, or a `{ from, to, step }` range.
fn int_axis(af: &mut Fields<'_>, key: &str) -> Result<Option<Vec<u64>>, TomlError> {
    let path = af.key_path(key);
    let Some(v) = af.take(key) else {
        return Ok(None);
    };
    let values = match &v.kind {
        Kind::Array(items) => {
            let mut values = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                values.push(item.as_u64(&format!("{path}[{i}]"))?);
            }
            values
        }
        Kind::Table(_) => {
            let mut rf = Fields::new(v, &path)?;
            let from = rf.u64("from")?;
            let to = rf.u64("to")?;
            let step = rf.opt_u64("step")?.unwrap_or(1);
            if step == 0 {
                return Err(rf.invalid("step", "must be at least 1"));
            }
            if to < from {
                return Err(rf.invalid("to", format!("range end {to} lies before start {from}")));
            }
            rf.finish()?;
            (from..=to).step_by(step as usize).collect()
        }
        _ => {
            return Err(TomlError::field(
                v.line,
                path,
                format!(
                    "expected a value list or a {{ from, to, step }} range, found {}",
                    v.kind_name()
                ),
            ))
        }
    };
    no_duplicates(&path, v.line, &values, |a, b| a == b)?;
    Ok(Some(values))
}

/// Decodes a float axis (value lists only — float ranges would accumulate
/// representation error and silently change the swept grid).
fn float_axis(af: &mut Fields<'_>, key: &str) -> Result<Option<Vec<f64>>, TomlError> {
    let path = af.key_path(key);
    let Some(v) = af.take(key) else {
        return Ok(None);
    };
    let items = v.as_array(&path)?;
    let mut values = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        values.push(item.as_f64(&format!("{path}[{i}]"))?);
    }
    no_duplicates(&path, v.line, &values, |a, b| a.to_bits() == b.to_bits())?;
    Ok(Some(values))
}

fn no_duplicates<T: std::fmt::Display>(
    path: &str,
    line: usize,
    values: &[T],
    eq: impl Fn(&T, &T) -> bool,
) -> Result<(), TomlError> {
    if values.is_empty() {
        return Err(TomlError::field(line, path, "axis must not be empty"));
    }
    for (i, v) in values.iter().enumerate() {
        if values[..i].iter().any(|p| eq(p, v)) {
            return Err(TomlError::field(
                line,
                path,
                format!("duplicate axis value {v}: expanded scenario names must be unique"),
            ));
        }
    }
    Ok(())
}

fn decode_excludes(f: &mut Fields<'_>, axes: &MatrixAxes) -> Result<Vec<ExcludeFilter>, TomlError> {
    let items = f.opt_array("exclude")?;
    let mut filters = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let path = format!("matrix.exclude[{i}]");
        let mut ef = Fields::new(item, &path)?;
        let filter = ExcludeFilter {
            n: ef.opt_u64("n")?.map(|v| v as usize),
            channels: ef.opt_u16("channels")?,
            speed: ef.opt_f64("speed")?,
            fading: ef.opt_f64("fading")?,
        };
        ef.finish()?;
        if filter == ExcludeFilter::default() {
            return Err(TomlError::field(
                item.line,
                path,
                "empty exclude filter would drop every combination",
            ));
        }
        // A filter naming an unswept axis can never match — reject it as
        // the typo it almost certainly is.
        let unswept = [
            (filter.n.is_some() && axes.n.is_none(), "n"),
            (
                filter.channels.is_some() && axes.channels.is_none(),
                "channels",
            ),
            (filter.speed.is_some() && axes.speed.is_none(), "speed"),
            (filter.fading.is_some() && axes.fading.is_none(), "fading"),
        ]
        .into_iter()
        .find_map(|(bad, name)| bad.then_some(name));
        if let Some(axis) = unswept {
            return Err(TomlError::field(
                item.line,
                path,
                format!("filter names axis `{axis}`, which the matrix does not sweep"),
            ));
        }
        filters.push(filter);
    }
    Ok(filters)
}

/// Applies one combination to a copy of `base`, suffixing the name per
/// swept axis (`-n100-c4-v0.2-p0.05`).
fn apply_combo(base: &Scenario, combo: &Combo) -> Scenario {
    let mut s = base.clone();
    if let Some(n) = combo.n {
        s.deployment = match s.deployment {
            DeploymentSpec::Uniform { side, .. } => DeploymentSpec::Uniform { n, side },
            DeploymentSpec::Disk { radius, .. } => DeploymentSpec::Disk { n, radius },
            DeploymentSpec::Line { spacing, .. } => DeploymentSpec::Line { n, spacing },
            DeploymentSpec::Corridor { length, width, .. } => {
                DeploymentSpec::Corridor { n, length, width }
            }
            other => panic!(
                "matrix n axis applied to deployment without a rewritable node count: {other:?}"
            ),
        };
        s.name.push_str(&format!("-n{n}"));
    }
    if let Some(c) = combo.channels {
        s.channels = c;
        s.name.push_str(&format!("-c{c}"));
    }
    if let Some(v) = combo.speed {
        s.mobility = match s.mobility {
            MobilitySpec::RandomWaypoint {
                speed_min, pause, ..
            } => MobilitySpec::RandomWaypoint {
                speed_min: speed_min.min(v),
                speed_max: v,
                pause,
            },
            MobilitySpec::Convoy {
                groups,
                spread,
                pause,
                ..
            } => MobilitySpec::Convoy {
                groups,
                speed: v,
                spread,
                pause,
            },
            MobilitySpec::Static => {
                panic!("matrix speed axis applied to a scenario with static mobility")
            }
        };
        s.name.push_str(&format!("-v{v}"));
    }
    if let Some(p) = combo.fading {
        let fading = s
            .fading
            .as_mut()
            .expect("matrix fading axis applied to a scenario without a [fading] table");
        fading.p_degrade = p;
        s.name.push_str(&format!("-p{p}"));
    }
    s
}

/// A loaded sweep file: the base scenario plus its (possibly default)
/// matrix.
///
/// Plain scenario files load as sweep files with the default matrix (the
/// base scenario itself under one derived seed), so every consumer of
/// scenario files — `experiments sweep`, `check-scenarios` — can use this
/// loader uniformly.
#[derive(Debug, Clone)]
pub struct SweepFile {
    /// The base scenario (the file without its `[matrix]` table).
    pub base: Scenario,
    /// The sweep matrix (default when the file has none).
    pub matrix: MatrixSpec,
}

impl SweepFile {
    /// Parses a sweep file from TOML text.
    pub fn from_toml_str(src: &str) -> Result<Self, TomlError> {
        SweepFile::from_toml_table(&parse(src)?)
    }

    /// Decodes a sweep file from its parsed root table.
    pub fn from_toml_table(root: &Table) -> Result<Self, TomlError> {
        // The scenario decoder consumes every field and rejects unknown
        // keys, so the matrix table is split out of a copy of the root
        // before the base scenario decodes.
        let mut scenario_root = root.clone();
        let mut matrix_value = None;
        scenario_root.entries.retain(|(key, value)| {
            if key == "matrix" {
                matrix_value = Some(value.clone());
                false
            } else {
                true
            }
        });
        let base = <Scenario as FromToml>::from_toml_table(&scenario_root)?;
        let matrix = match &matrix_value {
            Some(v) => MatrixSpec::decode(v, &base)?,
            None => MatrixSpec::default(),
        };
        Ok(SweepFile { base, matrix })
    }

    /// Loads a sweep file from disk.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ScenarioFileError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|error| ScenarioFileError::Io {
            path: path.to_path_buf(),
            error,
        })?;
        SweepFile::from_toml_str(&text).map_err(|error| ScenarioFileError::Parse {
            path: path.to_path_buf(),
            error,
        })
    }

    /// Whether the file actually sweeps anything (has a non-default matrix).
    pub fn is_sweep(&self) -> bool {
        self.matrix != MatrixSpec::default()
    }

    /// The expanded scenarios, in expansion order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.matrix.expand(&self.base)
    }

    /// The full [`TrialSet`] of the sweep (expanded scenarios × seeds).
    pub fn trial_set(&self) -> Result<TrialSet, TrialSetError> {
        TrialSet::new(self.scenarios(), self.matrix.seeds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "\
name = \"sweep-base\"
channels = 2
max_slots = 200

[deployment]
kind = \"uniform\"
n = 20
side = 6.0

[mobility]
kind = \"random-waypoint\"
speed_min = 0.05
speed_max = 0.1
pause = 2

[fading]
p_degrade = 0.02
p_recover = 0.3
power = 100.0
";

    fn with_matrix(matrix: &str) -> String {
        format!("{BASE}\n{matrix}")
    }

    #[test]
    fn plain_scenario_files_load_with_default_matrix() {
        let sweep = SweepFile::from_toml_str(BASE).unwrap();
        assert!(!sweep.is_sweep());
        assert_eq!(sweep.base.name, "sweep-base");
        let set = sweep.trial_set().unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.seeds(), &[trial_seed(0xC0DE, 0)]);
        assert_eq!(set.scenarios()[0].name, "sweep-base");
    }

    #[test]
    fn expansion_order_is_n_major_then_channels_speed_fading() {
        let src = with_matrix(
            "[matrix]\nseeds = 2\n\n[matrix.axes]\nn = [10, 20]\nchannels = [1, 4]\nspeed = [0.1]\nfading = [0.05]\n",
        );
        let sweep = SweepFile::from_toml_str(&src).unwrap();
        assert!(sweep.is_sweep());
        let names: Vec<String> = sweep.scenarios().iter().map(|s| s.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "sweep-base-n10-c1-v0.1-p0.05",
                "sweep-base-n10-c4-v0.1-p0.05",
                "sweep-base-n20-c1-v0.1-p0.05",
                "sweep-base-n20-c4-v0.1-p0.05",
            ]
        );
        let set = sweep.trial_set().unwrap();
        assert_eq!(set.len(), 8, "4 combos × 2 seeds");
        // The combo parameters really land on the scenarios.
        let scenarios = sweep.scenarios();
        assert_eq!(scenarios[0].len(), 10);
        assert_eq!(scenarios[1].channels, 4);
        match scenarios[0].mobility {
            MobilitySpec::RandomWaypoint {
                speed_min,
                speed_max,
                ..
            } => {
                assert_eq!(speed_max, 0.1);
                assert_eq!(speed_min, 0.05);
            }
            ref m => panic!("unexpected mobility {m:?}"),
        }
        assert_eq!(scenarios[0].fading.as_ref().unwrap().p_degrade, 0.05);
    }

    #[test]
    fn range_axis_expands_inclusively() {
        let src = with_matrix("[matrix.axes]\nn = { from = 10, to = 50, step = 20 }\n");
        let sweep = SweepFile::from_toml_str(&src).unwrap();
        let ns: Vec<usize> = sweep.scenarios().iter().map(|s| s.len()).collect();
        assert_eq!(ns, vec![10, 30, 50]);
    }

    #[test]
    fn explicit_seed_list_is_used_verbatim() {
        let src = with_matrix("[matrix]\nseeds = [7, 3, 11]\n");
        let sweep = SweepFile::from_toml_str(&src).unwrap();
        assert_eq!(sweep.matrix.seeds(), vec![7, 3, 11]);
    }

    #[test]
    fn master_seed_steers_derived_seeds() {
        let src = with_matrix("[matrix]\nseeds = 3\nmaster_seed = 99\n");
        let sweep = SweepFile::from_toml_str(&src).unwrap();
        let expect: Vec<u64> = (0..3).map(|i| trial_seed(99, i)).collect();
        assert_eq!(sweep.matrix.seeds(), expect);
    }

    #[test]
    fn excludes_drop_matching_combos() {
        let src = with_matrix(
            "[matrix.axes]\nn = [10, 20]\nchannels = [1, 4]\n\n[[matrix.exclude]]\nn = 20\nchannels = 1\n",
        );
        let sweep = SweepFile::from_toml_str(&src).unwrap();
        let names: Vec<String> = sweep.scenarios().iter().map(|s| s.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "sweep-base-n10-c1",
                "sweep-base-n10-c4",
                "sweep-base-n20-c4"
            ]
        );
        // The inline-array form parses to the same filters.
        let inline = with_matrix(
            "[matrix]\nexclude = [{ n = 20, channels = 1 }]\n[matrix.axes]\nn = [10, 20]\nchannels = [1, 4]\n",
        );
        let sweep2 = SweepFile::from_toml_str(&inline).unwrap();
        assert_eq!(sweep2.matrix.exclude, sweep.matrix.exclude);
    }

    #[test]
    fn partial_excludes_filter_every_matching_combo() {
        let src = with_matrix(
            "[matrix]\nexclude = [{ n = 10 }]\n[matrix.axes]\nn = [10, 20]\nchannels = [1, 4]\n",
        );
        let sweep = SweepFile::from_toml_str(&src).unwrap();
        let names: Vec<String> = sweep.scenarios().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["sweep-base-n20-c1", "sweep-base-n20-c4"]);
    }

    #[test]
    fn error_paths_and_lines_follow_the_loader_discipline() {
        // Unknown axis.
        let src = with_matrix("[matrix.axes]\nfrequency = [1]\n");
        let e = SweepFile::from_toml_str(&src).unwrap_err();
        assert_eq!(e.path, "matrix.axes.frequency");
        assert!(e.message.contains("unknown field"), "{e}");

        // n over a grid deployment.
        let src = "\
name = \"grid\"
[deployment]
kind = \"grid\"
nx = 3
ny = 3
step = 1.0

[matrix.axes]
n = [10]
";
        let e = SweepFile::from_toml_str(src).unwrap_err();
        assert_eq!(e.path, "matrix.axes.n");
        assert!(e.message.contains("no rewritable node count"), "{e}");

        // speed without mobility.
        let src = "\
name = \"static\"
[deployment]
kind = \"line\"
n = 4
spacing = 1.0

[matrix.axes]
speed = [0.1]
";
        let e = SweepFile::from_toml_str(src).unwrap_err();
        assert_eq!(e.path, "matrix.axes.speed");
        assert!(e.message.contains("static mobility"), "{e}");

        // fading without a base fading table.
        let src = "\
name = \"nofade\"
[deployment]
kind = \"line\"
n = 4
spacing = 1.0

[matrix.axes]
fading = [0.1]
";
        let e = SweepFile::from_toml_str(src).unwrap_err();
        assert_eq!(e.path, "matrix.axes.fading");
        assert!(e.message.contains("no [fading] table"), "{e}");

        // Bad range.
        let src = with_matrix("[matrix.axes]\nn = { from = 50, to = 10 }\n");
        let e = SweepFile::from_toml_str(&src).unwrap_err();
        assert_eq!(e.path, "matrix.axes.n.to");
        assert!(e.message.contains("before start"), "{e}");

        // Zero-step range.
        let src = with_matrix("[matrix.axes]\nn = { from = 1, to = 5, step = 0 }\n");
        let e = SweepFile::from_toml_str(&src).unwrap_err();
        assert_eq!(e.path, "matrix.axes.n.step");

        // Duplicate axis value.
        let src = with_matrix("[matrix.axes]\nchannels = [4, 4]\n");
        let e = SweepFile::from_toml_str(&src).unwrap_err();
        assert_eq!(e.path, "matrix.axes.channels");
        assert!(e.message.contains("duplicate axis value 4"), "{e}");

        // Duplicate explicit seed.
        let src = with_matrix("[matrix]\nseeds = [1, 1]\n");
        let e = SweepFile::from_toml_str(&src).unwrap_err();
        assert_eq!(e.path, "matrix.seeds[1]");
        assert!(e.message.contains("duplicate seed"), "{e}");

        // Zero seed count.
        let src = with_matrix("[matrix]\nseeds = 0\n");
        let e = SweepFile::from_toml_str(&src).unwrap_err();
        assert_eq!(e.path, "matrix.seeds");

        // Exclude naming an unswept axis.
        let src = with_matrix("[matrix]\nexclude = [{ speed = 0.1 }]\n[matrix.axes]\nn = [1, 2]\n");
        let e = SweepFile::from_toml_str(&src).unwrap_err();
        assert_eq!(e.path, "matrix.exclude[0]");
        assert!(e.message.contains("does not sweep"), "{e}");

        // Empty exclude filter.
        let src = with_matrix("[matrix]\nexclude = [{}]\n[matrix.axes]\nn = [1, 2]\n");
        let e = SweepFile::from_toml_str(&src).unwrap_err();
        assert_eq!(e.path, "matrix.exclude[0]");
        assert!(e.message.contains("every combination"), "{e}");

        // Errors in the scenario half still carry their own paths.
        let src = with_matrix("[matrix]\nseeds = 2\n").replace("side = 6.0", "side = -1.0");
        let e = SweepFile::from_toml_str(&src).unwrap_err();
        assert_eq!(e.path, "deployment.side");
    }

    #[test]
    fn expansion_is_deterministic() {
        let src =
            with_matrix("[matrix]\nseeds = 2\n[matrix.axes]\nn = [10, 20]\nspeed = [0.1, 0.2]\n");
        let a = SweepFile::from_toml_str(&src).unwrap();
        let b = SweepFile::from_toml_str(&src).unwrap();
        let names = |s: &SweepFile| -> Vec<String> {
            s.scenarios().iter().map(|sc| sc.name.clone()).collect()
        };
        assert_eq!(names(&a), names(&b));
        assert_eq!(a.matrix.seeds(), b.matrix.seeds());
        let keys_a: Vec<_> = a.trial_set().unwrap().keys().collect();
        let keys_b: Vec<_> = b.trial_set().unwrap().keys().collect();
        assert_eq!(keys_a, keys_b);
    }
}
