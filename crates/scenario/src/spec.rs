//! Declarative scenario descriptions.
//!
//! A [`Scenario`] names a whole experimental world as data: the deployment,
//! the mobility process, per-channel fading, churn, static faults, physical
//! parameters, and a slot budget. Instantiating any part of it for a trial
//! takes only the trial seed, so a run is a pure function of
//! `(scenario, seed)` and every table built from scenarios replays
//! bit-for-bit.

use crate::adversary::{CorrelatedFading, TrackingJammer};
use crate::environment::{CompositeEnvironment, EnvironmentModel};
use crate::fading::GilbertElliot;
use crate::mobility::{GroupConvoy, RandomWaypoint};
use mca_geom::{BoundingBox, Deployment, Point};
use mca_radio::rng::derive_rng;
use mca_radio::{ChannelCondition, FaultPlan, SleepSchedule};
use mca_sinr::{ResolveMode, SinrParams};
use rand::rngs::SmallRng;
use rand::Rng;

/// Salt for the deployment RNG stream (distinct from per-node streams,
/// which use salts `0..n`).
const DEPLOY_SALT: u64 = u64::MAX - 0x0DE9;
/// Salt for the environment (mobility/fading) RNG stream.
const ENV_SALT: u64 = u64::MAX - 0x0E2F;
/// Salt for the churn RNG stream.
const CHURN_SALT: u64 = u64::MAX - 0x0C4A;

/// A seed-parameterized node placement.
#[derive(Debug, Clone, PartialEq)]
pub enum DeploymentSpec {
    /// `n` nodes i.i.d. uniform over `[0, side]²`.
    Uniform {
        /// Node count.
        n: usize,
        /// Square side length.
        side: f64,
    },
    /// `n` nodes i.i.d. uniform over the disk of `radius` at the origin.
    Disk {
        /// Node count.
        n: usize,
        /// Disk radius.
        radius: f64,
    },
    /// An `nx × ny` grid with spacing `step`, jittered by up to `jitter`.
    Grid {
        /// Columns.
        nx: usize,
        /// Rows.
        ny: usize,
        /// Grid spacing.
        step: f64,
        /// Per-node uniform jitter bound.
        jitter: f64,
    },
    /// `n` nodes on a line with constant `spacing`.
    Line {
        /// Node count.
        n: usize,
        /// Inter-node spacing.
        spacing: f64,
    },
    /// `n` nodes uniform in a `length × width` corridor.
    Corridor {
        /// Node count.
        n: usize,
        /// Corridor length.
        length: f64,
        /// Corridor width.
        width: f64,
    },
    /// An explicit list of positions.
    Explicit(Vec<Point>),
}

impl DeploymentSpec {
    /// Number of nodes this spec deploys.
    pub fn len(&self) -> usize {
        match self {
            DeploymentSpec::Uniform { n, .. }
            | DeploymentSpec::Disk { n, .. }
            | DeploymentSpec::Line { n, .. }
            | DeploymentSpec::Corridor { n, .. } => *n,
            DeploymentSpec::Grid { nx, ny, .. } => nx * ny,
            DeploymentSpec::Explicit(points) => points.len(),
        }
    }

    /// Whether the spec deploys no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the placement using `rng`.
    pub fn instantiate(&self, rng: &mut SmallRng) -> Deployment {
        match self {
            DeploymentSpec::Uniform { n, side } => Deployment::uniform(*n, *side, rng),
            DeploymentSpec::Disk { n, radius } => Deployment::disk(*n, *radius, rng),
            DeploymentSpec::Grid {
                nx,
                ny,
                step,
                jitter,
            } => Deployment::grid(*nx, *ny, *step, *jitter, rng),
            DeploymentSpec::Line { n, spacing } => Deployment::line(*n, *spacing),
            DeploymentSpec::Corridor { n, length, width } => {
                Deployment::corridor(*n, *length, *width, rng)
            }
            DeploymentSpec::Explicit(points) => Deployment::from_points("explicit", points.clone()),
        }
    }

    /// The nominal deployment area (used as the mobility bound when the
    /// scenario does not override it).
    pub fn nominal_area(&self) -> Option<BoundingBox> {
        match self {
            DeploymentSpec::Uniform { side, .. } => Some(BoundingBox::square(*side)),
            DeploymentSpec::Disk { radius, .. } => Some(BoundingBox::new(
                Point::new(-radius, -radius),
                Point::new(*radius, *radius),
            )),
            DeploymentSpec::Grid { nx, ny, step, .. } => Some(BoundingBox::new(
                Point::ORIGIN,
                Point::new(
                    (nx.saturating_sub(1)) as f64 * step,
                    (ny.saturating_sub(1)) as f64 * step,
                ),
            )),
            DeploymentSpec::Line { n, spacing } => Some(BoundingBox::new(
                Point::ORIGIN,
                Point::new((n.saturating_sub(1)) as f64 * spacing, 0.0),
            )),
            DeploymentSpec::Corridor { length, width, .. } => {
                Some(BoundingBox::new(Point::ORIGIN, Point::new(*length, *width)))
            }
            DeploymentSpec::Explicit(points) => BoundingBox::from_points(points.iter().copied()),
        }
    }
}

/// A seed-parameterized mobility process.
#[derive(Debug, Clone, PartialEq)]
pub enum MobilitySpec {
    /// Nodes never move.
    Static,
    /// Independent random waypoint per node.
    RandomWaypoint {
        /// Minimum per-leg speed (distance units per slot).
        speed_min: f64,
        /// Maximum per-leg speed.
        speed_max: f64,
        /// Dwell slots at each waypoint.
        pause: u64,
    },
    /// Reference-point group mobility: centers roam, members hold formation.
    Convoy {
        /// Number of groups.
        groups: usize,
        /// Center speed (units per slot).
        speed: f64,
        /// Maximum member offset from its center.
        spread: f64,
        /// Dwell slots at each center waypoint.
        pause: u64,
    },
}

impl MobilitySpec {
    /// Builds the runtime model for `n` nodes confined to `area`.
    pub fn instantiate(
        &self,
        area: BoundingBox,
        n: usize,
        rng: &mut SmallRng,
    ) -> Option<Box<dyn EnvironmentModel>> {
        match *self {
            MobilitySpec::Static => None,
            MobilitySpec::RandomWaypoint {
                speed_min,
                speed_max,
                pause,
            } => Some(Box::new(RandomWaypoint::new(
                area, n, speed_min, speed_max, pause, rng,
            ))),
            MobilitySpec::Convoy {
                groups,
                speed,
                spread,
                pause,
            } => Some(Box::new(GroupConvoy::new(
                area, n, groups, speed, spread, pause, rng,
            ))),
        }
    }
}

/// A seed-parameterized Gilbert–Elliot fading process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FadingSpec {
    /// Per-slot good→bad transition probability.
    pub p_degrade: f64,
    /// Per-slot bad→good transition probability.
    pub p_recover: f64,
    /// The condition applied while a channel is bad.
    pub bad: ChannelCondition,
}

impl FadingSpec {
    /// A bad state adding `power` interference at every listener.
    pub fn interference(p_degrade: f64, p_recover: f64, power: f64) -> Self {
        FadingSpec {
            p_degrade,
            p_recover,
            bad: ChannelCondition::interfered(power),
        }
    }

    /// A bad state dropping every reception (deep fade) while sensing
    /// `power` of fade energy.
    pub fn dropping(p_degrade: f64, p_recover: f64, power: f64) -> Self {
        FadingSpec {
            p_degrade,
            p_recover,
            bad: ChannelCondition::dropped(power),
        }
    }

    /// Builds the runtime model over `channels` channels.
    pub fn instantiate(&self, channels: u16) -> GilbertElliot {
        GilbertElliot::new(channels, self.p_degrade, self.p_recover, self.bad)
    }
}

/// A declarative adversary beyond the benign environment models,
/// serialized as the scenario's `[adversary]` table. See
/// `docs/ADVERSARIES.md` for the threat model each one encodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversarySpec {
    /// A mobile spatial jammer chasing the densest live cluster
    /// ([`TrackingJammer`]): re-targets every `epoch` slots, glides at
    /// `speed` per slot, and destroys receptions within `radius` of
    /// itself on `channel` (`None` = all channels). Deterministic — it
    /// draws no randomness.
    TrackingJammer {
        /// Slots between re-targetings.
        epoch: u64,
        /// Blast (and density-scan) radius.
        radius: f64,
        /// Glide speed, distance units per slot.
        speed: f64,
        /// Jammed channel; `None` jams every channel.
        channel: Option<u16>,
    },
    /// Cross-channel correlated Gilbert–Elliot fading
    /// ([`CorrelatedFading`]): a channel flipping bad infects each
    /// spectral neighbor with probability `correlation`.
    CorrelatedFading {
        /// Per-slot good→bad transition probability.
        p_degrade: f64,
        /// Per-slot bad→good transition probability.
        p_recover: f64,
        /// Probability a fresh bad state bleeds into each adjacent
        /// channel.
        correlation: f64,
        /// The condition applied while a channel is bad.
        bad: ChannelCondition,
    },
}

impl AdversarySpec {
    /// Builds the runtime environment model over `channels` channels.
    pub fn instantiate(&self, channels: u16) -> Box<dyn EnvironmentModel> {
        match *self {
            AdversarySpec::TrackingJammer {
                epoch,
                radius,
                speed,
                channel,
            } => Box::new(TrackingJammer::new(epoch, radius, speed, channel)),
            AdversarySpec::CorrelatedFading {
                p_degrade,
                p_recover,
                correlation,
                bad,
            } => Box::new(CorrelatedFading::new(
                channels,
                p_degrade,
                p_recover,
                correlation,
                bad,
            )),
        }
    }
}

/// Duty-cycled sleep schedules, serialized as the scenario's
/// `[duty_cycle]` table: affected nodes power down periodically (awake
/// for `on` out of every `period` slots), with per-node phases staggered
/// by `stride` so the network never sleeps all at once. Distinct from
/// crash-stop churn: sleepers keep their protocol state and never appear
/// in the lifecycle event stream — the structural audit cannot see them,
/// only the degradation detector can.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycleSpec {
    /// Cycle length in slots.
    pub period: u64,
    /// Awake slots per cycle (`on ≥ period` means always awake).
    pub on: u64,
    /// Per-node phase stagger: node `i` sleeps with phase
    /// `(i · stride) mod period`.
    pub stride: u64,
    /// How many nodes (ids `0..nodes`) duty-cycle; `None` = all of them.
    pub nodes: Option<usize>,
}

impl DutyCycleSpec {
    /// Compiles the schedule into per-node sleeps on `faults` for a
    /// network of `n` nodes.
    pub fn install(&self, n: usize, faults: &mut FaultPlan) {
        if self.period == 0 || self.on >= self.period {
            return;
        }
        let cap = self.nodes.unwrap_or(n).min(n);
        for i in 0..cap as u32 {
            faults.sleep(
                i,
                SleepSchedule {
                    period: self.period,
                    on: self.on,
                    phase: (u64::from(i) * self.stride) % self.period,
                },
            );
        }
    }
}

/// Seed-parameterized node churn (late joins and crash-stops), beyond any
/// explicit [`FaultPlan`] the scenario carries.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ChurnSpec {
    /// Every node is present for the whole run.
    #[default]
    None,
    /// Independent random churn: each node late-joins with probability
    /// `join_fraction` (join slot uniform in `join_window`) and
    /// crash-stops with probability `crash_fraction` (crash slot uniform
    /// in `crash_window`).
    Random {
        /// Fraction of nodes that join late.
        join_fraction: f64,
        /// `[from, to)` window late joiners appear in.
        join_window: (u64, u64),
        /// Fraction of nodes that crash.
        crash_fraction: f64,
        /// `[from, to)` window crashes happen in.
        crash_window: (u64, u64),
    },
    /// Explicit per-node churn events.
    Explicit {
        /// `(node, slot)` late joins.
        joins: Vec<(u32, u64)>,
        /// `(node, slot)` crash-stops.
        crashes: Vec<(u32, u64)>,
    },
}

impl ChurnSpec {
    /// Compiles the churn into `faults` for a network of `n` nodes.
    pub fn install(&self, n: usize, faults: &mut FaultPlan, rng: &mut SmallRng) {
        match self {
            ChurnSpec::None => {}
            ChurnSpec::Random {
                join_fraction,
                join_window,
                crash_fraction,
                crash_window,
            } => {
                for i in 0..n as u32 {
                    if *join_fraction > 0.0 && rng.gen_bool(*join_fraction) {
                        let slot = if join_window.1 > join_window.0 {
                            rng.gen_range(join_window.0..join_window.1)
                        } else {
                            join_window.0
                        };
                        faults.join_at(i, slot);
                    }
                    if *crash_fraction > 0.0 && rng.gen_bool(*crash_fraction) {
                        let slot = if crash_window.1 > crash_window.0 {
                            rng.gen_range(crash_window.0..crash_window.1)
                        } else {
                            crash_window.0
                        };
                        faults.crash_at(i, slot);
                    }
                }
            }
            ChurnSpec::Explicit { joins, crashes } => {
                for &(node, slot) in joins {
                    faults.join_at(node, slot);
                }
                for &(node, slot) in crashes {
                    faults.crash_at(node, slot);
                }
            }
        }
    }
}

/// Structure-maintenance policy for drivers that keep a §5 aggregation
/// structure alive while the scenario churns (see `mca-core`'s `maintain`
/// module and `experiments repair-bench`). Serialized as the scenario's
/// `[maintenance]` table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceSpec {
    /// Maintenance cadence: a repair epoch every `every` slots.
    pub every: u64,
    /// Handover hysteresis `h ≥ 1`: members are re-homed once beyond
    /// `h · r_c` of their dominator.
    pub handover_hysteresis: f64,
    /// Fraction of live nodes that may need re-homing before the maintainer
    /// rebuilds from scratch instead of repairing.
    pub rebuild_threshold: f64,
}

impl MaintenanceSpec {
    /// Default handover hysteresis. The single source of truth for the
    /// policy defaults: the TOML decoder and the repair-bench fallback use
    /// these, and `mca-bench` asserts `mca_core::MaintainConfig::default`
    /// agrees (the crates cannot reference each other directly).
    pub const DEFAULT_HYSTERESIS: f64 = 1.25;
    /// Default rebuild threshold (see [`MaintenanceSpec::DEFAULT_HYSTERESIS`]).
    pub const DEFAULT_REBUILD_THRESHOLD: f64 = 0.5;

    /// A maintenance epoch every `every` slots with the default policy.
    pub const fn every(every: u64) -> Self {
        MaintenanceSpec {
            every,
            handover_hysteresis: Self::DEFAULT_HYSTERESIS,
            rebuild_threshold: Self::DEFAULT_REBUILD_THRESHOLD,
        }
    }
}

/// Observability request for drivers that can attach an `mca-obs`
/// recorder to the engine. Serialized as the scenario's `[obs]` table.
///
/// The request is honored only when the `obs` cargo feature compiled the
/// recorder in (`mca_obs::enabled()`); otherwise it is carried losslessly
/// through TOML round-trips but attaches nothing. Recording is
/// observation-only either way: trial results are bit-identical with and
/// without it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsSpec {
    /// Whether drivers should attach a recorder.
    pub enabled: bool,
    /// Whether the recorder keeps the per-(slot × channel) outcome
    /// stream (the bulkiest record class; disable for long runs where
    /// only spans and counters matter).
    pub channel_stream: bool,
}

impl Default for ObsSpec {
    fn default() -> Self {
        ObsSpec {
            enabled: true,
            channel_stream: true,
        }
    }
}

/// A fully declarative experimental world.
///
/// Scenarios serialize to and from TOML (see [`crate::toml`] and
/// `docs/SCENARIO_FORMAT.md`), so worlds can live in version-controlled
/// data files and run via `experiments --scenario path.toml`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable label (used in tables).
    pub name: String,
    /// Physical-layer parameters.
    pub params: SinrParams,
    /// Node placement.
    pub deployment: DeploymentSpec,
    /// Mobility area override (defaults to the deployment's nominal area).
    pub area: Option<BoundingBox>,
    /// Mobility process.
    pub mobility: MobilitySpec,
    /// Per-channel fading, if any.
    pub fading: Option<FadingSpec>,
    /// An active adversary (tracking jammer or correlated fading), if any.
    /// Serialized as the `[adversary]` table.
    pub adversary: Option<AdversarySpec>,
    /// Duty-cycled sleep schedules, if any. Serialized as the
    /// `[duty_cycle]` table.
    pub duty_cycle: Option<DutyCycleSpec>,
    /// Node churn.
    pub churn: ChurnSpec,
    /// Static fault plan (jamming, scripted crashes) churn composes with.
    pub faults: FaultPlan,
    /// Number of channels the fading process covers.
    pub channels: u16,
    /// Default slot budget for drivers that need one.
    pub max_slots: u64,
    /// Whether the engine resolves per-slot channel groups in parallel
    /// (bit-identical to sequential; see
    /// [`Engine::with_par_channels`](mca_radio::Engine::with_par_channels)).
    pub par_channels: bool,
    /// Shards per axis for the engine's spatial partition (0 or 1 = off;
    /// bit-identical for any value — see
    /// [`Engine::with_shards`](mca_radio::Engine::with_shards)).
    /// Serialized as the `[engine]` table's `shards` key.
    pub shards: u16,
    /// Whether (channel × shard) units resolve in parallel (bit-identical;
    /// see [`Engine::with_par_shards`](mca_radio::Engine::with_par_shards)).
    /// Serialized as the `[engine]` table's `par_shards` key.
    pub par_shards: bool,
    /// Structure-maintenance policy, if structure-driving harnesses should
    /// repair on a cadence ([`ScenarioSim::run_epochs`](crate::ScenarioSim::run_epochs)).
    pub maintenance: Option<MaintenanceSpec>,
    /// Observability request ([`ScenarioSim::new`](crate::ScenarioSim::new)
    /// attaches a recorder when present, enabled, and compiled in).
    /// Serialized as the `[obs]` table.
    pub obs: Option<ObsSpec>,
}

impl Scenario {
    /// Starts a builder for a scenario named `name`.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.into(),
                params: SinrParams::default(),
                deployment: DeploymentSpec::Uniform { n: 100, side: 10.0 },
                area: None,
                mobility: MobilitySpec::Static,
                fading: None,
                adversary: None,
                duty_cycle: None,
                churn: ChurnSpec::None,
                faults: FaultPlan::none(),
                channels: 8,
                max_slots: 10_000,
                par_channels: false,
                shards: 0,
                par_shards: false,
                maintenance: None,
                obs: None,
            },
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.deployment.len()
    }

    /// Whether the scenario deploys no nodes.
    pub fn is_empty(&self) -> bool {
        self.deployment.is_empty()
    }

    /// The mobility bounding area.
    pub fn effective_area(&self) -> BoundingBox {
        self.area
            .or_else(|| self.deployment.nominal_area())
            .unwrap_or_else(|| BoundingBox::square(1.0))
    }

    /// The trial-`seed` placement — exactly what
    /// [`ScenarioSim::new`](crate::ScenarioSim::new) starts from, so
    /// harnesses can build analysis artifacts (communication graphs,
    /// aggregation structures) of the same world.
    pub fn deployment_for(&self, seed: u64) -> Deployment {
        let mut rng = derive_rng(seed, DEPLOY_SALT);
        self.deployment.instantiate(&mut rng)
    }

    /// The trial-`seed` fault plan: the scenario's static faults plus
    /// compiled churn.
    pub fn faults_for(&self, seed: u64) -> FaultPlan {
        let mut faults = self.faults.clone();
        let mut rng = derive_rng(seed, CHURN_SALT);
        self.churn.install(self.len(), &mut faults, &mut rng);
        if let Some(dc) = &self.duty_cycle {
            dc.install(self.len(), &mut faults);
        }
        faults
    }

    /// The trial-`seed` environment model (mobility + fading composite)
    /// and the RNG stream that must drive it.
    pub fn environment_for(&self, seed: u64) -> (CompositeEnvironment, SmallRng) {
        let mut env_rng = derive_rng(seed, ENV_SALT);
        let mut env = CompositeEnvironment::new();
        if let Some(model) =
            self.mobility
                .instantiate(self.effective_area(), self.len(), &mut env_rng)
        {
            env.push(model);
        }
        if let Some(fading) = &self.fading {
            env.push(Box::new(fading.instantiate(self.channels)));
        }
        if let Some(adversary) = &self.adversary {
            env.push(adversary.instantiate(self.channels));
        }
        (env, env_rng)
    }
}

/// Builder for [`Scenario`] (see [`Scenario::builder`]).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the physical-layer parameters.
    pub fn sinr(mut self, params: SinrParams) -> Self {
        self.scenario.params = params;
        self
    }

    /// Sets the node placement.
    pub fn deployment(mut self, spec: DeploymentSpec) -> Self {
        self.scenario.deployment = spec;
        self
    }

    /// Overrides the mobility area.
    pub fn area(mut self, area: BoundingBox) -> Self {
        self.scenario.area = Some(area);
        self
    }

    /// Sets the mobility process.
    pub fn mobility(mut self, spec: MobilitySpec) -> Self {
        self.scenario.mobility = spec;
        self
    }

    /// Enables per-channel fading.
    pub fn fading(mut self, spec: FadingSpec) -> Self {
        self.scenario.fading = Some(spec);
        self
    }

    /// Installs an active adversary (see [`AdversarySpec`]).
    pub fn adversary(mut self, spec: AdversarySpec) -> Self {
        self.scenario.adversary = Some(spec);
        self
    }

    /// Installs duty-cycled sleep schedules (see [`DutyCycleSpec`]).
    pub fn duty_cycle(mut self, spec: DutyCycleSpec) -> Self {
        self.scenario.duty_cycle = Some(spec);
        self
    }

    /// Sets node churn.
    pub fn churn(mut self, spec: ChurnSpec) -> Self {
        self.scenario.churn = spec;
        self
    }

    /// Sets the static fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.scenario.faults = faults;
        self
    }

    /// Sets the channel count (governs fading width).
    pub fn channels(mut self, channels: u16) -> Self {
        self.scenario.channels = channels;
        self
    }

    /// Sets the default slot budget.
    pub fn max_slots(mut self, slots: u64) -> Self {
        self.scenario.max_slots = slots;
        self
    }

    /// Enables parallel per-channel resolution in the engine (bit-identical
    /// to sequential, so replay guarantees are unaffected).
    pub fn par_channels(mut self, par: bool) -> Self {
        self.scenario.par_channels = par;
        self
    }

    /// Shards the engine's plane into an `s × s` grid (0 or 1 = off).
    /// Sharding is an execution knob: trial results are bit-identical for
    /// any value.
    ///
    /// # Panics
    ///
    /// Panics if `s` exceeds
    /// [`MAX_SHARDS_PER_AXIS`](mca_radio::shard::MAX_SHARDS_PER_AXIS).
    pub fn shards(mut self, s: u16) -> Self {
        assert!(
            s <= mca_radio::shard::MAX_SHARDS_PER_AXIS,
            "shard count per axis must be at most {}, got {s}",
            mca_radio::shard::MAX_SHARDS_PER_AXIS
        );
        self.scenario.shards = s;
        self
    }

    /// Enables parallel resolution of the engine's (channel × shard)
    /// units (bit-identical to sequential).
    pub fn par_shards(mut self, par: bool) -> Self {
        self.scenario.par_shards = par;
        self
    }

    /// Sets the structure-maintenance policy.
    pub fn maintenance(mut self, spec: MaintenanceSpec) -> Self {
        self.scenario.maintenance = Some(spec);
        self
    }

    /// Requests observability recording (see [`ObsSpec`]).
    pub fn obs(mut self, spec: ObsSpec) -> Self {
        self.scenario.obs = Some(spec);
        self
    }

    /// Sets the reception [`ResolveMode`] on the scenario's physical
    /// parameters (see [`mca_sinr::ResolveMode`]).
    pub fn resolve_mode(mut self, mode: ResolveMode) -> Self {
        self.scenario.params = self.scenario.params.with_resolve(mode);
        self
    }

    /// Finishes the scenario.
    pub fn build(self) -> Scenario {
        self.scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn builder_defaults_and_setters() {
        let s = Scenario::builder("demo")
            .deployment(DeploymentSpec::Uniform { n: 40, side: 12.0 })
            .mobility(MobilitySpec::RandomWaypoint {
                speed_min: 0.1,
                speed_max: 0.2,
                pause: 3,
            })
            .fading(FadingSpec::interference(0.01, 0.1, 50.0))
            .channels(4)
            .max_slots(500)
            .build();
        assert_eq!(s.name, "demo");
        assert_eq!(s.len(), 40);
        assert_eq!(s.channels, 4);
        assert_eq!(s.max_slots, 500);
        assert!(s.fading.is_some());
        assert!(!s.is_empty());
    }

    #[test]
    fn resolve_and_parallel_options_plumb_through() {
        let s = Scenario::builder("fastpar")
            .resolve_mode(ResolveMode::fast())
            .par_channels(true)
            .build();
        assert!(s.par_channels);
        assert!(matches!(s.params.resolve, ResolveMode::Fast { .. }));
        let d = Scenario::builder("default").build();
        assert!(!d.par_channels);
        assert_eq!(d.params.resolve, ResolveMode::Exact);
    }

    #[test]
    fn deployment_specs_materialize_with_matching_len() {
        let mut rng = SmallRng::seed_from_u64(1);
        let specs = [
            DeploymentSpec::Uniform { n: 10, side: 5.0 },
            DeploymentSpec::Disk { n: 7, radius: 3.0 },
            DeploymentSpec::Grid {
                nx: 3,
                ny: 4,
                step: 1.0,
                jitter: 0.0,
            },
            DeploymentSpec::Line { n: 5, spacing: 2.0 },
            DeploymentSpec::Corridor {
                n: 8,
                length: 10.0,
                width: 2.0,
            },
            DeploymentSpec::Explicit(vec![Point::ORIGIN, Point::new(1.0, 1.0)]),
        ];
        for spec in &specs {
            let d = spec.instantiate(&mut rng);
            assert_eq!(d.len(), spec.len(), "{spec:?}");
            assert!(spec.nominal_area().is_some());
        }
    }

    #[test]
    fn deployment_for_is_deterministic_per_seed() {
        let s = Scenario::builder("d")
            .deployment(DeploymentSpec::Uniform { n: 30, side: 9.0 })
            .build();
        assert_eq!(s.deployment_for(5), s.deployment_for(5));
        assert_ne!(
            s.deployment_for(5).points(),
            s.deployment_for(6).points(),
            "different seeds give different placements"
        );
    }

    #[test]
    fn churn_compiles_into_faults() {
        let s = Scenario::builder("churny")
            .deployment(DeploymentSpec::Uniform { n: 50, side: 10.0 })
            .churn(ChurnSpec::Explicit {
                joins: vec![(3, 10)],
                crashes: vec![(4, 20)],
            })
            .build();
        let f = s.faults_for(1);
        assert!(!f.has_joined(3, 9));
        assert!(f.has_joined(3, 10));
        assert!(f.is_crashed(4, 20));
        // Deterministic in seed.
        assert_eq!(s.faults_for(1), s.faults_for(1));
    }

    #[test]
    fn random_churn_fraction_roughly_respected() {
        let s = Scenario::builder("rc")
            .deployment(DeploymentSpec::Uniform { n: 400, side: 20.0 })
            .churn(ChurnSpec::Random {
                join_fraction: 0.25,
                join_window: (1, 50),
                crash_fraction: 0.0,
                crash_window: (0, 0),
            })
            .build();
        let f = s.faults_for(9);
        let late = (0..400).filter(|&i| !f.has_joined(i, 0)).count();
        assert!(
            (50..150).contains(&late),
            "expected ~100 late joiners, got {late}"
        );
        // Every late join lands inside the window.
        for i in 0..400u32 {
            if !f.has_joined(i, 0) {
                assert!(f.has_joined(i, 50));
            }
        }
    }

    #[test]
    fn duty_cycle_compiles_into_sleep_schedules() {
        let s = Scenario::builder("dc")
            .deployment(DeploymentSpec::Line { n: 6, spacing: 1.0 })
            .duty_cycle(DutyCycleSpec {
                period: 8,
                on: 6,
                stride: 2,
                nodes: Some(4),
            })
            .build();
        let f = s.faults_for(1);
        let sleeps = f.sleep_schedules();
        assert_eq!(sleeps.len(), 4, "only the capped prefix duty-cycles");
        assert_eq!(sleeps[1].1.phase, 2, "phases stagger by stride");
        assert!(f.is_asleep(0, 6) && !f.is_asleep(0, 0));
        assert!(f.is_asleep(1, 4), "staggered phase shifts the off window");
        assert!(!f.is_asleep(5, 6), "uncapped nodes never sleep");
        // Sleep is not lifecycle churn.
        assert!(!f.is_lifecycle_absent(0, 6));
        // Degenerate cycles are ignored outright.
        let s2 = Scenario::builder("dc2")
            .deployment(DeploymentSpec::Line { n: 3, spacing: 1.0 })
            .duty_cycle(DutyCycleSpec {
                period: 4,
                on: 4,
                stride: 1,
                nodes: None,
            })
            .build();
        assert!(s2.faults_for(1).sleep_schedules().is_empty());
    }

    #[test]
    fn adversary_environment_is_dynamic() {
        let s = Scenario::builder("adv")
            .deployment(DeploymentSpec::Uniform { n: 20, side: 8.0 })
            .adversary(AdversarySpec::TrackingJammer {
                epoch: 10,
                radius: 2.0,
                speed: 0.2,
                channel: None,
            })
            .build();
        let (env, _) = s.environment_for(3);
        assert!(!env.is_static());
        assert_eq!(env.len(), 1);
        let f = Scenario::builder("cf")
            .deployment(DeploymentSpec::Uniform { n: 20, side: 8.0 })
            .adversary(AdversarySpec::CorrelatedFading {
                p_degrade: 0.02,
                p_recover: 0.2,
                correlation: 0.5,
                bad: ChannelCondition::dropped(80.0),
            })
            .build();
        let (env, _) = f.environment_for(3);
        assert!(!env.is_static());
    }

    #[test]
    fn environment_for_static_scenario_is_static() {
        let s = Scenario::builder("static")
            .deployment(DeploymentSpec::Line { n: 4, spacing: 1.0 })
            .build();
        let (env, _) = s.environment_for(3);
        use crate::environment::EnvironmentModel;
        assert!(env.is_static());
        assert!(env.is_empty());
    }
}
