//! Gilbert–Elliot per-channel fading.
//!
//! Each channel is an independent two-state Markov chain: *good* (clear)
//! or *bad* (degraded). Per slot, a good channel turns bad with probability
//! `p_degrade` and a bad one recovers with probability `p_recover`. The bad
//! state applies a [`ChannelCondition`] — extra interference at every
//! listener and/or outright reception drops — composing with any static
//! [`FaultPlan`](mca_radio::FaultPlan) jamming, which the engine adds
//! separately. This is the channel-quality model used for multi-channel
//! diversity MAC protocols (cf. Wang et al., *A Multi-Channel Diversity
//! Based MAC Protocol for Power-Constrained Cognitive Ad Hoc Networks*).

use crate::environment::{EnvironmentModel, World};
use mca_radio::ChannelCondition;
use rand::Rng;

/// Independent Gilbert–Elliot fading over a block of channels.
pub struct GilbertElliot {
    p_degrade: f64,
    p_recover: f64,
    bad: ChannelCondition,
    states: Vec<bool>, // true = bad
}

impl GilbertElliot {
    /// A fading process over `channels` channels, all starting *good*.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(channels: u16, p_degrade: f64, p_recover: f64, bad: ChannelCondition) -> Self {
        assert!((0.0..=1.0).contains(&p_degrade), "p_degrade out of range");
        assert!((0.0..=1.0).contains(&p_recover), "p_recover out of range");
        GilbertElliot {
            p_degrade,
            p_recover,
            bad,
            states: vec![false; channels as usize],
        }
    }

    /// Which channels are currently in the bad state.
    pub fn bad_channels(&self) -> impl Iterator<Item = u16> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u16)
    }

    /// Long-run fraction of time a channel spends bad,
    /// `p_degrade / (p_degrade + p_recover)` (0 if both probabilities are 0).
    pub fn stationary_bad_fraction(&self) -> f64 {
        let s = self.p_degrade + self.p_recover;
        if s == 0.0 {
            0.0
        } else {
            self.p_degrade / s
        }
    }
}

impl EnvironmentModel for GilbertElliot {
    fn step(&mut self, _slot: u64, world: &mut World<'_>) {
        if world.conditions.len() < self.states.len() {
            world
                .conditions
                .resize(self.states.len(), ChannelCondition::CLEAR);
        }
        for (c, bad) in self.states.iter_mut().enumerate() {
            let flip = if *bad {
                world.rng.gen_bool(self.p_recover)
            } else {
                world.rng.gen_bool(self.p_degrade)
            };
            if flip {
                *bad = !*bad;
            }
            world.conditions[c] = if *bad {
                self.bad
            } else {
                ChannelCondition::CLEAR
            };
        }
    }

    fn is_static(&self) -> bool {
        self.p_degrade == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_geom::Point;
    use mca_radio::FaultPlan;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run_states(p_degrade: f64, p_recover: f64, slots: u64, seed: u64) -> (u64, u64) {
        let mut env =
            GilbertElliot::new(4, p_degrade, p_recover, ChannelCondition::interfered(10.0));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut positions: Vec<Point> = Vec::new();
        let mut conds = Vec::new();
        let mut faults = FaultPlan::none();
        let (mut bad_slots, mut total) = (0u64, 0u64);
        for s in 0..slots {
            env.step(
                s,
                &mut World {
                    positions: &mut positions,
                    conditions: &mut conds,
                    faults: &mut faults,
                    rng: &mut rng,
                },
            );
            for c in &conds {
                total += 1;
                if !c.is_clear() {
                    bad_slots += 1;
                }
            }
        }
        (bad_slots, total)
    }

    #[test]
    fn stationary_fraction_roughly_matches() {
        let (bad, total) = run_states(0.05, 0.15, 4000, 1);
        let frac = bad as f64 / total as f64;
        let expect = 0.05 / 0.20;
        assert!(
            (frac - expect).abs() < 0.07,
            "bad fraction {frac:.3} vs stationary {expect:.3}"
        );
    }

    #[test]
    fn zero_degrade_never_goes_bad() {
        let (bad, _) = run_states(0.0, 0.5, 500, 2);
        assert_eq!(bad, 0);
        let env = GilbertElliot::new(2, 0.0, 0.5, ChannelCondition::dropped(0.0));
        assert!(env.is_static());
        assert_eq!(env.stationary_bad_fraction(), 0.0);
    }

    #[test]
    fn conditions_vector_sized_to_channels() {
        let mut env = GilbertElliot::new(6, 0.5, 0.5, ChannelCondition::dropped(1.0));
        let mut rng = SmallRng::seed_from_u64(3);
        let mut positions: Vec<Point> = Vec::new();
        let mut conds = Vec::new();
        let mut faults = FaultPlan::none();
        env.step(
            0,
            &mut World {
                positions: &mut positions,
                conditions: &mut conds,
                faults: &mut faults,
                rng: &mut rng,
            },
        );
        assert_eq!(conds.len(), 6);
        assert!(env.bad_channels().all(|c| c < 6));
    }
}
