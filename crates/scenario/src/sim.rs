//! Driving a protocol through a dynamic scenario.

use crate::environment::{EnvironmentModel, World};
use crate::spec::{MaintenanceSpec, Scenario};
use mca_geom::Point;
use mca_radio::{Engine, Metrics, Protocol};
use rand::rngs::SmallRng;

/// An [`Engine`] paired with a scenario's environment: each step first
/// evaluates the environment model (mobility, fading, churn), then runs one
/// engine slot.
///
/// For a fully static scenario the environment is never evaluated and no
/// environment randomness is drawn, so a `ScenarioSim` run is bit-identical
/// to driving a plain [`Engine`] over the same deployment with the same
/// master seed.
pub struct ScenarioSim<P: Protocol> {
    engine: Engine<P>,
    env: Box<dyn EnvironmentModel>,
    env_rng: SmallRng,
    env_static: bool,
    name: String,
    maintenance: Option<MaintenanceSpec>,
}

impl<P: Protocol> ScenarioSim<P> {
    /// Instantiates `scenario` for trial `seed`, creating one protocol per
    /// node via `make(node_index, initial_position)`.
    pub fn new<F>(scenario: &Scenario, seed: u64, mut make: F) -> Self
    where
        F: FnMut(usize, Point) -> P,
    {
        let deploy = scenario.deployment_for(seed);
        let protocols: Vec<P> = deploy
            .points()
            .iter()
            .enumerate()
            .map(|(i, &p)| make(i, p))
            .collect();
        let faults = scenario.faults_for(seed);
        let mut engine = Engine::new(scenario.params, deploy.into_points(), protocols, seed)
            .with_faults(faults)
            .with_par_channels(scenario.par_channels)
            .with_shards(scenario.shards)
            .with_par_shards(scenario.par_shards);
        // Honor the scenario's `[obs]` request only when the recorder is
        // compiled in: a no-op recorder would still flip the engine's
        // timing branches on for nothing.
        if mca_obs::enabled() {
            if let Some(o) = scenario.obs.filter(|o| o.enabled) {
                engine.attach_obs(mca_obs::Recorder::new().with_channel_stream(o.channel_stream));
            }
        }
        let (env, env_rng) = scenario.environment_for(seed);
        let env_static = env.is_static();
        ScenarioSim {
            engine,
            env: Box::new(env),
            env_rng,
            env_static,
            name: scenario.name.clone(),
            maintenance: scenario.maintenance,
        }
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario's maintenance policy, if any.
    pub fn maintenance(&self) -> Option<&MaintenanceSpec> {
        self.maintenance.as_ref()
    }

    /// Executes one slot: environment first, then the engine.
    pub fn step(&mut self) {
        if !self.env_static {
            let slot = self.engine.slot();
            let (positions, conditions, faults) = self.engine.env_parts();
            let mut world = World {
                positions,
                conditions,
                faults,
                rng: &mut self.env_rng,
            };
            self.env.step(slot, &mut world);
        }
        self.engine.step();
    }

    /// Executes exactly `slots` slots.
    pub fn run(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }

    /// Runs `slots` slots in maintenance epochs: after every
    /// `maintenance.every` slots (and after the final partial epoch)
    /// `at_epoch(self, epoch_index)` is invoked — the hook where a
    /// structure maintainer drains engine events and repairs. Returns the
    /// number of epochs fired; without a maintenance policy the run is a
    /// plain [`ScenarioSim::run`] and no epochs fire.
    pub fn run_epochs<F: FnMut(&mut Self, u64)>(&mut self, slots: u64, mut at_epoch: F) -> u64 {
        let Some(every) = self.maintenance.map(|m| m.every.max(1)) else {
            self.run(slots);
            return 0;
        };
        let mut remaining = slots;
        let mut epoch = 0;
        while remaining > 0 {
            let chunk = every.min(remaining);
            self.run(chunk);
            remaining -= chunk;
            at_epoch(self, epoch);
            epoch += 1;
        }
        epoch
    }

    /// Steps until every protocol is done or `max_slots` is reached;
    /// returns `true` if all protocols finished.
    pub fn run_until_done(&mut self, max_slots: u64) -> bool {
        while self.engine.slot() < max_slots {
            if self.engine.all_done() {
                return true;
            }
            self.step();
        }
        self.engine.all_done()
    }

    /// Steps until `pred(protocols)` holds or `max_slots` is reached;
    /// returns `true` if the predicate became true.
    pub fn run_until<F: FnMut(&[P]) -> bool>(&mut self, max_slots: u64, mut pred: F) -> bool {
        while self.engine.slot() < max_slots {
            if pred(self.engine.protocols()) {
                return true;
            }
            self.step();
        }
        pred(self.engine.protocols())
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine<P> {
        &self.engine
    }

    /// Mutable access to the underlying engine (e.g. to enable tracing).
    pub fn engine_mut(&mut self) -> &mut Engine<P> {
        &mut self.engine
    }

    /// Current node positions.
    pub fn positions(&self) -> &[Point] {
        self.engine.positions()
    }

    /// The per-node protocol states.
    pub fn protocols(&self) -> &[P] {
        self.engine.protocols()
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> &Metrics {
        self.engine.metrics()
    }

    /// The engine's observability recorder, if the scenario's `[obs]`
    /// request attached one (see [`crate::ObsSpec`]).
    pub fn obs(&self) -> Option<&mca_obs::Recorder> {
        self.engine.obs()
    }

    /// Mutable access to the attached recorder (e.g. to add counters).
    pub fn obs_mut(&mut self) -> Option<&mut mca_obs::Recorder> {
        self.engine.obs_mut()
    }

    /// Detaches and returns the recorder for reporting.
    pub fn take_obs(&mut self) -> Option<mca_obs::Recorder> {
        self.engine.take_obs()
    }

    /// Slots executed so far.
    pub fn slot(&self) -> u64 {
        self.engine.slot()
    }

    /// Consumes the sim, returning the engine.
    pub fn into_engine(self) -> Engine<P> {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DeploymentSpec, ObsSpec};
    use mca_radio::{Action, Channel, Observation};

    struct Beacon {
        id: u32,
        heard: u32,
    }

    impl Protocol for Beacon {
        type Msg = u32;
        fn act(&mut self, _s: u64, _r: &mut SmallRng) -> Action<u32> {
            if self.id == 0 {
                Action::Transmit {
                    channel: Channel::FIRST,
                    msg: self.id,
                }
            } else {
                Action::Listen {
                    channel: Channel::FIRST,
                }
            }
        }
        fn observe(&mut self, _s: u64, obs: Observation<u32>, _r: &mut SmallRng) {
            if obs.reception().is_some() {
                self.heard += 1;
            }
        }
    }

    fn beacons(obs: Option<ObsSpec>) -> ScenarioSim<Beacon> {
        let mut b =
            Scenario::builder("obs-sim").deployment(DeploymentSpec::Uniform { n: 12, side: 4.0 });
        if let Some(o) = obs {
            b = b.obs(o);
        }
        ScenarioSim::new(&b.build(), 5, |i, _| Beacon {
            id: i as u32,
            heard: 0,
        })
    }

    #[test]
    fn obs_request_never_perturbs_the_trial() {
        let run = |obs| {
            let mut sim = beacons(obs);
            sim.run(20);
            sim.metrics().clone()
        };
        let plain = run(None);
        let observed = run(Some(ObsSpec::default()));
        assert_eq!(plain, observed);
    }

    #[test]
    fn obs_request_attaches_iff_compiled_in() {
        let mut sim = beacons(Some(ObsSpec::default()));
        sim.run(10);
        if mca_obs::enabled() {
            let rec = sim.obs().expect("recorder attached");
            assert!(!rec.is_empty());
            assert!(sim.take_obs().is_some());
        } else {
            assert!(sim.obs().is_none());
        }
        // A disabled request never attaches.
        let sim = beacons(Some(ObsSpec {
            enabled: false,
            channel_stream: true,
        }));
        assert!(sim.obs().is_none());
        // No request, no recorder.
        assert!(beacons(None).obs().is_none());
    }
}
