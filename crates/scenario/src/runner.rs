//! Parallel execution of (scenario × seed) trial matrices.

use crate::spec::Scenario;
use mca_analysis::{trial_seed, TrialOutcome};
use rayon::prelude::*;

/// All trials of one scenario, in seed order.
#[derive(Debug, Clone)]
pub struct ScenarioTrials<T> {
    /// The scenario's name.
    pub name: String,
    /// Per-trial results and the seeds that produced them.
    pub outcome: TrialOutcome<T>,
}

/// Runs every (scenario, seed) pair of a sweep, in parallel by default.
///
/// Each trial is the pure function `trial(&scenario, seed)`, so the
/// parallel schedule cannot affect results: the runner always returns the
/// same per-trial values, in the same order, as a sequential run. Seeds are
/// derived per trial index from the master seed (the *same* seed list for
/// every scenario, giving paired comparisons across scenarios).
///
/// # Examples
///
/// ```
/// use mca_scenario::{DeploymentSpec, Scenario, ScenarioRunner};
///
/// let scenario = Scenario::builder("tiny")
///     .deployment(DeploymentSpec::Line { n: 3, spacing: 1.0 })
///     .build();
/// let out = ScenarioRunner::new(scenario).trials(4).run(|s, seed| {
///     (s.len(), seed % 2)
/// });
/// assert_eq!(out[0].outcome.results.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    scenarios: Vec<Scenario>,
    trials: usize,
    master_seed: u64,
    parallel: bool,
}

impl ScenarioRunner {
    /// A runner over a single scenario.
    pub fn new(scenario: Scenario) -> Self {
        ScenarioRunner::sweep(vec![scenario])
    }

    /// A runner over a whole sweep of scenarios.
    pub fn sweep(scenarios: Vec<Scenario>) -> Self {
        ScenarioRunner {
            scenarios,
            trials: 8,
            master_seed: 0xC0DE,
            parallel: true,
        }
    }

    /// Sets the number of trials per scenario.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed trial seeds are derived from.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Forces sequential execution (for debugging or baselining; results
    /// are identical either way).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// The per-trial seeds used for every scenario.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.trials as u64)
            .map(|i| trial_seed(self.master_seed, i))
            .collect()
    }

    /// Executes the full (scenario × seed) matrix.
    ///
    /// `trial` must be a pure function of its arguments; it runs once per
    /// pair, across all CPU cores unless [`ScenarioRunner::sequential`] was
    /// called.
    pub fn run<T, F>(&self, trial: F) -> Vec<ScenarioTrials<T>>
    where
        T: Send,
        F: Fn(&Scenario, u64) -> T + Sync,
    {
        let seeds = self.seeds();
        let jobs: Vec<(usize, u64)> = (0..self.scenarios.len())
            .flat_map(|si| seeds.iter().map(move |&s| (si, s)))
            .collect();
        let results: Vec<T> = if self.parallel {
            jobs.into_par_iter()
                .map(|(si, seed)| trial(&self.scenarios[si], seed))
                .collect()
        } else {
            jobs.into_iter()
                .map(|(si, seed)| trial(&self.scenarios[si], seed))
                .collect()
        };

        let mut out = Vec::with_capacity(self.scenarios.len());
        let mut it = results.into_iter();
        for s in &self.scenarios {
            let results: Vec<T> = it.by_ref().take(self.trials).collect();
            out.push(ScenarioTrials {
                name: s.name.clone(),
                outcome: TrialOutcome {
                    results,
                    seeds: seeds.clone(),
                },
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeploymentSpec;

    fn tiny(name: &str, n: usize) -> Scenario {
        Scenario::builder(name)
            .deployment(DeploymentSpec::Uniform { n, side: 5.0 })
            .build()
    }

    #[test]
    fn matrix_shape_and_seed_reuse() {
        let out = ScenarioRunner::sweep(vec![tiny("a", 3), tiny("b", 4)])
            .trials(5)
            .master_seed(77)
            .run(|s, seed| (s.name.clone(), seed));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].name, "a");
        assert_eq!(out[1].name, "b");
        for st in &out {
            assert_eq!(st.outcome.results.len(), 5);
            assert_eq!(st.outcome.seeds.len(), 5);
            for (r, s) in st.outcome.results.iter().zip(&st.outcome.seeds) {
                assert_eq!(r.1, *s, "result paired with its seed");
            }
        }
        // Same seed list across scenarios → paired trials.
        assert_eq!(out[0].outcome.seeds, out[1].outcome.seeds);
    }

    #[test]
    fn parallel_equals_sequential() {
        let mk = || ScenarioRunner::sweep(vec![tiny("a", 6), tiny("b", 2)]).trials(16);
        let par = mk().run(|s, seed| {
            // A nontrivial pure function of (scenario, seed).
            s.deployment_for(seed)
                .points()
                .iter()
                .map(|p| p.x + 2.0 * p.y)
                .sum::<f64>()
        });
        let seq = mk().sequential().run(|s, seed| {
            s.deployment_for(seed)
                .points()
                .iter()
                .map(|p| p.x + 2.0 * p.y)
                .sum::<f64>()
        });
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.outcome.results, b.outcome.results);
            assert_eq!(a.outcome.seeds, b.outcome.seeds);
        }
    }

    #[test]
    fn summaries_compose_with_analysis() {
        let out = ScenarioRunner::new(tiny("s", 10))
            .trials(6)
            .run(|s, seed| s.deployment_for(seed).len() as f64);
        let med = out[0].outcome.summarize(|&x| x).median();
        assert_eq!(med, 10.0);
    }
}
