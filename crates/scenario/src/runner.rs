//! Keyed execution of (scenario × seed) trial matrices.
//!
//! The unit of work is a [`TrialKey`] — `(scenario_id, seed)` — and every
//! trial is a pure function of its key, so results are bit-identical
//! regardless of thread count or schedule. A [`TrialSet`] enumerates keys
//! lazily (scenario-major: all seeds of scenario 0, then scenario 1, …)
//! without materializing a job list, and execution streams results into a
//! [`TrialSink`] *in enumeration order* as they complete. That ordered
//! stream is what makes checkpoint/resume free: a journal of completed
//! keys is always a prefix of the enumeration, and re-running the set with
//! that prefix skipped produces the same remaining records byte for byte.
//!
//! [`ScenarioRunner`] is the compatibility layer over this API: the same
//! builder surface as before, with results regrouped per scenario via an
//! ordered [`CollectSink`].

use crate::spec::Scenario;
use mca_analysis::{trial_seed, KeyedTrial, TrialKey, TrialOutcome};
use rayon::prelude::*;
use std::ops::Range;

/// Trials per parallel batch during streaming execution.
///
/// Execution proceeds batch by batch: each batch is resolved across the
/// worker pool, then emitted to the sink sequentially in enumeration
/// order. The batch size bounds how much completed-but-unemitted work can
/// exist at once; it has no effect on results or on the emitted byte
/// stream (trials are pure functions of their keys).
const EMIT_BATCH: usize = 64;

/// Validation errors raised when assembling a [`TrialSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialSetError {
    /// Two scenarios in the set share a name. Keys would collide: results
    /// could not be attributed, journals could not be replayed.
    DuplicateScenarioName(String),
}

impl std::fmt::Display for TrialSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrialSetError::DuplicateScenarioName(name) => write!(
                f,
                "duplicate scenario name {name:?}: trial keys must be unique \
                 (rename one of the scenarios)"
            ),
        }
    }
}

impl std::error::Error for TrialSetError {}

/// A streaming consumer of keyed trial results.
///
/// The runner calls [`TrialSink::record`] once per trial, strictly in key
/// enumeration order, as soon as each trial's batch has resolved. Sinks
/// therefore see a deterministic stream and can write it out (JSONL,
/// journal lines) without any reordering buffer.
pub trait TrialSink<T> {
    /// Accepts the next completed trial. Called in enumeration order.
    fn record(&mut self, trial: KeyedTrial<T>);
}

/// The ordered-collection sink: buffers every trial in enumeration order.
///
/// This is the compatibility path — [`ScenarioRunner::run`] streams into a
/// `CollectSink` and regroups per scenario afterwards.
#[derive(Debug, Clone)]
pub struct CollectSink<T> {
    /// Every recorded trial, in key enumeration order.
    pub trials: Vec<KeyedTrial<T>>,
}

impl<T> CollectSink<T> {
    /// An empty sink.
    pub fn new() -> Self {
        CollectSink { trials: Vec::new() }
    }
}

impl<T> Default for CollectSink<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TrialSink<T> for CollectSink<T> {
    fn record(&mut self, trial: KeyedTrial<T>) {
        self.trials.push(trial);
    }
}

/// Any closure over a [`KeyedTrial`] is a sink.
impl<T, F: FnMut(KeyedTrial<T>)> TrialSink<T> for F {
    fn record(&mut self, trial: KeyedTrial<T>) {
        self(trial)
    }
}

/// A validated (scenario × seed) matrix with lazily enumerated keys.
///
/// Keys are ordered scenario-major: trial `i` runs scenario `i / seeds`
/// under seed `i % seeds`. Every scenario runs under the *same* seed list,
/// giving paired comparisons across scenarios. Scenario names are
/// validated unique at construction, so a [`TrialKey`] identifies exactly
/// one trial of the set.
///
/// # Examples
///
/// ```
/// use mca_scenario::{CollectSink, DeploymentSpec, Scenario, TrialSet};
///
/// let scenario = Scenario::builder("tiny")
///     .deployment(DeploymentSpec::Line { n: 3, spacing: 1.0 })
///     .build();
/// let set = TrialSet::with_derived_seeds(vec![scenario], 7, 4).unwrap();
/// assert_eq!(set.len(), 4);
/// let mut sink = CollectSink::new();
/// set.run_streaming(false, |s, seed| (s.len(), seed), &mut sink);
/// assert_eq!(sink.trials.len(), 4);
/// assert_eq!(sink.trials[0].key.scenario_id, "tiny");
/// ```
#[derive(Debug, Clone)]
pub struct TrialSet {
    scenarios: Vec<Scenario>,
    seeds: Vec<u64>,
}

impl TrialSet {
    /// Builds a set from explicit scenarios and seeds, validating that
    /// scenario names are unique.
    pub fn new(scenarios: Vec<Scenario>, seeds: Vec<u64>) -> Result<Self, TrialSetError> {
        for (i, s) in scenarios.iter().enumerate() {
            if scenarios[..i].iter().any(|p| p.name == s.name) {
                return Err(TrialSetError::DuplicateScenarioName(s.name.clone()));
            }
        }
        Ok(TrialSet { scenarios, seeds })
    }

    /// Builds a set whose seed list is derived from `master` via
    /// [`trial_seed`] — the historical `ScenarioRunner` seed schedule.
    pub fn with_derived_seeds(
        scenarios: Vec<Scenario>,
        master: u64,
        trials: usize,
    ) -> Result<Self, TrialSetError> {
        let seeds = (0..trials as u64).map(|i| trial_seed(master, i)).collect();
        TrialSet::new(scenarios, seeds)
    }

    /// The scenarios of the set, in enumeration order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The per-scenario seed list (shared by every scenario).
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Total number of trials (`scenarios × seeds`).
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.seeds.len()
    }

    /// Whether the set contains no trials.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scenario and seed of trial `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn pair(&self, i: usize) -> (&Scenario, u64) {
        let (si, ti) = (i / self.seeds.len(), i % self.seeds.len());
        (&self.scenarios[si], self.seeds[ti])
    }

    /// The key of trial `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn key_at(&self, i: usize) -> TrialKey {
        let (s, seed) = self.pair(i);
        TrialKey::new(s.name.clone(), seed)
    }

    /// Lazily enumerates every key of the set, in execution order.
    pub fn keys(&self) -> impl ExactSizeIterator<Item = TrialKey> + '_ {
        (0..self.len()).map(|i| self.key_at(i))
    }

    /// The enumeration index of `key`, if it names a trial of this set.
    pub fn position(&self, key: &TrialKey) -> Option<usize> {
        let si = self
            .scenarios
            .iter()
            .position(|s| s.name == key.scenario_id)?;
        let ti = self.seeds.iter().position(|&s| s == key.seed)?;
        Some(si * self.seeds.len() + ti)
    }

    /// Runs every trial of the set, streaming results into `sink` in
    /// enumeration order.
    ///
    /// `trial` must be a pure function of its arguments. With `parallel`
    /// set, each fixed-size batch of trials resolves across the worker
    /// pool; emission order (and therefore every byte a sink writes) is
    /// identical either way.
    pub fn run_streaming<T, F, S>(&self, parallel: bool, trial: F, sink: &mut S)
    where
        T: Send,
        F: Fn(&Scenario, u64) -> T + Sync,
        S: TrialSink<T> + ?Sized,
    {
        self.run_range(0..self.len(), parallel, trial, sink)
    }

    /// Runs the trials whose enumeration indices fall in `range` (clamped
    /// to the set), streaming results into `sink` in enumeration order.
    ///
    /// This is the resume primitive: a sweep that has journaled its first
    /// `k` trials re-runs as `run_range(k..len, …)` and the emitted stream
    /// continues exactly where the interrupted run stopped.
    pub fn run_range<T, F, S>(&self, range: Range<usize>, parallel: bool, trial: F, sink: &mut S)
    where
        T: Send,
        F: Fn(&Scenario, u64) -> T + Sync,
        S: TrialSink<T> + ?Sized,
    {
        let end = range.end.min(self.len());
        let mut next = range.start.min(end);
        while next < end {
            let batch_end = (next + EMIT_BATCH).min(end);
            let indices: Vec<usize> = (next..batch_end).collect();
            let results: Vec<T> = if parallel {
                indices
                    .clone()
                    .into_par_iter()
                    .map(|i| {
                        let (s, seed) = self.pair(i);
                        trial(s, seed)
                    })
                    .collect()
            } else {
                indices
                    .iter()
                    .map(|&i| {
                        let (s, seed) = self.pair(i);
                        trial(s, seed)
                    })
                    .collect()
            };
            for (i, result) in indices.into_iter().zip(results) {
                sink.record(KeyedTrial {
                    key: self.key_at(i),
                    result,
                });
            }
            next = batch_end;
        }
    }
}

/// All trials of one scenario, in seed order.
#[derive(Debug, Clone)]
pub struct ScenarioTrials<T> {
    /// The scenario's name.
    pub name: String,
    /// Per-trial results and the seeds that produced them.
    pub outcome: TrialOutcome<T>,
}

/// Runs every (scenario, seed) pair of a sweep, in parallel by default.
///
/// This is the compatibility layer over [`TrialSet`]: the same builder
/// surface the repo has always had, now keyed underneath. Each trial is
/// the pure function `trial(&scenario, seed)`, so the parallel schedule
/// cannot affect results. Seeds are derived per trial index from the
/// master seed (the *same* seed list for every scenario, giving paired
/// comparisons across scenarios). Scenario names must be unique —
/// [`ScenarioRunner::run`] panics on duplicates; use
/// [`ScenarioRunner::try_run`] to handle the error.
///
/// # Examples
///
/// ```
/// use mca_scenario::{DeploymentSpec, Scenario, ScenarioRunner};
///
/// let scenario = Scenario::builder("tiny")
///     .deployment(DeploymentSpec::Line { n: 3, spacing: 1.0 })
///     .build();
/// let out = ScenarioRunner::new(scenario).trials(4).run(|s, seed| {
///     (s.len(), seed % 2)
/// });
/// assert_eq!(out[0].outcome.results.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    scenarios: Vec<Scenario>,
    trials: usize,
    master_seed: u64,
    parallel: bool,
}

impl ScenarioRunner {
    /// A runner over a single scenario.
    pub fn new(scenario: Scenario) -> Self {
        ScenarioRunner::sweep(vec![scenario])
    }

    /// A runner over a whole sweep of scenarios.
    pub fn sweep(scenarios: Vec<Scenario>) -> Self {
        ScenarioRunner {
            scenarios,
            trials: 8,
            master_seed: 0xC0DE,
            parallel: true,
        }
    }

    /// Sets the number of trials per scenario.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed trial seeds are derived from.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Forces sequential execution (for debugging or baselining; results
    /// are identical either way).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// The per-trial seeds used for every scenario.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.trials as u64)
            .map(|i| trial_seed(self.master_seed, i))
            .collect()
    }

    /// The validated [`TrialSet`] this runner executes.
    pub fn trial_set(&self) -> Result<TrialSet, TrialSetError> {
        TrialSet::new(self.scenarios.clone(), self.seeds())
    }

    /// Executes the full (scenario × seed) matrix.
    ///
    /// `trial` must be a pure function of its arguments; it runs once per
    /// pair, across all CPU cores unless [`ScenarioRunner::sequential`] was
    /// called.
    ///
    /// # Panics
    ///
    /// Panics if two scenarios share a name (keys would collide and
    /// results could not be attributed); see [`ScenarioRunner::try_run`].
    pub fn run<T, F>(&self, trial: F) -> Vec<ScenarioTrials<T>>
    where
        T: Send,
        F: Fn(&Scenario, u64) -> T + Sync,
    {
        match self.try_run(trial) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Executes the matrix, returning the duplicate-name validation error
    /// instead of panicking.
    pub fn try_run<T, F>(&self, trial: F) -> Result<Vec<ScenarioTrials<T>>, TrialSetError>
    where
        T: Send,
        F: Fn(&Scenario, u64) -> T + Sync,
    {
        let set = self.trial_set()?;
        let mut sink = CollectSink::new();
        set.run_streaming(self.parallel, trial, &mut sink);

        // Group explicitly by each result's key (names are validated
        // unique, so the id → slot mapping is unambiguous — this is the
        // fix for the old positional `take(trials)` regrouping, which
        // silently misassigned results under duplicate names).
        let seeds = set.seeds().to_vec();
        let mut out: Vec<ScenarioTrials<T>> = set
            .scenarios()
            .iter()
            .map(|s| ScenarioTrials {
                name: s.name.clone(),
                outcome: TrialOutcome {
                    results: Vec::with_capacity(seeds.len()),
                    seeds: seeds.clone(),
                },
            })
            .collect();
        for trial in sink.trials {
            let slot = out
                .iter_mut()
                .find(|st| st.name == trial.key.scenario_id)
                .expect("recorded key names a scenario of the set");
            slot.outcome.results.push(trial.result);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeploymentSpec;

    fn tiny(name: &str, n: usize) -> Scenario {
        Scenario::builder(name)
            .deployment(DeploymentSpec::Uniform { n, side: 5.0 })
            .build()
    }

    #[test]
    fn matrix_shape_and_seed_reuse() {
        let out = ScenarioRunner::sweep(vec![tiny("a", 3), tiny("b", 4)])
            .trials(5)
            .master_seed(77)
            .run(|s, seed| (s.name.clone(), seed));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].name, "a");
        assert_eq!(out[1].name, "b");
        for st in &out {
            assert_eq!(st.outcome.results.len(), 5);
            assert_eq!(st.outcome.seeds.len(), 5);
            for (r, s) in st.outcome.results.iter().zip(&st.outcome.seeds) {
                assert_eq!(r.1, *s, "result paired with its seed");
            }
        }
        // Same seed list across scenarios → paired trials.
        assert_eq!(out[0].outcome.seeds, out[1].outcome.seeds);
    }

    #[test]
    fn parallel_equals_sequential() {
        let mk = || ScenarioRunner::sweep(vec![tiny("a", 6), tiny("b", 2)]).trials(16);
        let par = mk().run(|s, seed| {
            // A nontrivial pure function of (scenario, seed).
            s.deployment_for(seed)
                .points()
                .iter()
                .map(|p| p.x + 2.0 * p.y)
                .sum::<f64>()
        });
        let seq = mk().sequential().run(|s, seed| {
            s.deployment_for(seed)
                .points()
                .iter()
                .map(|p| p.x + 2.0 * p.y)
                .sum::<f64>()
        });
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.outcome.results, b.outcome.results);
            assert_eq!(a.outcome.seeds, b.outcome.seeds);
        }
    }

    #[test]
    fn summaries_compose_with_analysis() {
        let out = ScenarioRunner::new(tiny("s", 10))
            .trials(6)
            .run(|s, seed| s.deployment_for(seed).len() as f64);
        let med = out[0].outcome.summarize(|&x| x).median();
        assert_eq!(med, 10.0);
    }

    #[test]
    fn keys_enumerate_scenario_major_and_lazily() {
        let set = TrialSet::new(vec![tiny("a", 2), tiny("b", 2)], vec![10, 20]).unwrap();
        assert_eq!(set.len(), 4);
        let keys: Vec<TrialKey> = set.keys().collect();
        assert_eq!(keys[0], TrialKey::new("a", 10));
        assert_eq!(keys[1], TrialKey::new("a", 20));
        assert_eq!(keys[2], TrialKey::new("b", 10));
        assert_eq!(keys[3], TrialKey::new("b", 20));
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(set.key_at(i), *k);
            assert_eq!(set.position(k), Some(i));
        }
        assert_eq!(set.position(&TrialKey::new("c", 10)), None);
        assert_eq!(set.position(&TrialKey::new("a", 30)), None);
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let err = TrialSet::new(vec![tiny("same", 2), tiny("same", 3)], vec![1]).unwrap_err();
        assert_eq!(err, TrialSetError::DuplicateScenarioName("same".into()));
        assert!(err.to_string().contains("\"same\""), "{err}");
        let res = ScenarioRunner::sweep(vec![tiny("dup", 2), tiny("dup", 3)])
            .trials(2)
            .try_run(|_, seed| seed);
        assert!(matches!(
            res,
            Err(TrialSetError::DuplicateScenarioName(ref n)) if n == "dup"
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn run_panics_on_duplicate_names() {
        ScenarioRunner::sweep(vec![tiny("dup", 2), tiny("dup", 3)])
            .trials(1)
            .run(|_, seed| seed);
    }

    #[test]
    fn streaming_emits_in_enumeration_order_under_parallelism() {
        let set =
            TrialSet::with_derived_seeds(vec![tiny("a", 3), tiny("b", 3), tiny("c", 3)], 9, 50)
                .unwrap();
        let mut seq_stream = Vec::new();
        set.run_streaming(
            false,
            |s, seed| format!("{}:{seed}", s.name),
            &mut |t: KeyedTrial<String>| seq_stream.push(t.result),
        );
        let mut par_stream = Vec::new();
        set.run_streaming(
            true,
            |s, seed| format!("{}:{seed}", s.name),
            &mut |t: KeyedTrial<String>| par_stream.push(t.result),
        );
        assert_eq!(seq_stream.len(), set.len());
        assert_eq!(
            seq_stream, par_stream,
            "emission order must not depend on schedule"
        );
    }

    #[test]
    fn run_range_resumes_exactly_where_a_prefix_stopped() {
        let set = TrialSet::with_derived_seeds(vec![tiny("a", 2), tiny("b", 2)], 4, 7).unwrap();
        let trial = |s: &Scenario, seed: u64| (s.name.clone(), seed);
        let mut full = CollectSink::new();
        set.run_streaming(true, trial, &mut full);
        // Interrupt after k trials, then resume from k: the concatenation
        // must equal the uninterrupted stream, for every split point.
        for k in 0..=set.len() {
            let mut head = CollectSink::new();
            set.run_range(0..k, true, trial, &mut head);
            let mut tail = CollectSink::new();
            set.run_range(k..set.len(), true, trial, &mut tail);
            assert_eq!(head.trials.len(), k);
            let glued: Vec<_> = head.trials.iter().chain(&tail.trials).collect();
            for (a, b) in glued.iter().zip(&full.trials) {
                assert_eq!(a.key, b.key);
                assert_eq!(a.result, b.result);
            }
            assert_eq!(glued.len(), full.trials.len());
        }
    }

    #[test]
    fn empty_sets_and_out_of_range_are_safe() {
        let set = TrialSet::new(vec![tiny("a", 2)], vec![]).unwrap();
        assert!(set.is_empty());
        assert_eq!(set.keys().count(), 0);
        let mut sink = CollectSink::<u64>::new();
        set.run_streaming(true, |_, seed| seed, &mut sink);
        assert!(sink.trials.is_empty());
        let set = TrialSet::new(vec![tiny("a", 2)], vec![1, 2]).unwrap();
        let mut sink = CollectSink::<u64>::new();
        set.run_range(5..99, true, |_, seed| seed, &mut sink);
        assert!(sink.trials.is_empty());
    }
}
