//! # `mca-scenario` — dynamic-environment scenarios for the multichannel
//! SINR simulator
//!
//! The seed reproduction runs every experiment over a *static* world: one
//! placement, fixed channels, no churn. This crate turns the simulator into
//! a general ad-hoc-network experimentation platform:
//!
//! * [`EnvironmentModel`] — a hook evaluated once per slot that may move
//!   nodes, rewrite per-channel [`ChannelCondition`](mca_radio::ChannelCondition)s,
//!   or inject churn into the fault plan. Implementations provided:
//!   [`StaticEnvironment`], [`RandomWaypoint`] and [`GroupConvoy`] mobility,
//!   and [`GilbertElliot`] per-channel fading;
//! * [`Scenario`] — a declarative description (deployment + mobility +
//!   fading + churn + faults + physical parameters) with a builder API, so
//!   every experiment names its world as data;
//! * [`ScenarioSim`] — an [`Engine`](mca_radio::Engine) paired with the
//!   scenario's environment, stepped in lockstep;
//! * [`TrialSet`] / [`TrialSink`] — the keyed-trial API: every trial is
//!   named by a [`TrialKey`] `(scenario_id, seed)`, keys enumerate lazily,
//!   and results stream out in enumeration order (the basis of sweep
//!   checkpoint/resume); [`ScenarioRunner`] is the ordered-collection
//!   compatibility layer over it, feeding
//!   [`TrialOutcome`](mca_analysis::TrialOutcome) summaries;
//! * [`matrix`] — `[matrix]` sweep expansion: one TOML file describing a
//!   base scenario plus axes (n × channels × speed × fading × seeds)
//!   expands into a named [`TrialSet`];
//! * [`toml`] — lossless TOML (de)serialization
//!   (`Scenario::{to_toml, from_toml_str, load, save}`), so worlds live in
//!   version-controlled data files; the schema reference is
//!   `docs/SCENARIO_FORMAT.md`;
//! * [`catalog`] — the built-in worlds committed under `scenarios/` and
//!   exported by `experiments export-scenarios`.
//!
//! # Determinism
//!
//! A trial is a pure function of `(scenario, seed)`. Deployment, churn, and
//! environment randomness run on RNG streams derived from the trial seed
//! with distinct salts, so they never perturb the per-node protocol
//! streams; a static scenario is bit-identical to driving a plain `Engine`
//! over the same deployment with the same master seed, and the parallel
//! runner returns exactly the sequential results.
//!
//! # Examples
//!
//! ```
//! use mca_scenario::{
//!     DeploymentSpec, FadingSpec, MobilitySpec, Scenario, ScenarioRunner, ScenarioSim,
//! };
//! use mca_radio::{Action, Channel, Observation, Protocol};
//! use rand::rngs::SmallRng;
//!
//! // A beaconing protocol: node 0 transmits, everyone else listens.
//! struct Beacon { id: u32, heard: u32 }
//! impl Protocol for Beacon {
//!     type Msg = u32;
//!     fn act(&mut self, _s: u64, _r: &mut SmallRng) -> Action<u32> {
//!         if self.id == 0 {
//!             Action::Transmit { channel: Channel::FIRST, msg: self.id }
//!         } else {
//!             Action::Listen { channel: Channel::FIRST }
//!         }
//!     }
//!     fn observe(&mut self, _s: u64, obs: Observation<u32>, _r: &mut SmallRng) {
//!         if obs.reception().is_some() { self.heard += 1; }
//!     }
//! }
//!
//! // A mobile, fading world, described as data.
//! let scenario = Scenario::builder("mobile-fading")
//!     .deployment(DeploymentSpec::Uniform { n: 30, side: 8.0 })
//!     .mobility(MobilitySpec::RandomWaypoint { speed_min: 0.05, speed_max: 0.2, pause: 4 })
//!     .fading(FadingSpec::interference(0.02, 0.2, 100.0))
//!     .channels(4)
//!     .build();
//!
//! // One trial, driven directly…
//! let mut sim = ScenarioSim::new(&scenario, 7, |i, _pos| Beacon { id: i as u32, heard: 0 });
//! sim.run(50);
//! assert_eq!(sim.slot(), 50);
//!
//! // …or a parallel multi-trial sweep.
//! let out = ScenarioRunner::new(scenario).trials(4).run(|s, seed| {
//!     let mut sim = ScenarioSim::new(s, seed, |i, _| Beacon { id: i as u32, heard: 0 });
//!     sim.run(50);
//!     sim.metrics().receptions
//! });
//! assert_eq!(out[0].outcome.results.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
pub mod catalog;
mod environment;
mod fading;
pub mod matrix;
mod mobility;
mod runner;
mod sim;
mod spec;
pub mod toml;

pub use adversary::{CorrelatedFading, TrackingJammer};
pub use catalog::{builtin_scenarios, CatalogEntry};
pub use environment::{CompositeEnvironment, EnvironmentModel, StaticEnvironment, World};
pub use fading::GilbertElliot;
pub use matrix::{MatrixSpec, SweepFile};
pub use mobility::{GroupConvoy, RandomWaypoint};
pub use runner::{CollectSink, ScenarioRunner, ScenarioTrials, TrialSet, TrialSetError, TrialSink};
pub use sim::ScenarioSim;
pub use spec::{
    AdversarySpec, ChurnSpec, DeploymentSpec, DutyCycleSpec, FadingSpec, MaintenanceSpec,
    MobilitySpec, ObsSpec, Scenario, ScenarioBuilder,
};
pub use toml::{FromToml, ScenarioFileError};

pub use mca_analysis::{KeyedTrial, TrialKey};
