//! Scenario ⇄ TOML (de)serialization.
//!
//! Implements [`ToToml`] / [`FromToml`] for [`Scenario`] and every spec it
//! contains — geometry, SINR parameters (including `resolve` mode and
//! `par_channels`), mobility, fading, churn, and fault plans — so a whole
//! experimental world round-trips through a version-controlled `.toml`
//! file. The schema is documented key-by-key in `docs/SCENARIO_FORMAT.md`;
//! the committed catalog under `scenarios/` holds worked examples.
//!
//! Guarantees:
//!
//! * **lossless** — `Scenario -> TOML -> Scenario` is `==` (floats are
//!   emitted with shortest-round-trip formatting, fault plans in sorted
//!   order), so a file-driven trial is bit-identical to its in-code
//!   original for the same seed;
//! * **strict** — unknown or missing fields, type mismatches, and
//!   out-of-range physics (e.g. `alpha <= 2`) fail with a
//!   [`TomlError`] naming the source line and dotted field path;
//! * **deterministic** — emission order is fixed, so goldens can pin the
//!   exact bytes.

use crate::spec::{
    AdversarySpec, ChurnSpec, DeploymentSpec, DutyCycleSpec, FadingSpec, MaintenanceSpec,
    MobilitySpec, ObsSpec, Scenario,
};
use mca_geom::{BoundingBox, Point};
use mca_radio::{ChannelCondition, FaultPlan, JamSpec};
use mca_serde::{emit, Fields, Table, ToToml, TomlError, Value};
use mca_sinr::{ResolveMode, SinrParams};
use std::fmt;
use std::path::{Path, PathBuf};

pub use mca_serde::FromToml;

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

impl ToToml for Scenario {
    fn to_toml_table(&self) -> Table {
        let mut root = Table::new()
            .with("name", Value::str(&self.name))
            .with("channels", Value::int(self.channels))
            .with("max_slots", Value::int(self.max_slots))
            .with("par_channels", Value::bool(self.par_channels))
            .with("sinr", Value::table(sinr_table(&self.params)))
            .with(
                "deployment",
                Value::table(deployment_table(&self.deployment)),
            );
        if self.shards > 0 || self.par_shards {
            root.insert("engine", Value::table(engine_table(self)));
        }
        if let Some(area) = self.area {
            root.insert("area", Value::table(area_table(&area)));
        }
        if self.mobility != MobilitySpec::Static {
            root.insert("mobility", Value::table(mobility_table(&self.mobility)));
        }
        if let Some(fading) = &self.fading {
            root.insert("fading", Value::table(fading_table(fading)));
        }
        if let Some(a) = &self.adversary {
            root.insert("adversary", Value::table(adversary_table(a)));
        }
        if let Some(d) = &self.duty_cycle {
            root.insert("duty_cycle", Value::table(duty_cycle_table(d)));
        }
        if self.churn != ChurnSpec::None {
            root.insert("churn", Value::table(churn_table(&self.churn)));
        }
        if !self.faults.is_trivial() {
            root.insert("faults", Value::table(faults_table(&self.faults)));
        }
        if let Some(m) = &self.maintenance {
            root.insert("maintenance", Value::table(maintenance_table(m)));
        }
        if let Some(o) = &self.obs {
            root.insert("obs", Value::table(obs_table(o)));
        }
        root
    }
}

/// The `[obs]` table: an observability request. Like `[engine]`, purely an
/// execution knob — recording never changes trial results.
fn obs_table(o: &ObsSpec) -> Table {
    Table::new()
        .with("enabled", Value::bool(o.enabled))
        .with("channel_stream", Value::bool(o.channel_stream))
}

/// The `[engine]` table: execution knobs (sharding) that never change
/// trial results, only how the engine schedules the work.
fn engine_table(s: &Scenario) -> Table {
    Table::new()
        .with("shards", Value::int(s.shards))
        .with("par_shards", Value::bool(s.par_shards))
}

fn maintenance_table(m: &MaintenanceSpec) -> Table {
    Table::new()
        .with("every", Value::int(m.every))
        .with("handover_hysteresis", Value::float(m.handover_hysteresis))
        .with("rebuild_threshold", Value::float(m.rebuild_threshold))
}

fn sinr_table(p: &SinrParams) -> Table {
    let mut t = Table::new()
        .with("alpha", Value::float(p.alpha))
        .with("beta", Value::float(p.beta))
        .with("noise", Value::float(p.noise))
        .with("power", Value::float(p.power))
        .with("eps", Value::float(p.eps))
        .with("min_dist", Value::float(p.min_dist));
    match p.resolve {
        ResolveMode::Exact => t.insert("resolve", Value::str("exact")),
        ResolveMode::Fast { cutoff_factor } => {
            t.insert("resolve", Value::str("fast"));
            t.insert("cutoff_factor", Value::float(cutoff_factor));
        }
    }
    t
}

fn deployment_table(d: &DeploymentSpec) -> Table {
    match *d {
        DeploymentSpec::Uniform { n, side } => Table::new()
            .with("kind", Value::str("uniform"))
            .with("n", Value::int(n as i128))
            .with("side", Value::float(side)),
        DeploymentSpec::Disk { n, radius } => Table::new()
            .with("kind", Value::str("disk"))
            .with("n", Value::int(n as i128))
            .with("radius", Value::float(radius)),
        DeploymentSpec::Grid {
            nx,
            ny,
            step,
            jitter,
        } => Table::new()
            .with("kind", Value::str("grid"))
            .with("nx", Value::int(nx as i128))
            .with("ny", Value::int(ny as i128))
            .with("step", Value::float(step))
            .with("jitter", Value::float(jitter)),
        DeploymentSpec::Line { n, spacing } => Table::new()
            .with("kind", Value::str("line"))
            .with("n", Value::int(n as i128))
            .with("spacing", Value::float(spacing)),
        DeploymentSpec::Corridor { n, length, width } => Table::new()
            .with("kind", Value::str("corridor"))
            .with("n", Value::int(n as i128))
            .with("length", Value::float(length))
            .with("width", Value::float(width)),
        DeploymentSpec::Explicit(ref points) => {
            Table::new().with("kind", Value::str("explicit")).with(
                "points",
                Value::array(points.iter().map(point_value).collect()),
            )
        }
    }
}

fn point_value(p: &Point) -> Value {
    Value::array(vec![Value::float(p.x), Value::float(p.y)])
}

fn area_table(b: &BoundingBox) -> Table {
    Table::new()
        .with("min", point_value(&b.min()))
        .with("max", point_value(&b.max()))
}

fn mobility_table(m: &MobilitySpec) -> Table {
    match *m {
        MobilitySpec::Static => Table::new().with("kind", Value::str("static")),
        MobilitySpec::RandomWaypoint {
            speed_min,
            speed_max,
            pause,
        } => Table::new()
            .with("kind", Value::str("random-waypoint"))
            .with("speed_min", Value::float(speed_min))
            .with("speed_max", Value::float(speed_max))
            .with("pause", Value::int(pause)),
        MobilitySpec::Convoy {
            groups,
            speed,
            spread,
            pause,
        } => Table::new()
            .with("kind", Value::str("convoy"))
            .with("groups", Value::int(groups as i128))
            .with("speed", Value::float(speed))
            .with("spread", Value::float(spread))
            .with("pause", Value::int(pause)),
    }
}

fn fading_table(f: &FadingSpec) -> Table {
    Table::new()
        .with("p_degrade", Value::float(f.p_degrade))
        .with("p_recover", Value::float(f.p_recover))
        .with("power", Value::float(f.bad.extra_interference))
        .with("drop", Value::bool(f.bad.drop))
}

fn adversary_table(a: &AdversarySpec) -> Table {
    match *a {
        AdversarySpec::TrackingJammer {
            epoch,
            radius,
            speed,
            channel,
        } => {
            let mut t = Table::new()
                .with("kind", Value::str("tracking-jammer"))
                .with("epoch", Value::int(epoch))
                .with("radius", Value::float(radius))
                .with("speed", Value::float(speed));
            if let Some(c) = channel {
                t.insert("channel", Value::int(c));
            }
            t
        }
        AdversarySpec::CorrelatedFading {
            p_degrade,
            p_recover,
            correlation,
            bad,
        } => Table::new()
            .with("kind", Value::str("correlated-fading"))
            .with("p_degrade", Value::float(p_degrade))
            .with("p_recover", Value::float(p_recover))
            .with("correlation", Value::float(correlation))
            .with("power", Value::float(bad.extra_interference))
            .with("drop", Value::bool(bad.drop)),
    }
}

fn duty_cycle_table(d: &DutyCycleSpec) -> Table {
    let mut t = Table::new()
        .with("period", Value::int(d.period))
        .with("on", Value::int(d.on))
        .with("stride", Value::int(d.stride));
    if let Some(n) = d.nodes {
        t.insert("nodes", Value::int(n as i128));
    }
    t
}

fn churn_table(c: &ChurnSpec) -> Table {
    match c {
        ChurnSpec::None => Table::new().with("kind", Value::str("none")),
        ChurnSpec::Random {
            join_fraction,
            join_window,
            crash_fraction,
            crash_window,
        } => Table::new()
            .with("kind", Value::str("random"))
            .with("join_fraction", Value::float(*join_fraction))
            .with(
                "join_window",
                Value::array(vec![Value::int(join_window.0), Value::int(join_window.1)]),
            )
            .with("crash_fraction", Value::float(*crash_fraction))
            .with(
                "crash_window",
                Value::array(vec![Value::int(crash_window.0), Value::int(crash_window.1)]),
            ),
        ChurnSpec::Explicit { joins, crashes } => Table::new()
            .with("kind", Value::str("explicit"))
            .with("joins", Value::pair_array(joins))
            .with("crashes", Value::pair_array(crashes)),
    }
}

fn faults_table(f: &FaultPlan) -> Table {
    let mut t = Table::new();
    let crashes = f.crash_events();
    if !crashes.is_empty() {
        t.insert("crashes", Value::pair_array(&crashes));
    }
    let joins = f.join_events();
    if !joins.is_empty() {
        t.insert("joins", Value::pair_array(&joins));
    }
    if !f.jams().is_empty() {
        t.insert(
            "jam",
            Value::array(
                f.jams()
                    .iter()
                    .map(|j| Value::table(jam_table(j)))
                    .collect(),
            ),
        );
    }
    t
}

fn jam_table(j: &JamSpec) -> Table {
    match *j {
        JamSpec::Fixed {
            channel,
            from,
            to,
            power,
        } => Table::new()
            .with("kind", Value::str("fixed"))
            .with("channel", Value::int(channel))
            .with("from", Value::int(from))
            .with("to", Value::int(to))
            .with("power", Value::float(power)),
        JamSpec::Random {
            t,
            total,
            power,
            seed,
        } => Table::new()
            .with("kind", Value::str("random"))
            .with("t", Value::int(t))
            .with("total", Value::int(total))
            .with("power", Value::float(power))
            .with("seed", Value::int(seed)),
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

impl FromToml for Scenario {
    fn from_toml_table(table: &Table) -> Result<Self, TomlError> {
        let mut root = Fields::of_table(table, "");
        let name = root.str("name")?.to_string();
        let channels = root.opt_u16("channels")?.unwrap_or(8);
        if channels == 0 {
            return Err(root.invalid("channels", "must be at least 1"));
        }
        let max_slots = root.opt_u64("max_slots")?.unwrap_or(10_000);
        let par_channels = root.opt_bool("par_channels")?.unwrap_or(false);
        let params = match root.opt_fields("sinr")? {
            Some(f) => decode_sinr(f)?,
            None => SinrParams::default(),
        };
        let (shards, par_shards) = match root.opt_fields("engine")? {
            Some(f) => decode_engine(f)?,
            None => (0, false),
        };
        let deployment = {
            let line = root.line();
            let f = root
                .opt_fields("deployment")?
                .ok_or_else(|| TomlError::field(line, "deployment", "missing required table"))?;
            decode_deployment(f)?
        };
        let area = match root.opt_fields("area")? {
            Some(f) => Some(decode_area(f)?),
            None => None,
        };
        let mobility = match root.opt_fields("mobility")? {
            Some(f) => decode_mobility(f)?,
            None => MobilitySpec::Static,
        };
        let fading = match root.opt_fields("fading")? {
            Some(f) => Some(decode_fading(f)?),
            None => None,
        };
        let n = deployment.len();
        let adversary = match root.opt_fields("adversary")? {
            Some(f) => Some(decode_adversary(f, channels)?),
            None => None,
        };
        let duty_cycle = match root.opt_fields("duty_cycle")? {
            Some(f) => Some(decode_duty_cycle(f)?),
            None => None,
        };
        let churn = match root.opt_fields("churn")? {
            Some(f) => decode_churn(f, n)?,
            None => ChurnSpec::None,
        };
        let faults = match root.opt_fields("faults")? {
            Some(f) => decode_faults(f, n, channels)?,
            None => FaultPlan::none(),
        };
        let maintenance = match root.opt_fields("maintenance")? {
            Some(f) => Some(decode_maintenance(f)?),
            None => None,
        };
        let obs = match root.opt_fields("obs")? {
            Some(f) => Some(decode_obs(f)?),
            None => None,
        };
        root.finish()?;
        Ok(Scenario {
            name,
            params,
            deployment,
            area,
            mobility,
            fading,
            adversary,
            duty_cycle,
            churn,
            faults,
            channels,
            max_slots,
            par_channels,
            shards,
            par_shards,
            maintenance,
            obs,
        })
    }
}

fn decode_obs(mut f: Fields<'_>) -> Result<ObsSpec, TomlError> {
    let enabled = f.opt_bool("enabled")?.unwrap_or(true);
    let channel_stream = f.opt_bool("channel_stream")?.unwrap_or(true);
    f.finish()?;
    Ok(ObsSpec {
        enabled,
        channel_stream,
    })
}

fn decode_engine(mut f: Fields<'_>) -> Result<(u16, bool), TomlError> {
    let shards = f.opt_u16("shards")?.unwrap_or(0);
    if shards > mca_radio::shard::MAX_SHARDS_PER_AXIS {
        return Err(f.invalid(
            "shards",
            format!(
                "shard count per axis must be at most {}, got {shards}",
                mca_radio::shard::MAX_SHARDS_PER_AXIS
            ),
        ));
    }
    let par_shards = f.opt_bool("par_shards")?.unwrap_or(false);
    f.finish()?;
    Ok((shards, par_shards))
}

fn decode_maintenance(mut f: Fields<'_>) -> Result<MaintenanceSpec, TomlError> {
    let every = f.u64("every")?;
    if every == 0 {
        return Err(f.invalid("every", "maintenance cadence must be at least 1 slot"));
    }
    let handover_hysteresis = f
        .opt_f64("handover_hysteresis")?
        .unwrap_or(MaintenanceSpec::DEFAULT_HYSTERESIS);
    if !(handover_hysteresis.is_finite() && handover_hysteresis >= 1.0) {
        return Err(f.invalid(
            "handover_hysteresis",
            format!("must be finite and at least 1, got {handover_hysteresis}"),
        ));
    }
    let rebuild_threshold = f
        .opt_f64("rebuild_threshold")?
        .unwrap_or(MaintenanceSpec::DEFAULT_REBUILD_THRESHOLD);
    if !(0.0..=1.0).contains(&rebuild_threshold) {
        return Err(f.invalid(
            "rebuild_threshold",
            format!("must lie in [0, 1], got {rebuild_threshold}"),
        ));
    }
    f.finish()?;
    Ok(MaintenanceSpec {
        every,
        handover_hysteresis,
        rebuild_threshold,
    })
}

fn decode_sinr(mut f: Fields<'_>) -> Result<SinrParams, TomlError> {
    let dflt = SinrParams::default();
    let alpha = f.opt_f64("alpha")?.unwrap_or(dflt.alpha);
    if !(alpha.is_finite() && alpha > 2.0) {
        return Err(f.invalid(
            "alpha",
            format!("path-loss exponent must exceed 2, got {alpha}"),
        ));
    }
    let beta = f.opt_f64("beta")?.unwrap_or(dflt.beta);
    if !(beta.is_finite() && beta >= 1.0) {
        return Err(f.invalid(
            "beta",
            format!("SINR threshold must be at least 1, got {beta}"),
        ));
    }
    let noise = f.opt_f64("noise")?.unwrap_or(dflt.noise);
    if !(noise.is_finite() && noise > 0.0) {
        return Err(f.invalid(
            "noise",
            format!("ambient noise must be positive, got {noise}"),
        ));
    }
    let eps = f.opt_f64("eps")?.unwrap_or(dflt.eps);
    if !(eps > 0.0 && eps < 1.0) {
        return Err(f.invalid("eps", format!("graph margin must lie in (0, 1), got {eps}")));
    }
    let (power, power_key, derived) = match (f.opt_f64("power")?, f.opt_f64("range")?) {
        (Some(_), Some(_)) => {
            return Err(f.invalid(
                "range",
                "`power` and `range` are mutually exclusive (range back-solves power)",
            ))
        }
        (Some(p), None) => (p, "power", false),
        (None, range) => {
            let range = range.unwrap_or(8.0);
            if !(range.is_finite() && range > 0.0) {
                return Err(f.invalid(
                    "range",
                    format!("transmission range must be positive, got {range}"),
                ));
            }
            (beta * noise * range.powf(alpha), "range", true)
        }
    };
    if !(power.is_finite() && power > 0.0) {
        // Blame the key the author actually wrote: when the power was
        // back-solved, the problem is the range (or alpha) making
        // `beta * noise * range^alpha` overflow, not a `power` key.
        let msg = if derived {
            format!("derived transmission power `beta * noise * range^alpha` must be positive and finite, got {power}")
        } else {
            format!("transmission power must be positive and finite, got {power}")
        };
        return Err(f.invalid(power_key, msg));
    }
    let min_dist = f.opt_f64("min_dist")?.unwrap_or(dflt.min_dist);
    if !(min_dist.is_finite() && min_dist > 0.0) {
        return Err(f.invalid(
            "min_dist",
            format!("near-field clamp must be positive, got {min_dist}"),
        ));
    }
    let resolve = match f.opt_str("resolve")? {
        None | Some("exact") => {
            if f.opt_f64("cutoff_factor")?.is_some() {
                return Err(f.invalid("cutoff_factor", "only valid with resolve = \"fast\""));
            }
            ResolveMode::Exact
        }
        Some("fast") => {
            let cutoff_factor = f.opt_f64("cutoff_factor")?.unwrap_or(1.5);
            if !(cutoff_factor.is_finite() && cutoff_factor >= 1.0) {
                return Err(f.invalid(
                    "cutoff_factor",
                    format!("must be finite and at least 1, got {cutoff_factor}"),
                ));
            }
            ResolveMode::Fast { cutoff_factor }
        }
        Some(other) => {
            return Err(f.invalid(
                "resolve",
                format!("unknown resolve mode `{other}` (expected \"exact\" or \"fast\")"),
            ))
        }
    };
    f.finish()?;
    Ok(SinrParams {
        alpha,
        beta,
        noise,
        power,
        eps,
        min_dist,
        resolve,
    })
}

fn decode_deployment(mut f: Fields<'_>) -> Result<DeploymentSpec, TomlError> {
    let kind = f.str("kind")?.to_string();
    let spec = match kind.as_str() {
        "uniform" => DeploymentSpec::Uniform {
            n: f.usize("n")?,
            side: f.pos_f64("side")?,
        },
        "disk" => DeploymentSpec::Disk {
            n: f.usize("n")?,
            radius: f.pos_f64("radius")?,
        },
        "grid" => DeploymentSpec::Grid {
            nx: f.usize("nx")?,
            ny: f.usize("ny")?,
            step: f.pos_f64("step")?,
            jitter: f.nn_f64_or("jitter", 0.0)?,
        },
        "line" => DeploymentSpec::Line {
            n: f.usize("n")?,
            spacing: f.pos_f64("spacing")?,
        },
        "corridor" => DeploymentSpec::Corridor {
            n: f.usize("n")?,
            length: f.pos_f64("length")?,
            width: f.pos_f64("width")?,
        },
        "explicit" => {
            let path = f.key_path("points");
            let mut points = Vec::new();
            for (i, v) in f.opt_array("points")?.iter().enumerate() {
                let (x, y) = v.as_f64_pair(&format!("{path}[{i}]"))?;
                points.push(Point::new(x, y));
            }
            DeploymentSpec::Explicit(points)
        }
        other => {
            return Err(f.invalid(
                "kind",
                format!(
                    "unknown deployment kind `{other}` (expected uniform, disk, grid, line, \
                     corridor, or explicit)"
                ),
            ))
        }
    };
    f.finish()?;
    Ok(spec)
}

fn decode_area(mut f: Fields<'_>) -> Result<BoundingBox, TomlError> {
    let min_path = f.key_path("min");
    let (min_x, min_y) = f.require("min")?.as_f64_pair(&min_path)?;
    let max_path = f.key_path("max");
    let (max_x, max_y) = f.require("max")?.as_f64_pair(&max_path)?;
    f.finish()?;
    Ok(BoundingBox::new(
        Point::new(min_x, min_y),
        Point::new(max_x, max_y),
    ))
}

fn decode_mobility(mut f: Fields<'_>) -> Result<MobilitySpec, TomlError> {
    let kind = f.str("kind")?.to_string();
    let spec = match kind.as_str() {
        "static" => MobilitySpec::Static,
        "random-waypoint" => {
            let speed_min = f.nn_f64("speed_min")?;
            let speed_max = f.f64("speed_max")?;
            if speed_max < speed_min {
                return Err(f.invalid(
                    "speed_max",
                    format!("must be at least speed_min ({speed_min}), got {speed_max}"),
                ));
            }
            MobilitySpec::RandomWaypoint {
                speed_min,
                speed_max,
                pause: f.opt_u64("pause")?.unwrap_or(0),
            }
        }
        "convoy" => {
            let groups = f.usize("groups")?;
            if groups == 0 {
                return Err(f.invalid("groups", "must be at least 1"));
            }
            MobilitySpec::Convoy {
                groups,
                speed: f.nn_f64("speed")?,
                spread: f.nn_f64("spread")?,
                pause: f.opt_u64("pause")?.unwrap_or(0),
            }
        }
        other => {
            return Err(f.invalid(
                "kind",
                format!(
                    "unknown mobility kind `{other}` (expected static, random-waypoint, or convoy)"
                ),
            ))
        }
    };
    f.finish()?;
    Ok(spec)
}

fn decode_fading(mut f: Fields<'_>) -> Result<FadingSpec, TomlError> {
    let p_degrade = f.prob("p_degrade")?;
    let p_recover = f.prob("p_recover")?;
    let power = f.nn_f64("power")?;
    let drop = f.opt_bool("drop")?.unwrap_or(false);
    f.finish()?;
    Ok(FadingSpec {
        p_degrade,
        p_recover,
        bad: ChannelCondition {
            extra_interference: power,
            drop,
        },
    })
}

fn decode_adversary(mut f: Fields<'_>, channels: u16) -> Result<AdversarySpec, TomlError> {
    let kind = f.str("kind")?.to_string();
    let spec = match kind.as_str() {
        "tracking-jammer" => {
            let epoch = f.u64("epoch")?;
            if epoch == 0 {
                return Err(f.invalid("epoch", "re-target epoch must be at least 1 slot"));
            }
            let radius = f.pos_f64("radius")?;
            let speed = f.nn_f64("speed")?;
            let channel = f.opt_u16("channel")?;
            if let Some(c) = channel {
                if c >= channels {
                    return Err(f.invalid(
                        "channel",
                        format!("channel {c} is out of range for {channels} channels"),
                    ));
                }
            }
            AdversarySpec::TrackingJammer {
                epoch,
                radius,
                speed,
                channel,
            }
        }
        "correlated-fading" => AdversarySpec::CorrelatedFading {
            p_degrade: f.prob("p_degrade")?,
            p_recover: f.prob("p_recover")?,
            correlation: f.prob("correlation")?,
            bad: ChannelCondition {
                extra_interference: f.nn_f64("power")?,
                drop: f.opt_bool("drop")?.unwrap_or(false),
            },
        },
        other => {
            return Err(f.invalid(
                "kind",
                format!(
                    "unknown adversary kind `{other}` (expected tracking-jammer or \
                     correlated-fading)"
                ),
            ))
        }
    };
    f.finish()?;
    Ok(spec)
}

fn decode_duty_cycle(mut f: Fields<'_>) -> Result<DutyCycleSpec, TomlError> {
    let period = f.u64("period")?;
    if period == 0 {
        return Err(f.invalid("period", "cycle length must be at least 1 slot"));
    }
    let on = f.u64("on")?;
    if on > period {
        return Err(f.invalid(
            "on",
            format!("awake slots {on} exceed the cycle length {period}"),
        ));
    }
    let stride = f.opt_u64("stride")?.unwrap_or(1);
    let nodes = f.opt_u64("nodes")?.map(|v| v as usize);
    f.finish()?;
    Ok(DutyCycleSpec {
        period,
        on,
        stride,
        nodes,
    })
}

fn decode_churn(mut f: Fields<'_>, n: usize) -> Result<ChurnSpec, TomlError> {
    let kind = f.str("kind")?.to_string();
    let spec = match kind.as_str() {
        "none" => ChurnSpec::None,
        "random" => {
            let join_fraction = f.prob_or("join_fraction", 0.0)?;
            let join_window = decode_window(&mut f, "join_window")?;
            let crash_fraction = f.prob_or("crash_fraction", 0.0)?;
            let crash_window = decode_window(&mut f, "crash_window")?;
            ChurnSpec::Random {
                join_fraction,
                join_window,
                crash_fraction,
                crash_window,
            }
        }
        "explicit" => ChurnSpec::Explicit {
            joins: decode_events(&mut f, "joins", n)?,
            crashes: decode_events(&mut f, "crashes", n)?,
        },
        other => {
            return Err(f.invalid(
                "kind",
                format!("unknown churn kind `{other}` (expected none, random, or explicit)"),
            ))
        }
    };
    f.finish()?;
    Ok(spec)
}

/// Decodes an optional `[from, to)` slot window (default `[0, 0)`).
fn decode_window(f: &mut Fields<'_>, key: &str) -> Result<(u64, u64), TomlError> {
    let path = f.key_path(key);
    let Some(v) = f.take(key) else {
        return Ok((0, 0));
    };
    let items = v.as_array(&path)?;
    if items.len() != 2 {
        return Err(TomlError::field(
            v.line,
            path,
            format!("expected `[from, to]`, found {} elements", items.len()),
        ));
    }
    let from = items[0].as_u64(&path)?;
    let to = items[1].as_u64(&path)?;
    if to < from {
        return Err(TomlError::field(
            v.line,
            path,
            format!("window end {to} precedes start {from}"),
        ));
    }
    Ok((from, to))
}

/// Decodes an optional array of `[node, slot]` pairs, checking each node
/// id against the deployment size `n`.
fn decode_events(f: &mut Fields<'_>, key: &str, n: usize) -> Result<Vec<(u32, u64)>, TomlError> {
    let path = f.key_path(key);
    let mut events = Vec::new();
    for (i, v) in f.opt_array(key)?.iter().enumerate() {
        let path = format!("{path}[{i}]");
        let items = v.as_array(&path)?;
        if items.len() != 2 {
            return Err(TomlError::field(
                v.line,
                path,
                format!("expected `[node, slot]`, found {} elements", items.len()),
            ));
        }
        let node = items[0].as_u32(&path)?;
        if node as usize >= n {
            return Err(TomlError::field(
                v.line,
                path,
                format!("node {node} is out of range for a {n}-node deployment"),
            ));
        }
        events.push((node, items[1].as_u64(&path)?));
    }
    Ok(events)
}

fn decode_faults(mut f: Fields<'_>, n: usize, channels: u16) -> Result<FaultPlan, TomlError> {
    let mut plan = FaultPlan::none();
    for (node, slot) in decode_events(&mut f, "crashes", n)? {
        plan.crash_at(node, slot);
    }
    for (node, slot) in decode_events(&mut f, "joins", n)? {
        plan.join_at(node, slot);
    }
    let jam_path = f.key_path("jam");
    for (i, v) in f.opt_array("jam")?.iter().enumerate() {
        plan.jam(decode_jam(v, &format!("{jam_path}[{i}]"), channels)?);
    }
    f.finish()?;
    Ok(plan)
}

fn decode_jam(v: &Value, path: &str, channels: u16) -> Result<JamSpec, TomlError> {
    let mut f = Fields::new(v, path)?;
    let kind = f.str("kind")?.to_string();
    let spec = match kind.as_str() {
        "fixed" => {
            let channel = f.u16("channel")?;
            if channel >= channels {
                return Err(f.invalid(
                    "channel",
                    format!("channel {channel} is out of range for {channels} channels"),
                ));
            }
            JamSpec::Fixed {
                channel,
                from: f.opt_u64("from")?.unwrap_or(0),
                to: f.opt_u64("to")?.unwrap_or(u64::MAX),
                power: f.nn_f64("power")?,
            }
        }
        "random" => {
            let t = f.u16("t")?;
            let total = f.u16("total")?;
            if total > channels {
                return Err(f.invalid(
                    "total",
                    format!(
                        "random jam draws from {total} channels but the scenario has only \
                         {channels}"
                    ),
                ));
            }
            if t > total {
                return Err(f.invalid("t", format!("cannot jam {t} of {total} channels each slot")));
            }
            JamSpec::Random {
                t,
                total,
                power: f.nn_f64("power")?,
                seed: f.opt_u64("seed")?.unwrap_or(0),
            }
        }
        other => {
            return Err(f.invalid(
                "kind",
                format!("unknown jam kind `{other}` (expected fixed or random)"),
            ))
        }
    };
    f.finish()?;
    Ok(spec)
}

/// Range-validating accessors layered over [`Fields`].
trait FieldsExt {
    /// Required float that must be positive and finite.
    fn pos_f64(&mut self, key: &str) -> Result<f64, TomlError>;
    /// Required float that must be non-negative and finite.
    fn nn_f64(&mut self, key: &str) -> Result<f64, TomlError>;
    /// Optional non-negative finite float with a default.
    fn nn_f64_or(&mut self, key: &str, default: f64) -> Result<f64, TomlError>;
    /// Required probability in `[0, 1]`.
    fn prob(&mut self, key: &str) -> Result<f64, TomlError>;
    /// Optional probability in `[0, 1]` with a default.
    fn prob_or(&mut self, key: &str, default: f64) -> Result<f64, TomlError>;
}

impl FieldsExt for Fields<'_> {
    fn pos_f64(&mut self, key: &str) -> Result<f64, TomlError> {
        let v = self.f64(key)?;
        if v > 0.0 && v.is_finite() {
            Ok(v)
        } else {
            Err(self.invalid(key, format!("must be positive and finite, got {v}")))
        }
    }

    fn nn_f64(&mut self, key: &str) -> Result<f64, TomlError> {
        let v = self.f64(key)?;
        if v >= 0.0 && v.is_finite() {
            Ok(v)
        } else {
            Err(self.invalid(key, format!("must be non-negative and finite, got {v}")))
        }
    }

    fn nn_f64_or(&mut self, key: &str, default: f64) -> Result<f64, TomlError> {
        let v = self.opt_f64(key)?.unwrap_or(default);
        if v >= 0.0 && v.is_finite() {
            Ok(v)
        } else {
            Err(self.invalid(key, format!("must be non-negative and finite, got {v}")))
        }
    }

    fn prob(&mut self, key: &str) -> Result<f64, TomlError> {
        let v = self.f64(key)?;
        if (0.0..=1.0).contains(&v) {
            Ok(v)
        } else {
            Err(self.invalid(key, format!("must lie in [0, 1], got {v}")))
        }
    }

    fn prob_or(&mut self, key: &str, default: f64) -> Result<f64, TomlError> {
        let v = self.opt_f64(key)?.unwrap_or(default);
        if (0.0..=1.0).contains(&v) {
            Ok(v)
        } else {
            Err(self.invalid(key, format!("must lie in [0, 1], got {v}")))
        }
    }
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

/// An error loading or saving a scenario file: I/O, or parse/decode with
/// the source line and field.
#[derive(Debug)]
pub enum ScenarioFileError {
    /// Reading or writing the file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// The file is not a valid scenario.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// The underlying parse/decode error (line- and field-qualified).
        error: TomlError,
    },
}

impl fmt::Display for ScenarioFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioFileError::Io { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            ScenarioFileError::Parse { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for ScenarioFileError {}

impl Scenario {
    /// Serializes this scenario as TOML text (canonical layout).
    pub fn to_toml(&self) -> String {
        emit(&ToToml::to_toml_table(self))
    }

    /// Parses a scenario from TOML text.
    pub fn from_toml_str(src: &str) -> Result<Scenario, TomlError> {
        <Scenario as FromToml>::from_toml_str(src)
    }

    /// Loads a scenario from a `.toml` file.
    pub fn load(path: impl AsRef<Path>) -> Result<Scenario, ScenarioFileError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|error| ScenarioFileError::Io {
            path: path.to_path_buf(),
            error,
        })?;
        Scenario::from_toml_str(&text).map_err(|error| ScenarioFileError::Parse {
            path: path.to_path_buf(),
            error,
        })
    }

    /// Writes this scenario to a `.toml` file (canonical layout).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ScenarioFileError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_toml()).map_err(|error| ScenarioFileError::Io {
            path: path.to_path_buf(),
            error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scenario;

    fn full_scenario() -> Scenario {
        let mut faults = FaultPlan::none();
        faults.crash_at(3, 150);
        faults.join_at(9, 40);
        faults.jam(JamSpec::Fixed {
            channel: 0,
            from: 10,
            to: 500,
            power: 75.0,
        });
        faults.jam(JamSpec::Random {
            t: 1,
            total: 4,
            power: 120.0,
            seed: 0xDEADBEEF,
        });
        Scenario::builder("kitchen-sink")
            .sinr(SinrParams::with_range(3.0, 1.5, 1.0, 8.0, 0.5).with_resolve(ResolveMode::fast()))
            .deployment(DeploymentSpec::Grid {
                nx: 6,
                ny: 5,
                step: 2.0,
                jitter: 0.25,
            })
            .area(BoundingBox::new(
                Point::new(-1.0, -2.0),
                Point::new(12.0, 11.0),
            ))
            .mobility(MobilitySpec::Convoy {
                groups: 3,
                speed: 0.2,
                spread: 1.5,
                pause: 7,
            })
            .fading(FadingSpec::dropping(0.05, 0.2, 400.0))
            .churn(ChurnSpec::Random {
                join_fraction: 0.2,
                join_window: (1, 50),
                crash_fraction: 0.1,
                crash_window: (100, 200),
            })
            .faults(faults)
            .channels(4)
            .max_slots(2_000)
            .par_channels(true)
            .shards(3)
            .par_shards(true)
            .maintenance(crate::spec::MaintenanceSpec {
                every: 150,
                handover_hysteresis: 1.4,
                rebuild_threshold: 0.3,
            })
            .obs(crate::spec::ObsSpec {
                enabled: true,
                channel_stream: false,
            })
            .build()
    }

    #[test]
    fn full_scenario_round_trips_exactly() {
        let s = full_scenario();
        let text = s.to_toml();
        let back = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(back, s, "\n--- emitted TOML ---\n{text}");
    }

    #[test]
    fn emitted_text_is_stable_under_reemission() {
        let s = full_scenario();
        let text = s.to_toml();
        let text2 = Scenario::from_toml_str(&text).unwrap().to_toml();
        assert_eq!(text, text2);
    }

    #[test]
    fn minimal_scenario_uses_defaults() {
        let s = Scenario::from_toml_str(
            "name = \"tiny\"\n[deployment]\nkind = \"line\"\nn = 4\nspacing = 2.0\n",
        )
        .unwrap();
        assert_eq!(s.name, "tiny");
        assert_eq!(s.channels, 8);
        assert_eq!(s.max_slots, 10_000);
        assert!(!s.par_channels);
        assert_eq!(s.params, SinrParams::default());
        assert_eq!(s.mobility, MobilitySpec::Static);
        assert!(s.fading.is_none());
        assert_eq!(s.churn, ChurnSpec::None);
        assert!(s.faults.is_trivial());
    }

    #[test]
    fn engine_table_defaults_round_trip_and_validation() {
        let base = "name = \"e\"\n[deployment]\nkind = \"line\"\nn = 4\nspacing = 2.0\n";
        // Absent table: sharding off, and the emitter omits the table.
        let s = Scenario::from_toml_str(base).unwrap();
        assert_eq!(s.shards, 0);
        assert!(!s.par_shards);
        assert!(!s.to_toml().contains("[engine]"));
        // Present table round-trips.
        let s = Scenario::from_toml_str(&format!("{base}[engine]\nshards = 4\n")).unwrap();
        assert_eq!(s.shards, 4);
        assert!(!s.par_shards);
        let back = Scenario::from_toml_str(&s.to_toml()).unwrap();
        assert_eq!(back, s);
        // Out-of-range shard counts are rejected with the field path.
        let e = Scenario::from_toml_str(&format!("{base}[engine]\nshards = 1000\n")).unwrap_err();
        assert_eq!(e.path, "engine.shards");
        assert!(e.message.contains("at most"), "{e}");
        // Unknown keys are rejected.
        let e = Scenario::from_toml_str(&format!("{base}[engine]\nthreads = 4\n")).unwrap_err();
        assert_eq!(e.path, "engine.threads");
    }

    #[test]
    fn sinr_range_back_solves_power() {
        let s = Scenario::from_toml_str(
            "name = \"r\"\n[sinr]\nrange = 10.0\n[deployment]\nkind = \"uniform\"\nn = 10\nside = 5.0\n",
        )
        .unwrap();
        assert!((s.params.transmission_range() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn power_and_range_are_exclusive() {
        let e = Scenario::from_toml_str(
            "name = \"r\"\n[sinr]\npower = 768.0\nrange = 8.0\n[deployment]\nkind = \"uniform\"\nn = 1\nside = 1.0\n",
        )
        .unwrap_err();
        assert_eq!(e.path, "sinr.range");
        assert!(e.message.contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn unknown_field_rejected_with_line_and_path() {
        let src = "name = \"x\"\n[sinr]\nalpha = 3.0\nalphaa = 4.0\n[deployment]\nkind = \"uniform\"\nn = 1\nside = 1.0\n";
        let e = Scenario::from_toml_str(src).unwrap_err();
        assert_eq!(e.path, "sinr.alphaa");
        assert_eq!(e.line, 4);
        assert!(e.message.contains("unknown field"), "{e}");
    }

    #[test]
    fn missing_deployment_rejected() {
        let e = Scenario::from_toml_str("name = \"x\"\n").unwrap_err();
        assert_eq!(e.path, "deployment");
        assert!(e.message.contains("missing required table"), "{e}");
    }

    #[test]
    fn physics_validation_is_field_qualified() {
        let e = Scenario::from_toml_str(
            "name = \"x\"\n[sinr]\nalpha = 1.5\n[deployment]\nkind = \"uniform\"\nn = 1\nside = 1.0\n",
        )
        .unwrap_err();
        assert_eq!(e.path, "sinr.alpha");
        assert_eq!(e.line, 3);
        assert!(e.message.contains("exceed 2"), "{e}");
    }

    #[test]
    fn bad_resolve_mode_rejected() {
        let e = Scenario::from_toml_str(
            "name = \"x\"\n[sinr]\nresolve = \"warp\"\n[deployment]\nkind = \"uniform\"\nn = 1\nside = 1.0\n",
        )
        .unwrap_err();
        assert_eq!(e.path, "sinr.resolve");
        assert!(e.message.contains("warp"), "{e}");
    }

    #[test]
    fn cutoff_factor_requires_fast() {
        let e = Scenario::from_toml_str(
            "name = \"x\"\n[sinr]\ncutoff_factor = 2.0\n[deployment]\nkind = \"uniform\"\nn = 1\nside = 1.0\n",
        )
        .unwrap_err();
        assert_eq!(e.path, "sinr.cutoff_factor");
        assert!(e.message.contains("fast"), "{e}");
    }

    #[test]
    fn explicit_deployment_points_round_trip() {
        let s = Scenario::builder("pts")
            .deployment(DeploymentSpec::Explicit(vec![
                Point::new(0.5, -1.25),
                Point::new(3.0, 4.0),
            ]))
            .build();
        let back = Scenario::from_toml_str(&s.to_toml()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_point_names_element_index() {
        let e = Scenario::from_toml_str(
            "name = \"x\"\n[deployment]\nkind = \"explicit\"\npoints = [[1.0, 2.0], [3.0]]\n",
        )
        .unwrap_err();
        assert!(e.path.contains("points[1]"), "{e}");
        assert_eq!(e.line, 4);
    }

    #[test]
    fn churn_window_order_checked() {
        let e = Scenario::from_toml_str(
            "name = \"x\"\n[deployment]\nkind = \"uniform\"\nn = 1\nside = 1.0\n\
             [churn]\nkind = \"random\"\njoin_fraction = 0.5\njoin_window = [50, 10]\n",
        )
        .unwrap_err();
        assert_eq!(e.path, "churn.join_window");
        assert_eq!(e.line, 9);
        assert!(e.message.contains("precedes"), "{e}");
    }

    #[test]
    fn jam_kind_errors_carry_index() {
        let e = Scenario::from_toml_str(
            "name = \"x\"\n[deployment]\nkind = \"uniform\"\nn = 1\nside = 1.0\n\
             [[faults.jam]]\nkind = \"sonic\"\n",
        )
        .unwrap_err();
        assert_eq!(e.path, "faults.jam[0].kind");
        assert_eq!(e.line, 7);
    }

    #[test]
    fn maintenance_defaults_and_validation() {
        let base = "name = \"m\"\n[deployment]\nkind = \"line\"\nn = 4\nspacing = 2.0\n";
        let s = Scenario::from_toml_str(&format!("{base}[maintenance]\nevery = 50\n")).unwrap();
        let m = s.maintenance.unwrap();
        assert_eq!(m.every, 50);
        assert_eq!(m.handover_hysteresis, 1.25);
        assert_eq!(m.rebuild_threshold, 0.5);
        // A scenario without the table has no policy.
        assert!(Scenario::from_toml_str(base).unwrap().maintenance.is_none());

        let e = Scenario::from_toml_str(&format!("{base}[maintenance]\nevery = 0\n")).unwrap_err();
        assert_eq!(e.path, "maintenance.every");
        assert!(e.message.contains("at least 1"), "{e}");
        let e = Scenario::from_toml_str(&format!(
            "{base}[maintenance]\nevery = 10\nhandover_hysteresis = 0.5\n"
        ))
        .unwrap_err();
        assert_eq!(e.path, "maintenance.handover_hysteresis");
        let e = Scenario::from_toml_str(&format!(
            "{base}[maintenance]\nevery = 10\nrebuild_threshold = 1.5\n"
        ))
        .unwrap_err();
        assert_eq!(e.path, "maintenance.rebuild_threshold");
    }

    #[test]
    fn obs_table_defaults_round_trip_and_validation() {
        let base = "name = \"o\"\n[deployment]\nkind = \"line\"\nn = 4\nspacing = 2.0\n";
        // Absent table: no request, and the emitter omits the table.
        let s = Scenario::from_toml_str(base).unwrap();
        assert!(s.obs.is_none());
        assert!(!s.to_toml().contains("[obs]"));
        // Empty table takes the defaults and round-trips.
        let s = Scenario::from_toml_str(&format!("{base}[obs]\n")).unwrap();
        let o = s.obs.unwrap();
        assert!(o.enabled);
        assert!(o.channel_stream);
        let back = Scenario::from_toml_str(&s.to_toml()).unwrap();
        assert_eq!(back, s);
        // Explicit values round-trip.
        let s = Scenario::from_toml_str(&format!(
            "{base}[obs]\nenabled = false\nchannel_stream = false\n"
        ))
        .unwrap();
        let o = s.obs.unwrap();
        assert!(!o.enabled);
        assert!(!o.channel_stream);
        assert_eq!(Scenario::from_toml_str(&s.to_toml()).unwrap(), s);
        // Unknown keys are rejected with the field path.
        let e = Scenario::from_toml_str(&format!("{base}[obs]\nverbose = true\n")).unwrap_err();
        assert_eq!(e.path, "obs.verbose");
    }

    #[test]
    fn adversary_tables_round_trip() {
        let jam = Scenario::builder("tj")
            .deployment(DeploymentSpec::Uniform { n: 20, side: 8.0 })
            .channels(4)
            .adversary(AdversarySpec::TrackingJammer {
                epoch: 40,
                radius: 2.5,
                speed: 0.15,
                channel: Some(2),
            })
            .build();
        let text = jam.to_toml();
        assert!(text.contains("[adversary]"), "{text}");
        assert_eq!(Scenario::from_toml_str(&text).unwrap(), jam);
        // Channel-less jammer omits the key and still round-trips.
        let all = Scenario::builder("tj2")
            .deployment(DeploymentSpec::Uniform { n: 20, side: 8.0 })
            .adversary(AdversarySpec::TrackingJammer {
                epoch: 25,
                radius: 2.0,
                speed: 0.1,
                channel: None,
            })
            .build();
        let text = all.to_toml();
        assert!(!text.contains("channel = "), "{text}");
        assert_eq!(Scenario::from_toml_str(&text).unwrap(), all);
        let fading = Scenario::builder("cf")
            .deployment(DeploymentSpec::Uniform { n: 20, side: 8.0 })
            .adversary(AdversarySpec::CorrelatedFading {
                p_degrade: 0.02,
                p_recover: 0.25,
                correlation: 0.6,
                bad: ChannelCondition::dropped(90.0),
            })
            .build();
        assert_eq!(Scenario::from_toml_str(&fading.to_toml()).unwrap(), fading);
    }

    #[test]
    fn adversary_validation_is_field_qualified() {
        let base = "name = \"a\"\n[deployment]\nkind = \"uniform\"\nn = 4\nside = 4.0\n";
        let e = Scenario::from_toml_str(&format!(
            "{base}[adversary]\nkind = \"tracking-jammer\"\nepoch = 0\nradius = 2.0\nspeed = 0.1\n"
        ))
        .unwrap_err();
        assert_eq!(e.path, "adversary.epoch");
        let e = Scenario::from_toml_str(
            "name = \"a\"\nchannels = 4\n[deployment]\nkind = \"uniform\"\nn = 4\nside = 4.0\n\
             [adversary]\nkind = \"tracking-jammer\"\nepoch = 10\n\
             radius = 2.0\nspeed = 0.1\nchannel = 9\n",
        )
        .unwrap_err();
        assert_eq!(e.path, "adversary.channel");
        assert!(e.message.contains("out of range"), "{e}");
        let e = Scenario::from_toml_str(&format!(
            "{base}[adversary]\nkind = \"correlated-fading\"\np_degrade = 0.1\np_recover = 0.2\n\
             correlation = 1.5\npower = 10.0\n"
        ))
        .unwrap_err();
        assert_eq!(e.path, "adversary.correlation");
        let e =
            Scenario::from_toml_str(&format!("{base}[adversary]\nkind = \"emp\"\n")).unwrap_err();
        assert_eq!(e.path, "adversary.kind");
        assert!(e.message.contains("emp"), "{e}");
    }

    #[test]
    fn duty_cycle_table_round_trips_and_validates() {
        let base = "name = \"d\"\n[deployment]\nkind = \"line\"\nn = 6\nspacing = 2.0\n";
        let s =
            Scenario::from_toml_str(&format!("{base}[duty_cycle]\nperiod = 8\non = 6\n")).unwrap();
        let d = s.duty_cycle.unwrap();
        assert_eq!((d.period, d.on, d.stride, d.nodes), (8, 6, 1, None));
        assert_eq!(Scenario::from_toml_str(&s.to_toml()).unwrap(), s);
        let s = Scenario::from_toml_str(&format!(
            "{base}[duty_cycle]\nperiod = 10\non = 7\nstride = 3\nnodes = 4\n"
        ))
        .unwrap();
        assert_eq!(s.duty_cycle.unwrap().nodes, Some(4));
        assert_eq!(Scenario::from_toml_str(&s.to_toml()).unwrap(), s);

        let e = Scenario::from_toml_str(&format!("{base}[duty_cycle]\nperiod = 0\non = 0\n"))
            .unwrap_err();
        assert_eq!(e.path, "duty_cycle.period");
        let e = Scenario::from_toml_str(&format!("{base}[duty_cycle]\nperiod = 4\non = 9\n"))
            .unwrap_err();
        assert_eq!(e.path, "duty_cycle.on");
        assert!(e.message.contains("exceed"), "{e}");
    }

    #[test]
    fn random_jam_validated_against_channel_count() {
        // `total` beyond the scenario's channel count is rejected with the
        // indexed field path, not deferred to a runtime panic.
        let e = Scenario::from_toml_str(
            "name = \"x\"\nchannels = 4\n[deployment]\nkind = \"uniform\"\nn = 1\nside = 1.0\n\
             [[faults.jam]]\nkind = \"random\"\nt = 1\ntotal = 9\npower = 10.0\n",
        )
        .unwrap_err();
        assert_eq!(e.path, "faults.jam[0].total");
        assert!(e.message.contains("only 4"), "{e}");
        // So is an adversary strength exceeding the channels it draws from.
        let e = Scenario::from_toml_str(
            "name = \"x\"\nchannels = 4\n[deployment]\nkind = \"uniform\"\nn = 1\nside = 1.0\n\
             [[faults.jam]]\nkind = \"random\"\nt = 3\ntotal = 2\npower = 10.0\n",
        )
        .unwrap_err();
        assert_eq!(e.path, "faults.jam[0].t");
        assert!(e.message.contains("cannot jam 3 of 2"), "{e}");
        // The boundary case total == channels stays valid.
        let s = Scenario::from_toml_str(
            "name = \"x\"\nchannels = 4\n[deployment]\nkind = \"uniform\"\nn = 1\nside = 1.0\n\
             [[faults.jam]]\nkind = \"random\"\nt = 2\ntotal = 4\npower = 10.0\n",
        )
        .unwrap();
        assert_eq!(s.faults.jams().len(), 1);
    }

    #[test]
    fn u64_seed_round_trips_at_extremes() {
        let mut faults = FaultPlan::none();
        faults.jam(JamSpec::Random {
            t: 1,
            total: 2,
            power: 1.0,
            seed: u64::MAX,
        });
        let s = Scenario::builder("big-seed").faults(faults).build();
        let back = Scenario::from_toml_str(&s.to_toml()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("mca_toml_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kitchen_sink.toml");
        let s = full_scenario();
        s.save(&path).unwrap();
        let back = Scenario::load(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_error_names_the_file() {
        let e = Scenario::load("/nonexistent/dir/x.toml").unwrap_err();
        assert!(e.to_string().contains("x.toml"), "{e}");
    }
}
