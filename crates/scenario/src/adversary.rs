//! Adversarial environment processes.
//!
//! Two active adversaries beyond the benign mobility/fading/churn models:
//!
//! * [`TrackingJammer`] — a mobile spatial jammer that re-targets the
//!   densest live cluster every epoch and glides toward it, maintaining a
//!   [`ZoneJam`] over the engine's fault plan. Targeting is a pure
//!   function of the engine's own position and liveness state — no
//!   randomness — so the adversary replays bit-for-bit and "worst-case"
//!   means worst case, not unlucky.
//! * [`CorrelatedFading`] — Gilbert–Elliot fading whose bad state bleeds
//!   into adjacent channels with a configurable correlation, modeling
//!   wideband interferers that defeat naive channel diversity: when one
//!   channel turns bad, its spectral neighbors tend to follow.
//!
//! The third adversary of the robustness suite — duty-cycled sleep
//! schedules — is not an environment process at all: it compiles into
//! per-node [`SleepSchedule`](mca_radio::SleepSchedule)s on the fault plan
//! (see [`DutyCycleSpec`](crate::DutyCycleSpec)), distinct from crash-stop
//! churn in that sleepers return with their state and never appear in the
//! lifecycle event stream.

use crate::environment::{EnvironmentModel, World};
use mca_geom::Point;
use mca_radio::{ChannelCondition, ZoneJam};
use rand::Rng;

/// A mobile jammer that chases the densest live cluster.
///
/// Every `epoch` slots it scans the world: each live node scores the
/// number of live nodes within the blast `radius` of its position, and the
/// highest-scoring position (ties to the smallest node id) becomes the new
/// target. The jammer then glides toward the target at `speed` per slot,
/// dragging a [`ZoneJam`] of the same radius with it, so receptions decode
/// only outside the moving blast zone.
pub struct TrackingJammer {
    epoch: u64,
    radius: f64,
    speed: f64,
    channel: Option<u16>,
    pos: Option<Point>,
    target: Point,
    jam: Option<usize>,
}

impl TrackingJammer {
    /// A jammer re-targeting every `epoch` slots, jamming `radius` around
    /// itself on `channel` (`None` = every channel), moving `speed`
    /// distance units per slot.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is 0 or `radius`/`speed` are not finite and
    /// non-negative.
    pub fn new(epoch: u64, radius: f64, speed: f64, channel: Option<u16>) -> Self {
        assert!(epoch > 0, "retarget epoch must be positive");
        assert!(radius.is_finite() && radius >= 0.0, "radius must be ≥ 0");
        assert!(speed.is_finite() && speed >= 0.0, "speed must be ≥ 0");
        TrackingJammer {
            epoch,
            radius,
            speed,
            channel,
            pos: None,
            target: Point::ORIGIN,
            jam: None,
        }
    }

    /// The jammer's current position (none before the first slot).
    pub fn position(&self) -> Option<Point> {
        self.pos
    }

    /// The cluster center currently being chased.
    pub fn target(&self) -> Point {
        self.target
    }

    /// The densest live position: maximizes live neighbors within the
    /// blast radius, ties to the smallest node id.
    fn densest(&self, slot: u64, world: &World<'_>) -> Option<Point> {
        let r2 = self.radius * self.radius;
        let mut best: Option<(usize, Point)> = None;
        for (i, &p) in world.positions.iter().enumerate() {
            if world.faults.is_absent(i as u32, slot) {
                continue;
            }
            let mut score = 0usize;
            for (j, &q) in world.positions.iter().enumerate() {
                if !world.faults.is_absent(j as u32, slot) && p.dist_sq(q) <= r2 {
                    score += 1;
                }
            }
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, p));
            }
        }
        best.map(|(_, p)| p)
    }
}

impl EnvironmentModel for TrackingJammer {
    fn step(&mut self, slot: u64, world: &mut World<'_>) {
        if slot.is_multiple_of(self.epoch) {
            if let Some(t) = self.densest(slot, world) {
                self.target = t;
            }
        }
        let mut pos = self.pos.unwrap_or(self.target);
        let d = pos.dist(self.target);
        if d > 0.0 {
            let step = self.speed.min(d);
            pos = Point::new(
                pos.x + (self.target.x - pos.x) / d * step,
                pos.y + (self.target.y - pos.y) / d * step,
            );
        }
        self.pos = Some(pos);
        match self.jam {
            Some(idx) => world.faults.zone_jams_mut()[idx].center = pos,
            None => {
                self.jam = Some(world.faults.zone_jam(ZoneJam {
                    center: pos,
                    radius: self.radius,
                    channel: self.channel,
                    from: 0,
                    to: u64::MAX,
                }));
            }
        }
    }
}

/// Gilbert–Elliot fading with cross-channel correlation.
///
/// Each channel runs the usual two-state chain (good→bad with
/// `p_degrade`, bad→good with `p_recover`), but whenever a channel flips
/// to bad, each spectrally adjacent channel is infected with probability
/// `correlation` in the same slot (ascending channel order, lower neighbor
/// before upper, so the draw sequence is fixed). Infected channels recover
/// through their own chain. `correlation = 0` reduces to independent
/// [`GilbertElliot`](crate::GilbertElliot) fading.
pub struct CorrelatedFading {
    p_degrade: f64,
    p_recover: f64,
    correlation: f64,
    bad: ChannelCondition,
    states: Vec<bool>, // true = bad
}

impl CorrelatedFading {
    /// A correlated fading process over `channels` channels, all starting
    /// *good*.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(
        channels: u16,
        p_degrade: f64,
        p_recover: f64,
        correlation: f64,
        bad: ChannelCondition,
    ) -> Self {
        assert!((0.0..=1.0).contains(&p_degrade), "p_degrade out of range");
        assert!((0.0..=1.0).contains(&p_recover), "p_recover out of range");
        assert!(
            (0.0..=1.0).contains(&correlation),
            "correlation out of range"
        );
        CorrelatedFading {
            p_degrade,
            p_recover,
            correlation,
            bad,
            states: vec![false; channels as usize],
        }
    }

    /// Which channels are currently in the bad state.
    pub fn bad_channels(&self) -> impl Iterator<Item = u16> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u16)
    }
}

impl EnvironmentModel for CorrelatedFading {
    fn step(&mut self, _slot: u64, world: &mut World<'_>) {
        let n = self.states.len();
        if world.conditions.len() < n {
            world.conditions.resize(n, ChannelCondition::CLEAR);
        }
        // Pass 1: independent chain flips.
        let mut turned_bad = vec![false; n];
        for (c, bad) in self.states.iter_mut().enumerate() {
            let flip = if *bad {
                world.rng.gen_bool(self.p_recover)
            } else {
                world.rng.gen_bool(self.p_degrade)
            };
            if flip {
                *bad = !*bad;
                turned_bad[c] = *bad;
            }
        }
        // Pass 2: fresh bad states bleed into adjacent channels.
        if self.correlation > 0.0 {
            for c in turned_bad
                .iter()
                .enumerate()
                .filter_map(|(c, &t)| t.then_some(c))
            {
                if c > 0 && !self.states[c - 1] && world.rng.gen_bool(self.correlation) {
                    self.states[c - 1] = true;
                }
                if c + 1 < n && !self.states[c + 1] && world.rng.gen_bool(self.correlation) {
                    self.states[c + 1] = true;
                }
            }
        }
        for (c, &bad) in self.states.iter().enumerate() {
            world.conditions[c] = if bad {
                self.bad
            } else {
                ChannelCondition::CLEAR
            };
        }
    }

    fn is_static(&self) -> bool {
        self.p_degrade == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_radio::FaultPlan;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn step_env(
        env: &mut dyn EnvironmentModel,
        slot: u64,
        positions: &mut [Point],
        conditions: &mut Vec<ChannelCondition>,
        faults: &mut FaultPlan,
        rng: &mut SmallRng,
    ) {
        env.step(
            slot,
            &mut World {
                positions,
                conditions,
                faults,
                rng,
            },
        );
    }

    #[test]
    fn tracking_jammer_locks_onto_the_densest_cluster() {
        // A tight trio on the right, a lone node on the left.
        let mut positions = vec![
            Point::new(-10.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.5, 0.0),
            Point::new(10.0, 0.5),
        ];
        let mut conds = Vec::new();
        let mut faults = FaultPlan::none();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut jam = TrackingJammer::new(10, 2.0, 100.0, None);
        step_env(
            &mut jam,
            0,
            &mut positions,
            &mut conds,
            &mut faults,
            &mut rng,
        );
        let pos = jam.position().unwrap();
        assert!(pos.x > 9.0, "jammer parks on the trio, got {pos:?}");
        assert_eq!(faults.zone_jams().len(), 1);
        assert!(faults.zone_drop(Point::new(10.0, 0.0), 0, 0));
        assert!(!faults.zone_drop(Point::new(-10.0, 0.0), 0, 0));
    }

    #[test]
    fn tracking_jammer_glides_and_retargets_each_epoch() {
        let mut positions = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.0)];
        let mut conds = Vec::new();
        let mut faults = FaultPlan::none();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut jam = TrackingJammer::new(5, 1.0, 0.5, None);
        step_env(
            &mut jam,
            0,
            &mut positions,
            &mut conds,
            &mut faults,
            &mut rng,
        );
        let start = jam.position().unwrap();
        // The cluster walks away; the jammer only re-aims at epoch slots
        // and covers at most `speed` per slot.
        for p in positions.iter_mut() {
            p.x += 8.0;
        }
        step_env(
            &mut jam,
            1,
            &mut positions,
            &mut conds,
            &mut faults,
            &mut rng,
        );
        assert_eq!(
            jam.target(),
            Point::new(start.x, 0.0),
            "no mid-epoch re-aim"
        );
        for slot in 2..40 {
            step_env(
                &mut jam,
                slot,
                &mut positions,
                &mut conds,
                &mut faults,
                &mut rng,
            );
        }
        let end = jam.position().unwrap();
        assert!(
            end.dist(Point::new(8.0, 0.0)) < 0.4,
            "jammer caught up: {end:?}"
        );
        // The fault plan still holds exactly one jam, tracking the glide.
        assert_eq!(faults.zone_jams().len(), 1);
        assert_eq!(faults.zone_jams()[0].center, end);
    }

    #[test]
    fn tracking_jammer_ignores_absent_nodes() {
        // The "dense" pair is crashed; the lone live node is the target.
        let mut positions = vec![
            Point::new(5.0, 5.0),
            Point::new(5.1, 5.0),
            Point::new(-3.0, 0.0),
        ];
        let mut conds = Vec::new();
        let mut faults = FaultPlan::none();
        faults.crash_at(0, 0).crash_at(1, 0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut jam = TrackingJammer::new(4, 1.0, 100.0, None);
        step_env(
            &mut jam,
            0,
            &mut positions,
            &mut conds,
            &mut faults,
            &mut rng,
        );
        assert_eq!(jam.target(), Point::new(-3.0, 0.0));
    }

    #[test]
    fn correlated_fading_spreads_to_neighbors() {
        // correlation 1: any fresh bad channel drags both neighbors down.
        let mut env = CorrelatedFading::new(8, 0.3, 0.0, 1.0, ChannelCondition::dropped(1.0));
        let mut positions: Vec<Point> = Vec::new();
        let mut conds = Vec::new();
        let mut faults = FaultPlan::none();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen_first = false;
        for slot in 0..40 {
            step_env(
                &mut env,
                slot,
                &mut positions,
                &mut conds,
                &mut faults,
                &mut rng,
            );
            let bad: Vec<u16> = env.bad_channels().collect();
            if bad.is_empty() || seen_first {
                continue;
            }
            seen_first = true;
            // With p = 1 bleeding and no recovery, every origin drags both
            // spectral neighbors down in the same slot, so the very first
            // non-empty bad set is a union of runs each at least 2 wide.
            let mut run = 1;
            for w in bad.windows(2) {
                if w[1] == w[0] + 1 {
                    run += 1;
                } else {
                    assert!(run >= 2, "isolated bad channel in {bad:?}");
                    run = 1;
                }
            }
            assert!(run >= 2, "isolated bad channel in {bad:?}");
        }
        assert!(seen_first, "degradation never fired");
        // With p_recover = 0 and 40 slots of p=0.3 degradation, the whole
        // band is bad.
        assert_eq!(env.bad_channels().count(), 8);
    }

    #[test]
    fn zero_correlation_matches_independent_fading() {
        // Statistically: with correlation 0 the per-slot draw sequence is
        // exactly one gen_bool per channel, the same as GilbertElliot —
        // verify state-by-state equality on a shared RNG stream.
        let mut corr = CorrelatedFading::new(6, 0.2, 0.3, 0.0, ChannelCondition::dropped(1.0));
        let mut plain = crate::GilbertElliot::new(6, 0.2, 0.3, ChannelCondition::dropped(1.0));
        let mut positions: Vec<Point> = Vec::new();
        let (mut c1, mut c2) = (Vec::new(), Vec::new());
        let (mut f1, mut f2) = (FaultPlan::none(), FaultPlan::none());
        let mut r1 = SmallRng::seed_from_u64(9);
        let mut r2 = SmallRng::seed_from_u64(9);
        for slot in 0..200 {
            step_env(&mut corr, slot, &mut positions, &mut c1, &mut f1, &mut r1);
            step_env(&mut plain, slot, &mut positions, &mut c2, &mut f2, &mut r2);
            assert_eq!(c1, c2, "slot {slot}");
        }
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn out_of_range_correlation_is_rejected() {
        CorrelatedFading::new(4, 0.1, 0.1, 1.5, ChannelCondition::CLEAR);
    }
}
