//! The built-in scenario catalog.
//!
//! Eleven reference worlds spanning the dynamic-environment feature matrix —
//! each one exercises a different axis (density, mobility model, channel
//! dynamics, adversaries, churn). `experiments export-scenarios` writes
//! them to the committed `scenarios/` directory, each headed by its
//! [`CatalogEntry::blurb`] as a comment block, and CI re-parses the files
//! so the catalog can never drift from the code.

use crate::spec::{
    AdversarySpec, ChurnSpec, DeploymentSpec, DutyCycleSpec, FadingSpec, MaintenanceSpec,
    MobilitySpec, Scenario,
};
use mca_radio::{FaultPlan, JamSpec};
use mca_sinr::ResolveMode;

/// One catalog entry: a scenario plus the explanation committed above it.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The world itself. Its `name` doubles as the exported file stem.
    pub scenario: Scenario,
    /// What the scenario demonstrates (written into the file header).
    pub blurb: &'static str,
}

impl CatalogEntry {
    /// The file name this entry exports to (`<name>.toml`, `-` for
    /// spaces).
    pub fn file_name(&self) -> String {
        format!("{}.toml", self.scenario.name.replace(' ', "-"))
    }

    /// The exported file contents: the blurb as a `#` comment block,
    /// then the canonical TOML.
    pub fn file_contents(&self) -> String {
        let mut out = String::new();
        for line in self.blurb.lines() {
            if line.is_empty() {
                out.push_str("#\n");
            } else {
                out.push_str("# ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out.push('\n');
        out.push_str(&self.scenario.to_toml());
        out
    }
}

/// The eleven built-in worlds, in catalog order.
pub fn builtin_scenarios() -> Vec<CatalogEntry> {
    vec![
        static_uniform(),
        dense_cluster(),
        sharded_dense(),
        waypoint_mobility(),
        convoy(),
        fading_jammer(),
        tracking_jammer(),
        duty_cycle(),
        churn(),
        churn_maintained(),
        mobile_churn(),
    ]
}

fn static_uniform() -> CatalogEntry {
    CatalogEntry {
        scenario: Scenario::builder("static-uniform")
            .deployment(DeploymentSpec::Uniform { n: 60, side: 30.0 })
            .channels(4)
            .max_slots(400)
            .build(),
        blurb: "static-uniform: the baseline world.\n\
                60 nodes placed i.i.d. uniform on a 30 x 30 plane (R_T = 8, so the\n\
                network is multi-hop but well connected), 4 channels, no mobility,\n\
                fading, faults, or churn. Every other catalog scenario is this world\n\
                with one axis changed, so comparisons isolate that axis.",
    }
}

fn dense_cluster() -> CatalogEntry {
    CatalogEntry {
        scenario: Scenario::builder("dense-cluster")
            .deployment(DeploymentSpec::Uniform { n: 300, side: 6.0 })
            .channels(8)
            .max_slots(400)
            .resolve_mode(ResolveMode::fast())
            .par_channels(true)
            .build(),
        blurb: "dense-cluster: the paper's dense regime (PAPER.md section 5-6).\n\
                300 nodes on a 6 x 6 plane -- nearly a clique at R_T = 8, the regime\n\
                where multi-channel aggregation earns its F-fold speedup (Theorem 22).\n\
                Dense per-channel groups make this the stress case for the SINR\n\
                resolver, so the scenario also turns on the grid-batched fast resolve\n\
                mode and parallel per-channel resolution (both keep results\n\
                bit-identical to the sequential exact path for decode outcomes within\n\
                the published error bound; par_channels is exactly bit-identical).",
    }
}

fn sharded_dense() -> CatalogEntry {
    CatalogEntry {
        scenario: Scenario::builder("sharded-dense")
            .deployment(DeploymentSpec::Uniform {
                n: 2000,
                side: 22.0,
            })
            .channels(8)
            .max_slots(300)
            .resolve_mode(ResolveMode::fast())
            .par_channels(true)
            .shards(4)
            .par_shards(true)
            .build(),
        blurb: "sharded-dense: the dense regime at engine scale, resolved in shards.\n\
                2000 nodes at 4 nodes per unit area -- per-channel groups of hundreds\n\
                of transmitters, the workload the sharded engine targets. The\n\
                [engine] table partitions the plane into a 4 x 4 shard grid whose\n\
                (channel x shard) units resolve independently (par_shards), with the\n\
                grid-batched fast resolver underneath. Sharding is an execution\n\
                knob, not a physics knob: trial metrics are bit-identical to the\n\
                same world with shards = 0 under any thread count -- the contract\n\
                the CI determinism job (MCA_FORCE_PAR=1) pins against the committed\n\
                golden trial metrics.",
    }
}

fn waypoint_mobility() -> CatalogEntry {
    CatalogEntry {
        scenario: Scenario::builder("waypoint-mobility")
            .deployment(DeploymentSpec::Uniform { n: 60, side: 30.0 })
            .mobility(MobilitySpec::RandomWaypoint {
                speed_min: 0.2,
                speed_max: 0.4,
                pause: 5,
            })
            .channels(4)
            .max_slots(400)
            .build(),
        blurb: "waypoint-mobility: independent random-waypoint motion.\n\
                The baseline world, but every node roams: pick a waypoint uniformly\n\
                in the area, travel at 0.2-0.4 distance units per slot, pause 5\n\
                slots, repeat. At R_T = 8 a node crosses a transmission range in\n\
                ~20-40 slots, so links churn within a protocol run -- the regime the\n\
                ROADMAP's structure-maintenance work targets.",
    }
}

fn convoy() -> CatalogEntry {
    CatalogEntry {
        scenario: Scenario::builder("convoy")
            .deployment(DeploymentSpec::Uniform { n: 60, side: 30.0 })
            .mobility(MobilitySpec::Convoy {
                groups: 4,
                speed: 0.3,
                spread: 3.0,
                pause: 10,
            })
            .channels(4)
            .max_slots(400)
            .build(),
        blurb: "convoy: reference-point group mobility.\n\
                60 nodes split into 4 convoys; each convoy's center roams like a\n\
                waypoint walker at 0.3 units/slot while members hold a formation\n\
                offset of at most 3.0 around it. Intra-convoy links are stable while\n\
                convoy-to-convoy connectivity comes and goes -- the classic MANET\n\
                group-mobility pattern (cf. the UDP/AODV measurement studies in\n\
                PAPERS.md).",
    }
}

fn fading_jammer() -> CatalogEntry {
    let mut faults = FaultPlan::none();
    faults.jam(JamSpec::Random {
        t: 1,
        total: 4,
        power: 100.0,
        seed: 0xBAD,
    });
    CatalogEntry {
        scenario: Scenario::builder("fading-jammer")
            .deployment(DeploymentSpec::Uniform { n: 60, side: 30.0 })
            .fading(FadingSpec::interference(0.05, 0.15, 500.0))
            .faults(faults)
            .channels(4)
            .max_slots(400)
            .build(),
        blurb: "fading-jammer: hostile channel dynamics.\n\
                Two channel adversities compose: (1) Gilbert-Elliot fading -- each\n\
                channel flips good->bad with probability 0.05 and bad->good with 0.15\n\
                per slot (stationary ~25% bad), a bad channel adding 500.0 of\n\
                interference power at every listener; (2) a t-disrupted jammer\n\
                (Dolev et al., DISC'11 model) hitting 1 of the 4 channels per slot\n\
                with 100.0 interference power, channel choice keyed to seed 0xBAD.\n\
                Exercises frequency-hopping robustness of the section-6 protocols.",
    }
}

fn tracking_jammer() -> CatalogEntry {
    CatalogEntry {
        scenario: Scenario::builder("tracking-jammer")
            .deployment(DeploymentSpec::Uniform { n: 120, side: 12.0 })
            .adversary(AdversarySpec::TrackingJammer {
                epoch: 25,
                radius: 3.0,
                speed: 0.2,
                channel: None,
            })
            .channels(4)
            .max_slots(400)
            .maintenance(MaintenanceSpec::every(50))
            .build(),
        blurb: "tracking-jammer: a mobile adversary that hunts the densest cluster.\n\
                120 nodes packed on a 12 x 12 plane; every 25 slots the jammer\n\
                re-targets the live node with the most neighbors within 3.0 units\n\
                (computed deterministically from the engine's own position state --\n\
                no randomness), glides toward it at 0.2 units/slot, and destroys\n\
                every reception within its 3.0 blast radius on all channels.\n\
                Victims still sense jammer energy, so per-link SINR health decays\n\
                before any structural audit would fail -- the world the\n\
                degradation detector and proactive repair arm of\n\
                `experiments adversary-bench` are measured on.",
    }
}

fn duty_cycle() -> CatalogEntry {
    CatalogEntry {
        scenario: Scenario::builder("duty-cycle")
            .deployment(DeploymentSpec::Uniform { n: 120, side: 12.0 })
            .duty_cycle(DutyCycleSpec {
                period: 40,
                on: 30,
                stride: 7,
                nodes: None,
            })
            .channels(4)
            .max_slots(400)
            .maintenance(MaintenanceSpec::every(50))
            .build(),
        blurb: "duty-cycle: periodic power-down, distinct from crash-stop.\n\
                Every node sleeps 10 of every 40 slots on a per-node phase\n\
                (phase = 7i mod 40), so at any slot ~25% of the network is dark\n\
                but nobody is dead: sleepers keep their protocol state and return\n\
                on schedule, so the lifecycle event stream stays silent and\n\
                reactive repair never fires. Links to sleeping members fade in\n\
                and out instead -- exactly the degradation signature the EWMA\n\
                detector flags and proactive repair re-homes around\n\
                (`experiments adversary-bench`, duty-cycle row).",
    }
}

fn churn() -> CatalogEntry {
    let mut faults = FaultPlan::none();
    faults.crash_at(0, 200);
    CatalogEntry {
        scenario: Scenario::builder("churn")
            .deployment(DeploymentSpec::Uniform { n: 60, side: 30.0 })
            .churn(ChurnSpec::Random {
                join_fraction: 0.25,
                join_window: (1, 100),
                crash_fraction: 0.1,
                crash_window: (150, 350),
            })
            .faults(faults)
            .channels(4)
            .max_slots(400)
            .build(),
        blurb: "churn: nodes arrive late and crash mid-run.\n\
                A quarter of the nodes power on at a uniform slot in [1, 100), 10%\n\
                crash-stop at a uniform slot in [150, 350), and node 0 (often a\n\
                dominator/sink in structure experiments) is scripted to crash at slot\n\
                200 via the explicit fault plan the random churn composes with.\n\
                Which nodes churn is drawn from the trial seed, so every trial is\n\
                reproducible.",
    }
}

fn churn_maintained() -> CatalogEntry {
    let mut faults = FaultPlan::none();
    faults.crash_at(0, 200);
    CatalogEntry {
        scenario: Scenario::builder("churn-maintained")
            .deployment(DeploymentSpec::Uniform { n: 60, side: 30.0 })
            .churn(ChurnSpec::Random {
                join_fraction: 0.25,
                join_window: (1, 100),
                crash_fraction: 0.1,
                crash_window: (150, 350),
            })
            .faults(faults)
            .channels(4)
            .max_slots(400)
            .maintenance(MaintenanceSpec::every(100))
            .build(),
        blurb: "churn-maintained: the churn world with a maintenance policy.\n\
                Same churn process as `churn` (a quarter of the nodes join late,\n\
                10% crash mid-run, node 0 scripted to crash at slot 200), plus a\n\
                [maintenance] table: structure-driving harnesses repair the section-5\n\
                overlay every 100 slots -- re-homing orphans of crashed dominators,\n\
                admitting late joiners, re-electing reporters in dirty clusters --\n\
                instead of letting it rot or rebuilding from scratch. The\n\
                `experiments repair-bench` harness measures exactly that comparison\n\
                (see BENCH_repair.json).",
    }
}

fn mobile_churn() -> CatalogEntry {
    CatalogEntry {
        scenario: Scenario::builder("mobile-churn")
            .deployment(DeploymentSpec::Uniform { n: 120, side: 12.0 })
            .mobility(MobilitySpec::RandomWaypoint {
                speed_min: 0.003,
                speed_max: 0.01,
                pause: 10,
            })
            .churn(ChurnSpec::Random {
                join_fraction: 0.15,
                join_window: (1, 150),
                crash_fraction: 0.1,
                crash_window: (150, 400),
            })
            .channels(4)
            .max_slots(400)
            .maintenance(MaintenanceSpec {
                every: 50,
                handover_hysteresis: 1.25,
                rebuild_threshold: 0.5,
            })
            .build(),
        blurb: "mobile-churn: mobility and churn composed, under maintenance.\n\
                120 nodes packed on a 12 x 12 plane (clusters actually have members\n\
                at r_c = 1), roaming at 0.003-0.01 units/slot -- a node drifts\n\
                ~0.15-0.5 units per 50-slot epoch, so boundary members hand over\n\
                every epoch but repair keeps pace with the drift (at waypoint-world\n\
                speeds the whole membership would churn between epochs and the\n\
                maintainer would rightly fall back to rebuilds) -- while 15% join\n\
                late and 10% crash. The [maintenance] table repairs every 50 slots\n\
                with a 1.25x handover hysteresis: the headline world for\n\
                incremental structure repair vs full rebuild\n\
                (`experiments repair-bench`).",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eleven_distinct_named_entries() {
        let entries = builtin_scenarios();
        assert_eq!(entries.len(), 11);
        let mut names: Vec<&str> = entries.iter().map(|e| e.scenario.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "names must be unique");
    }

    #[test]
    fn every_entry_round_trips() {
        for entry in builtin_scenarios() {
            let text = entry.scenario.to_toml();
            let back = Scenario::from_toml_str(&text).unwrap();
            assert_eq!(back, entry.scenario, "{}", entry.scenario.name);
        }
    }

    #[test]
    fn file_contents_parse_with_comment_header() {
        for entry in builtin_scenarios() {
            let back = Scenario::from_toml_str(&entry.file_contents())
                .unwrap_or_else(|e| panic!("{}: {e}", entry.scenario.name));
            assert_eq!(back, entry.scenario);
            assert!(entry.file_contents().starts_with("# "));
            assert!(entry.file_name().ends_with(".toml"));
        }
    }

    #[test]
    fn catalog_covers_the_feature_matrix() {
        let entries = builtin_scenarios();
        assert!(entries
            .iter()
            .any(|e| matches!(e.scenario.mobility, MobilitySpec::RandomWaypoint { .. })));
        assert!(entries
            .iter()
            .any(|e| matches!(e.scenario.mobility, MobilitySpec::Convoy { .. })));
        assert!(entries.iter().any(|e| e.scenario.fading.is_some()));
        assert!(entries
            .iter()
            .any(|e| !matches!(e.scenario.churn, ChurnSpec::None)));
        assert!(entries.iter().any(|e| !e.scenario.faults.is_trivial()));
        assert!(entries.iter().any(|e| e.scenario.par_channels));
        // Sharded-engine coverage: at least one world runs the (channel ×
        // shard) fan-out.
        assert!(entries
            .iter()
            .any(|e| e.scenario.shards >= 2 && e.scenario.par_shards));
        // Maintenance coverage: one churn-only and one mobility+churn world.
        assert!(entries.iter().any(|e| e.scenario.maintenance.is_some()
            && matches!(e.scenario.mobility, MobilitySpec::Static)));
        assert!(entries.iter().any(|e| e.scenario.maintenance.is_some()
            && !matches!(e.scenario.mobility, MobilitySpec::Static)
            && !matches!(e.scenario.churn, ChurnSpec::None)));
        // Adversary coverage: one world per adversary family, plus a
        // duty-cycled sleep world.
        assert!(entries.iter().any(|e| matches!(
            e.scenario.adversary,
            Some(AdversarySpec::TrackingJammer { .. })
        )));
        assert!(entries.iter().any(|e| e.scenario.duty_cycle.is_some()));
    }
}
