//! # `mca-sinr` — the SINR physical layer
//!
//! Implements the interference model of Halldórsson–Wang–Yu (PODC 2015), §2:
//!
//! * [`SinrParams`] — ground-truth `α, β, N, P, ε` with every derived radius
//!   the construction needs (`R_T`, `R_ε`, `R_{ε/2}`, cluster radius `r_c`,
//!   Lemma 2's constant `t`, Definition 4's clear-reception threshold `T_s`);
//! * [`NodeKnowledge`] — what *nodes* know: intervals for `α, β, N` and a
//!   polynomial bound on `n` (nodes never see exact parameters or topology);
//! * [`resolve_listener`]/[`resolve_channel`] — per-slot reception per
//!   Eq. (1), including the receiver-side carrier-sense readings (total
//!   received power, and SINR + signal strength on success);
//! * [`ChannelResolver`] — the batched per-channel resolver the engine hot
//!   path runs on, with [`ResolveMode::Exact`] (bit-for-bit the scalar
//!   reference) and [`ResolveMode::Fast`] (hierarchical near/far split:
//!   exact near field, per-cell then per-block aggregated far field, all
//!   error-bounded — see [`resolve_batch`] for the `α > 2` tail-bound
//!   derivation). [`ResolverCache`] persists the spatial index across
//!   slots; [`TaskResolver`] is the per-shard-task view the engine's
//!   sharded fan-out resolves through (bit-identical to the resolver);
//! * [`lanes`] — SIMD-friendly structure-of-arrays power kernels with a
//!   deterministic reduction order, bit-identical to the scalar path (the
//!   resolvers use them by default; `MCA_LANES=0` opts out);
//! * [`is_clear_reception`] — Definition 4;
//! * [`bounds`] — closed forms of Lemmas 2–3 plus the far-field tail bounds
//!   for validation experiments.
//!
//! # Examples
//!
//! ```
//! use mca_sinr::{resolve_listener, SinrParams};
//! use mca_geom::Point;
//!
//! let params = SinrParams::default(); // R_T = 8
//! let out = resolve_listener(&params, &[Point::new(3.0, 0.0)], Point::ORIGIN);
//! assert!(out.decoded.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod lanes;
mod params;
mod resolve;
pub mod resolve_batch;

pub use params::{NodeKnowledge, ParamInterval, PowerKernel, ResolveMode, SinrParams};
pub use resolve::{
    is_clear_reception, resolve_channel, resolve_listener, resolve_listener_ext, ListenOutcome,
};
pub use resolve_batch::{ChannelResolver, ResolverCache, TaskResolver};
