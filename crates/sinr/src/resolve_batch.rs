//! Batched per-channel SINR resolution over a hierarchical spatial index.
//!
//! [`ChannelResolver`] takes the transmitter set of one channel *once* per
//! slot and resolves every listener of that channel against it, replacing
//! the engine's former per-listener `resolve_listener_ext` scan (O(tx)
//! `powf` calls per listener). Two modes, selected by
//! [`SinrParams::resolve`](crate::SinrParams)'s [`ResolveMode`]:
//!
//! * **[`ResolveMode::Exact`]** (default) — every transmitter's power is
//!   computed and summed in transmitter order through the same
//!   [`SinrParams::received_power_sq`](crate::SinrParams::received_power_sq)
//!   kernel the scalar reference uses, so outcomes are **bit-for-bit
//!   identical** to [`resolve_listener`](crate::resolve_listener).
//!
//! * **[`ResolveMode::Fast`]** — a near/far split over a two-level spatial
//!   index built on the transmitter positions. Grid cells whose rectangle
//!   comes within the cutoff radius `R_c = cutoff_factor · R_T` of the
//!   listener are summed exactly, transmitter by transmitter. Farther
//!   cells contribute one aggregated term `n_cell · P / d(center)^α` — and,
//!   new in the sharded-engine rework, cells are grouped into
//!   [`BLOCK_CELLS`]×[`BLOCK_CELLS`] **blocks**: a block whose rectangle is
//!   beyond both the cutoff and [`BLOCK_FAR_FACTOR`]× its own diagonal
//!   contributes a *single* aggregated term for all of its cells. On a
//!   100k-node dense world this cuts the per-listener far-field loop from
//!   every occupied cell (thousands) to a ring of descended blocks plus
//!   one term per far block — the single-slot speedup `experiments
//!   bench-shards` records against the frozen PR 2 flat-grid baseline.
//!
//! # Determinism contract
//!
//! A listener's outcome is a **pure function of `(params, transmitter
//! positions, listener, extra_interference)`** — never of how listeners are
//! batched, partitioned into shard tasks ([`ChannelResolver::task`]), or
//! spread across threads. The per-listener traversal is fixed (blocks in
//! row-major order; within a descended block, cells in row-major order;
//! within a near cell, transmitters in input order), so sharded, parallel,
//! and sequential resolution of the same channel are bit-for-bit identical.
//! The engine's shard fan-out and `MCA_FORCE_PAR` override lean on exactly
//! this property.
//!
//! # The far-field error bound (why truncation is principled)
//!
//! Under the paper's physical model (Eq. 1) the received power of a
//! transmitter at distance `d` is `P/d^α` with path-loss exponent `α > 2`.
//! For a placement of density `λ` (transmitters per unit area), the total
//! interference arriving from beyond a radius `R_c` is at most the tail
//! integral
//!
//! ```text
//! I_far ≤ ∫_{R_c}^∞ 2πλr · P r^{-α} dr = 2πλP/(α−2) · R_c^{2−α},
//! ```
//!
//! which **converges precisely because `α > 2`** — the same
//! bounded-far-interference reasoning behind Definition 4's clear-reception
//! threshold and Lemma 2's annulus argument. Fast mode does not even
//! discard the tail: it *aggregates* it per cell or per block, so only the
//! *variation of distance within the aggregated rectangle* is approximated
//! (closed-form estimates in [`crate::bounds::far_field_tail`] and
//! [`crate::bounds::far_cell_error`]). Beyond the analytic estimate, the
//! resolver computes a **rigorous per-listener bound** from the actual
//! placement: each aggregated rectangle's true power lies in
//! `[n·P/d_max^α, n·P/d_min^α]` (`d_min`/`d_max` the nearest/farthest point
//! of the rectangle), and the center estimate lies in the same interval, so
//! the interference error is at most the summed interval widths — returned
//! by [`ChannelResolver::resolve_with_bound`]. Because `cutoff_factor ≥ 1`
//! forces `R_c ≥ R_T`, no aggregated transmitter can ever be decodable
//! (decoding requires `d ≤ R_T`), so Fast mode can only differ from Exact
//! on a decode whose SINR margin is within that published bound plus
//! floating-point rounding — the property the crate's tests enforce.

use crate::lanes::{self, LANE_WIDTH};
use crate::params::{PowerKernel, ResolveMode, SinrParams};
use crate::resolve::{decide, resolve_listener_ext, ListenOutcome};
use mca_geom::{BoundingBox, Point, SpatialGrid};
use rayon::prelude::*;

/// Listener count above which [`ChannelResolver::resolve_into`] may fan
/// out across threads (no-op on single-core hosts; results are identical
/// either way).
const PAR_LISTENERS: usize = 256;

/// Minimum per-batch work volume (listeners × estimated power evaluations
/// per listener, mode-aware) before the fan-out engages. The vendored
/// rayon runs on a persistent work-stealing pool, so dispatch is a task
/// handoff to an already-parked worker (~single-digit µs), not a thread
/// spawn — the bar is set by chunking/merge overhead and cache effects,
/// an order of magnitude lower than the old spawn-per-call economics.
const PAR_MIN_PAIRS: usize = 1_000_000;

/// Transmitter count below which Fast mode falls back to the exact scan —
/// the grid build would cost more than it saves.
const FAST_MIN_TX: usize = 16;

/// Cells along the longer axis are capped so a very spread-out transmitter
/// set cannot blow up the grid's memory.
const MAX_CELLS_PER_AXIS: f64 = 192.0;

/// Side length of a far-field block, in grid cells (blocks are
/// `BLOCK_CELLS × BLOCK_CELLS` cells).
pub const BLOCK_CELLS: usize = 8;

/// A block is aggregated as one term only beyond `BLOCK_FAR_FACTOR` times
/// its own (nominal) diagonal — closer blocks descend to per-cell terms.
/// At the threshold distance the block's half-diagonal is at most 1/3 of
/// the distance to any listener, so the center-point estimate's relative
/// error per block stays bounded; the rigorous per-listener interval bound
/// reports whatever error actually accrues.
pub const BLOCK_FAR_FACTOR: f64 = 1.5;

/// One occupied transmitter cell of the Fast-mode index.
struct CellSpan {
    rect: BoundingBox,
    /// Range into [`FastIndex::items`].
    start: u32,
    end: u32,
}

/// One block of up to [`BLOCK_CELLS`]² occupied cells: the unit of
/// far-field aggregation (and of halo classification in shard tasks).
struct BlockSpan {
    /// Tight bounding box of the member cells' rectangles.
    rect: BoundingBox,
    /// Center of `rect` — the block's far-field evaluation point.
    center: Point,
    /// Range into [`FastIndex::cells`].
    cell_start: u32,
    cell_end: u32,
    /// Total transmitters in the block, pre-widened for the power sum.
    count: f64,
}

/// Fast-mode spatial index: occupied cells grouped into row-major blocks,
/// cells row-major within each block, transmitter indices contiguous per
/// cell — all orders deterministic.
struct FastIndex {
    blocks: Vec<BlockSpan>,
    cells: Vec<CellSpan>,
    items: Vec<u32>,
    /// SoA lanes aligned with `items`: `lane_xs[k]`/`lane_ys[k]` are the
    /// coordinates of transmitter `items[k]`. The per-cell CSR slices
    /// (`&lane_xs[cell.start..cell.end]`) feed the lane kernels directly —
    /// contiguous coordinates per cell, no per-listener gather through the
    /// `Point` AoS.
    lane_xs: Vec<f64>,
    lane_ys: Vec<f64>,
    /// Per-cell metadata SoA aligned with `cells`: rectangle bounds,
    /// center, and widened transmitter count. The descended-block scan
    /// reads these [`LANE_WIDTH`] cells at a time —
    /// [`lanes::cell_chunk_metrics`] turns the rect-distance
    /// classification and the far-field center powers into packed `f64`
    /// SIMD, which per-cell loads of the `CellSpan` AoS cannot.
    cell_min_x: Vec<f64>,
    cell_min_y: Vec<f64>,
    cell_max_x: Vec<f64>,
    cell_max_y: Vec<f64>,
    cell_cx: Vec<f64>,
    cell_cy: Vec<f64>,
    cell_cnt: Vec<f64>,
    /// Per-block metadata SoA aligned with `blocks` — same shape as the
    /// per-cell SoA, for the same reason: the block pass (descend
    /// classification plus the aggregated far term of every non-descended
    /// block) is itself a rect-distance + center-power scan, and chunking
    /// it through [`lanes::cell_chunk_metrics`] vectorizes the ~`O(blocks)`
    /// scalar evaluations each listener otherwise pays up front.
    blk_min_x: Vec<f64>,
    blk_min_y: Vec<f64>,
    blk_max_x: Vec<f64>,
    blk_max_y: Vec<f64>,
    blk_cx: Vec<f64>,
    blk_cy: Vec<f64>,
    blk_cnt: Vec<f64>,
    /// Squared near-field cutoff `R_c²`.
    cutoff_sq: f64,
    /// Squared block-descend radius `max(R_c, BLOCK_FAR_FACTOR·diag)²`:
    /// blocks farther than this from a listener are aggregated whole.
    descend_sq: f64,
    /// Estimated power-evaluation count per resolved listener — the
    /// quantity the listener fan-out threshold is measured in.
    work_per_listener: usize,
    /// Grid origin (minimum y) and cell side — the quantization the
    /// batched resolver sorts listeners by so the [`LANE_WIDTH`] lanes of
    /// one batch share their descended-block neighborhood. Locality only:
    /// outcomes never depend on the sort.
    origin_y: f64,
    cell_side: f64,
}

/// One cell staged during the block-major regrouping pass of
/// [`FastIndex::build`].
#[derive(Clone, Copy, Default)]
struct Placed {
    rect: Option<BoundingBox>,
    lo: u32,
    hi: u32,
}

/// Reusable temporaries of [`FastIndex::build`]: the counting-sort
/// layout, cursors, staged cells, and the flattened item copy. Owned by
/// [`ResolverCache`] so steady-state rebuilds (mobile worlds re-index
/// every slot) allocate nothing.
#[derive(Default)]
struct BuildScratch {
    starts: Vec<u32>,
    cursor: Vec<u32>,
    placed: Vec<Placed>,
    flat: Vec<u32>,
}

impl FastIndex {
    /// Builds the two-level index over `tx` under `params`, or `None` when
    /// the geometry cannot profit from one (mode is Exact, too few
    /// transmitters, an all-near world, or cell counts rivaling the
    /// transmitter count). `grid` and `scratch` are persistent: the
    /// spatial grid is re-indexed in place ([`SpatialGrid::rebuild`]) and
    /// the build temporaries reused, so steady-state rebuilds allocate
    /// nothing; `recycle` donates a previous index's buffers for the same
    /// reason.
    fn build(
        params: &SinrParams,
        tx: &[Point],
        grid: &mut Option<SpatialGrid>,
        scratch: &mut BuildScratch,
        recycle: Option<FastIndex>,
    ) -> Option<FastIndex> {
        let ResolveMode::Fast { cutoff_factor } = params.resolve else {
            return None;
        };
        if tx.len() < FAST_MIN_TX {
            return None;
        }
        let rt = params.transmission_range();
        let cutoff = cutoff_factor * rt;
        let cutoff_sq = cutoff * cutoff;
        let bb = BoundingBox::from_points(tx.iter().copied()).expect("non-empty transmitter set");
        let extent = bb.width().max(bb.height());
        // Adaptive cell side: aim for a handful of transmitters per
        // occupied cell (the aggregation win), never below R_T/4 (error
        // control) and never so small the grid outgrows MAX_CELLS_PER_AXIS.
        let occupancy_side = (bb.area() * 4.0 / tx.len() as f64).sqrt();
        let side = (rt / 4.0)
            .max(occupancy_side)
            .max(extent / MAX_CELLS_PER_AXIS);
        // Decide *before* building anything whether the grid can pay for
        // itself: a transmitter set whose diagonal fits inside the cutoff
        // has no far field to aggregate, and a grid with as many cells as
        // transmitters saves nothing. Both checks are O(1) on top of the
        // bbox pass.
        let diag_sq = bb.min().dist_sq(bb.max());
        let ncells = ((bb.width() / side) as usize + 1) * ((bb.height() / side) as usize + 1);
        if diag_sq <= cutoff_sq || ncells * 2 > tx.len() {
            return None;
        }
        match grid {
            Some(g) => g.rebuild(tx, side),
            None => *grid = Some(SpatialGrid::build(tx, side)),
        }
        let grid = grid.as_ref().expect("grid just ensured");
        let (nx, ny) = grid.dims();
        let bnx = nx.div_ceil(BLOCK_CELLS);
        let bny = ny.div_ceil(BLOCK_CELLS);

        let mut parts = match recycle {
            Some(mut old) => {
                old.blocks.clear();
                old.cells.clear();
                old.items.clear();
                old.lane_xs.clear();
                old.lane_ys.clear();
                old.cell_min_x.clear();
                old.cell_min_y.clear();
                old.cell_max_x.clear();
                old.cell_max_y.clear();
                old.cell_cx.clear();
                old.cell_cy.clear();
                old.cell_cnt.clear();
                old.blk_min_x.clear();
                old.blk_min_y.clear();
                old.blk_max_x.clear();
                old.blk_max_y.clear();
                old.blk_cx.clear();
                old.blk_cy.clear();
                old.blk_cnt.clear();
                old
            }
            None => FastIndex {
                blocks: Vec::new(),
                cells: Vec::new(),
                items: Vec::with_capacity(tx.len()),
                lane_xs: Vec::with_capacity(tx.len()),
                lane_ys: Vec::with_capacity(tx.len()),
                cell_min_x: Vec::new(),
                cell_min_y: Vec::new(),
                cell_max_x: Vec::new(),
                cell_max_y: Vec::new(),
                cell_cx: Vec::new(),
                cell_cy: Vec::new(),
                cell_cnt: Vec::new(),
                blk_min_x: Vec::new(),
                blk_min_y: Vec::new(),
                blk_max_x: Vec::new(),
                blk_max_y: Vec::new(),
                blk_cx: Vec::new(),
                blk_cy: Vec::new(),
                blk_cnt: Vec::new(),
                cutoff_sq: 0.0,
                descend_sq: 0.0,
                work_per_listener: 0,
                origin_y: 0.0,
                cell_side: 0.0,
            },
        };
        let FastIndex {
            blocks,
            cells,
            items,
            lane_xs,
            lane_ys,
            cell_min_x,
            cell_min_y,
            cell_max_x,
            cell_max_y,
            cell_cx,
            cell_cy,
            cell_cnt,
            blk_min_x,
            blk_min_y,
            blk_max_x,
            blk_max_y,
            blk_cx,
            blk_cy,
            blk_cnt,
            ..
        } = &mut parts;

        // Pass 1: count occupied cells per block (counting-sort layout),
        // in the reused scratch.
        let starts = &mut scratch.starts;
        starts.clear();
        starts.resize(bnx * bny + 1, 0);
        grid.for_each_cell(|cell| {
            let b = (cell.cy / BLOCK_CELLS) * bnx + cell.cx / BLOCK_CELLS;
            starts[b + 1] += 1;
        });
        for b in 0..bnx * bny {
            starts[b + 1] += starts[b];
        }
        let total_cells = starts[bnx * bny] as usize;
        // Pass 2: place cells block-major (row-major blocks; the grid's
        // row-major cell visit order is preserved within each block, so the
        // whole layout is deterministic). Items land contiguously per cell
        // in a third pass once cell order is fixed.
        let placed = &mut scratch.placed;
        placed.clear();
        placed.resize(total_cells, Placed::default());
        let cursor = &mut scratch.cursor;
        cursor.clear();
        cursor.extend_from_slice(starts);
        let flat = &mut scratch.flat;
        flat.clear();
        grid.for_each_cell(|cell| {
            let b = (cell.cy / BLOCK_CELLS) * bnx + cell.cx / BLOCK_CELLS;
            let lo = flat.len() as u32;
            flat.extend_from_slice(cell.items);
            placed[cursor[b] as usize] = Placed {
                rect: Some(cell.rect),
                lo,
                hi: flat.len() as u32,
            };
            cursor[b] += 1;
        });
        // Pass 3: emit blocks, cells, and items in final order.
        for b in 0..bnx * bny {
            let (lo, hi) = (starts[b] as usize, starts[b + 1] as usize);
            if lo == hi {
                continue;
            }
            let cell_start = cells.len() as u32;
            let mut rect: Option<BoundingBox> = None;
            let mut count = 0u32;
            for p in &placed[lo..hi] {
                let cell_rect = p.rect.expect("placed");
                let start = items.len() as u32;
                let span = &flat[p.lo as usize..p.hi as usize];
                items.extend_from_slice(span);
                lane_xs.extend(span.iter().map(|&i| tx[i as usize].x));
                lane_ys.extend(span.iter().map(|&i| tx[i as usize].y));
                cells.push(CellSpan {
                    rect: cell_rect,
                    start,
                    end: items.len() as u32,
                });
                cell_min_x.push(cell_rect.min().x);
                cell_min_y.push(cell_rect.min().y);
                cell_max_x.push(cell_rect.max().x);
                cell_max_y.push(cell_rect.max().y);
                let c = cell_rect.center();
                cell_cx.push(c.x);
                cell_cy.push(c.y);
                cell_cnt.push(f64::from(p.hi - p.lo));
                count += p.hi - p.lo;
                rect = Some(match rect {
                    None => cell_rect,
                    Some(mut r) => {
                        r.expand(cell_rect.min());
                        r.expand(cell_rect.max());
                        r
                    }
                });
            }
            let rect = rect.expect("non-empty block");
            let center = rect.center();
            blk_min_x.push(rect.min().x);
            blk_min_y.push(rect.min().y);
            blk_max_x.push(rect.max().x);
            blk_max_y.push(rect.max().y);
            blk_cx.push(center.x);
            blk_cy.push(center.y);
            blk_cnt.push(f64::from(count));
            blocks.push(BlockSpan {
                rect,
                center,
                cell_start,
                cell_end: cells.len() as u32,
                count: f64::from(count),
            });
        }

        // Blocks aggregate only beyond BLOCK_FAR_FACTOR× their *nominal*
        // diagonal (full BLOCK_CELLS×BLOCK_CELLS extent — an upper bound on
        // any block's actual diagonal, so the error-control intent holds
        // for partial edge blocks too), and never inside the cutoff — so
        // an aggregated block can contain no near cell.
        let nominal_diag = (BLOCK_CELLS as f64) * side * std::f64::consts::SQRT_2;
        let descend = cutoff.max(BLOCK_FAR_FACTOR * nominal_diag);
        let descend_sq = descend * descend;

        // Per-listener cost estimate: one term per block, plus the cells of
        // blocks inside the descend ring, plus the expected exact near
        // field (average transmitter density over the cutoff disk).
        let area = bb.area().max(side * side);
        let cell_density = total_cells as f64 / area;
        let descended_cells =
            (std::f64::consts::PI * descend_sq * cell_density).min(total_cells as f64);
        let near_frac = (std::f64::consts::PI * cutoff_sq / area).min(1.0);
        let work_per_listener =
            blocks.len() + descended_cells as usize + (tx.len() as f64 * near_frac).ceil() as usize;

        parts.cutoff_sq = cutoff_sq;
        parts.descend_sq = descend_sq;
        parts.work_per_listener = work_per_listener;
        parts.origin_y = bb.min().y;
        parts.cell_side = side;
        Some(parts)
    }

    /// Row-major spatial sort key for a listener: quantized grid row, then
    /// a monotone 32-bit image of `x`'s total order. Adjacent keys mean
    /// nearby listeners, so a sorted batch's lanes walk almost the same
    /// descended blocks. Key collisions and saturation on out-of-range
    /// coordinates are harmless — the key steers batching locality, never
    /// an outcome.
    #[inline]
    fn batch_key(&self, p: Point) -> u64 {
        let row = ((p.y - self.origin_y) / self.cell_side).floor();
        let row = if row.is_finite() && row > 0.0 {
            (row as u64).min(u64::from(u32::MAX))
        } else {
            0
        };
        let bx = p.x.to_bits();
        // Flip to a monotone unsigned order (negative floats reverse).
        let bx = if bx >> 63 == 1 { !bx } else { bx | (1 << 63) };
        (row << 32) | (bx >> 32)
    }
}

/// Mutable accumulator state threaded through the lane-mode fast scan:
/// the running near total/argmax, the far estimate, and the pending near
/// run — a contiguous range of [`FastIndex::items`]. Consecutive near
/// cells have adjacent CSR spans, so runs extend while contiguous and
/// flush when broken (or once, after the block pass).
struct LaneScan {
    total: f64,
    best_pow: f64,
    best: usize,
    far_est: f64,
    run_s: usize,
    run_e: usize,
}

thread_local! {
    /// Per-thread scratch for the lane-mode block pass: squared rect
    /// distance and aggregated far term per block, filled by one vector
    /// sweep and consumed by the scalar block walk. Thread-local (not on
    /// the resolver) because the listener fan-out resolves on multiple
    /// threads through `&self`; reused across resolves so the steady
    /// state allocates nothing.
    static BLOCK_SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };

    /// Per-thread scratch for the batched resolver's spatial sort:
    /// `(key, original position)` per listener. Thread-local for the same
    /// reason as [`BLOCK_SCRATCH`]; reused so steady-state batches
    /// allocate nothing.
    static SORT_SCRATCH: std::cell::RefCell<Vec<(u64, u32)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Persistent per-channel resolver state: the spatial grid and two-level
/// index survive across slots and are rebuilt **only when the transmitter
/// positions (or physical parameters) actually change** — fixing the PR 2
/// headroom note that the grid was rebuilt from scratch every slot even in
/// static worlds.
///
/// Invalidation is by exact snapshot comparison of the staged transmitter
/// positions (cheap, early-exit, and *sound*: the index is a pure function
/// of those positions). Event-driven invalidation off the engine's
/// [`NodeEvent`](../mca_radio/enum.NodeEvent.html) stream was evaluated and
/// rejected: motion below the watch threshold changes positions without an
/// event, which would leave a stale index and break bit-reproducibility.
/// The shard partition, whose correctness does *not* depend on freshness,
/// is what consumes the event stream.
#[derive(Default)]
pub struct ResolverCache {
    /// Transmitter positions the current index was built from.
    snapshot: Vec<Point>,
    /// Parameters the current index was built under.
    params: Option<SinrParams>,
    /// Reused spatial-grid scratch (CSR buffers survive rebuilds).
    grid: Option<SpatialGrid>,
    /// Reused build temporaries (see [`BuildScratch`]).
    scratch: BuildScratch,
    /// The current index (`None` when Exact mode or the grid was refused).
    index: Option<FastIndex>,
    /// SoA copy of the snapshot for the exact-scan lane path, maintained
    /// only when there is no index to carry its own CSR lanes (and the set
    /// is at least one lane wide).
    soa_xs: Vec<f64>,
    soa_ys: Vec<f64>,
    /// Rebuilds performed (observable, for tests and diagnostics).
    builds: u64,
    /// Wall nanoseconds spent rebuilding (0 unless the `obs` feature is
    /// on — the stopwatch is compiled out otherwise).
    build_ns: u64,
}

impl ResolverCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of index (re)builds this cache has performed — stays flat
    /// across slots of a static world.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Wall nanoseconds spent in index rebuilds. Always 0 without the
    /// `obs` cargo feature (the clock is never read); with it, the
    /// engine surfaces this as the `resolver_cache_build_ns` counter.
    pub fn build_ns(&self) -> u64 {
        self.build_ns
    }

    /// Ensures the cached index matches `(params, tx)`, rebuilding in
    /// place (buffers reused) when it does not.
    fn ensure(&mut self, params: &SinrParams, tx: &[Point]) {
        if self.matches(params, tx) {
            return;
        }
        let sw = mca_obs::Stopwatch::start_if(mca_obs::enabled());
        self.snapshot.clear();
        self.snapshot.extend_from_slice(tx);
        self.params = Some(*params);
        self.index = FastIndex::build(
            params,
            tx,
            &mut self.grid,
            &mut self.scratch,
            self.index.take(),
        );
        self.soa_xs.clear();
        self.soa_ys.clear();
        if self.index.is_none() && tx.len() >= LANE_WIDTH {
            self.soa_xs.extend(tx.iter().map(|p| p.x));
            self.soa_ys.extend(tx.iter().map(|p| p.y));
        }
        self.builds += 1;
        self.build_ns += sw.elapsed_ns();
    }

    /// Whether the cached index was built for exactly `(params, tx)`.
    pub fn matches(&self, params: &SinrParams, tx: &[Point]) -> bool {
        self.params.as_ref() == Some(params) && self.snapshot == tx
    }

    /// A resolver over the cached index **without** rebuilding — `None`
    /// unless the cache [`matches`](ResolverCache::matches) `(params, tx)`.
    /// Lets callers that warmed their caches up front (a sequential ensure
    /// pass, as the engine's Phase 2 does) hand shared resolver views to
    /// parallel workers.
    pub fn resolver_for<'a>(
        &'a self,
        params: &'a SinrParams,
        tx: &'a [Point],
    ) -> Option<ChannelResolver<'a>> {
        if !self.matches(params, tx) {
            return None;
        }
        let fast = match &self.index {
            Some(ix) => IndexRef::Cached(ix),
            None => IndexRef::None,
        };
        let soa = if self.soa_xs.len() == tx.len() && !tx.is_empty() {
            SoaRef::Borrowed(&self.soa_xs, &self.soa_ys)
        } else {
            SoaRef::None
        };
        Some(ChannelResolver {
            kernel: params.power_kernel(),
            lanes: lanes::enabled(),
            params,
            tx,
            fast,
            soa,
        })
    }
}

/// Batched reception resolution for one channel's transmitter set.
///
/// Build once per (channel, slot) with [`ChannelResolver::new`] — or with
/// [`ChannelResolver::cached`] to reuse a [`ResolverCache`] across slots —
/// then resolve any number of listeners. Listener partitions (the engine's
/// shard tasks) use [`ChannelResolver::task`] for a locality-optimized view
/// that is bit-identical to resolving through the resolver directly.
///
/// # Examples
///
/// ```
/// use mca_sinr::{resolve_listener, ChannelResolver, SinrParams};
/// use mca_geom::Point;
///
/// let params = SinrParams::default();
/// let txs = [Point::new(3.0, 0.0), Point::new(40.0, 40.0)];
/// let resolver = ChannelResolver::new(&params, &txs);
/// let out = resolver.resolve(Point::ORIGIN, 0.0);
/// // Default mode is bit-for-bit the scalar reference.
/// assert_eq!(out, resolve_listener(&params, &txs, Point::ORIGIN));
/// assert_eq!(out.decoded, Some(0));
/// ```
pub struct ChannelResolver<'a> {
    params: &'a SinrParams,
    tx: &'a [Point],
    fast: IndexRef<'a>,
    /// The power kernel, extracted once (the α dispatch is hoisted out of
    /// every hot loop).
    kernel: PowerKernel,
    /// Whether this resolver runs the lane kernels — sampled from
    /// [`lanes::enabled`] at construction, overridable per resolver with
    /// [`ChannelResolver::with_lanes`]. Purely a throughput knob: lane and
    /// scalar resolution are bit-identical.
    lanes: bool,
    /// SoA transmitter coordinates for the exact-scan lane path (the Fast
    /// index carries its own CSR lanes instead).
    soa: SoaRef<'a>,
}

/// Where the resolver's index lives: built fresh for this resolver, or
/// borrowed from a [`ResolverCache`], or absent (exact scan).
enum IndexRef<'a> {
    None,
    Owned(Box<FastIndex>),
    Cached(&'a FastIndex),
}

impl IndexRef<'_> {
    #[inline]
    fn get(&self) -> Option<&FastIndex> {
        match self {
            IndexRef::None => None,
            IndexRef::Owned(ix) => Some(ix),
            IndexRef::Cached(ix) => Some(ix),
        }
    }
}

/// Where the exact-path SoA coordinates live: transposed by this resolver,
/// staged by the engine (or a [`ResolverCache`]), or absent (scalar scan).
enum SoaRef<'a> {
    None,
    Owned(Vec<f64>, Vec<f64>),
    Borrowed(&'a [f64], &'a [f64]),
}

impl SoaRef<'_> {
    #[inline]
    fn get(&self) -> Option<(&[f64], &[f64])> {
        match self {
            SoaRef::None => None,
            SoaRef::Owned(xs, ys) => Some((xs, ys)),
            SoaRef::Borrowed(xs, ys) => Some((xs, ys)),
        }
    }
}

impl<'a> ChannelResolver<'a> {
    /// Indexes `tx_positions` for batched resolution under
    /// `params.resolve`, building a fresh index.
    pub fn new(params: &'a SinrParams, tx_positions: &'a [Point]) -> Self {
        let mut grid = None;
        let mut scratch = BuildScratch::default();
        let fast = match FastIndex::build(params, tx_positions, &mut grid, &mut scratch, None) {
            Some(ix) => IndexRef::Owned(Box::new(ix)),
            None => IndexRef::None,
        };
        let mut r = ChannelResolver {
            kernel: params.power_kernel(),
            lanes: lanes::enabled(),
            params,
            tx: tx_positions,
            fast,
            soa: SoaRef::None,
        };
        r.ensure_soa();
        r
    }

    /// Builds the owned exact-path SoA transpose when the lane path needs
    /// one and nothing staged it (no Fast index with CSR lanes, no
    /// engine/cache buffer).
    fn ensure_soa(&mut self) {
        if self.lanes
            && matches!(self.fast, IndexRef::None)
            && matches!(self.soa, SoaRef::None)
            && self.tx.len() >= LANE_WIDTH
        {
            self.soa = SoaRef::Owned(
                self.tx.iter().map(|p| p.x).collect(),
                self.tx.iter().map(|p| p.y).collect(),
            );
        }
    }

    /// Replaces the resolver's exact-path SoA coordinates with
    /// caller-staged buffers (the engine keeps per-channel `xs`/`ys` hot
    /// across slots, so no per-slot transpose happens). `xs`/`ys` must
    /// mirror the transmitter slice exactly — debug-asserted.
    pub fn with_soa(mut self, xs: &'a [f64], ys: &'a [f64]) -> Self {
        debug_assert_eq!(xs.len(), self.tx.len());
        debug_assert_eq!(ys.len(), self.tx.len());
        if xs.len() == self.tx.len() && ys.len() == self.tx.len() && !xs.is_empty() {
            self.soa = SoaRef::Borrowed(xs, ys);
        }
        self
    }

    /// Pins the lane toggle for this resolver regardless of the global
    /// [`lanes::enabled`] state — the bench harness' `lanes`-vs-`scalar`
    /// arms and the bit-identity audits use this for race-free control.
    /// Outcomes are identical either way; only throughput changes.
    pub fn with_lanes(mut self, on: bool) -> Self {
        self.lanes = on;
        self.ensure_soa();
        self
    }

    /// Whether this resolver runs the lane kernels.
    pub fn lanes_enabled(&self) -> bool {
        self.lanes
    }

    /// Like [`ChannelResolver::new`], but reusing `cache`: if the
    /// transmitter positions and parameters match the cache's snapshot the
    /// index is reused as-is (zero build work — the static-world steady
    /// state), otherwise it is rebuilt in place into the cache's buffers.
    /// Outcomes are identical to a freshly built resolver's.
    pub fn cached(
        params: &'a SinrParams,
        tx_positions: &'a [Point],
        cache: &'a mut ResolverCache,
    ) -> Self {
        cache.ensure(params, tx_positions);
        let fast = match &cache.index {
            Some(ix) => IndexRef::Cached(ix),
            None => IndexRef::None,
        };
        let soa = if cache.soa_xs.len() == tx_positions.len() && !tx_positions.is_empty() {
            SoaRef::Borrowed(&cache.soa_xs, &cache.soa_ys)
        } else {
            SoaRef::None
        };
        ChannelResolver {
            kernel: params.power_kernel(),
            lanes: lanes::enabled(),
            params,
            tx: tx_positions,
            fast,
            soa,
        }
    }

    /// Whether this resolver is using the grid-accelerated Fast path —
    /// false for [`ResolveMode::Exact`], and false in Fast mode when the
    /// geometry cannot profit from a grid (too few transmitters, an
    /// all-near world whose diagonal fits inside the cutoff, or cell
    /// counts rivaling the transmitter count), in which case the resolver
    /// transparently runs the exact scan.
    pub fn is_fast(&self) -> bool {
        self.fast.get().is_some()
    }

    /// Number of far-field blocks in the index (0 on the exact path).
    pub fn block_count(&self) -> usize {
        self.fast.get().map_or(0, |ix| ix.blocks.len())
    }

    /// Number of transmitters indexed.
    pub fn len(&self) -> usize {
        self.tx.len()
    }

    /// Whether the channel has no transmitters.
    pub fn is_empty(&self) -> bool {
        self.tx.is_empty()
    }

    /// Estimated power evaluations per resolved listener (exact scan: all
    /// transmitters) — the quantity the engine's per-channel inline/pool
    /// gating and the resolver's own listener fan-out are measured in.
    pub fn estimated_work_per_listener(&self) -> usize {
        self.fast
            .get()
            .map_or(self.tx.len(), |ix| ix.work_per_listener)
    }

    /// Resolves one listener. `extra_interference` is the per-channel
    /// environmental term (fading, out-of-network traffic), exactly as in
    /// [`crate::resolve_listener_ext`].
    #[inline]
    pub fn resolve(&self, listener: Point, extra_interference: f64) -> ListenOutcome {
        match self.fast.get() {
            None => {
                if self.lanes {
                    if let Some((xs, ys)) = self.soa.get() {
                        return self.resolve_exact_lanes(xs, ys, listener, extra_interference);
                    }
                }
                resolve_listener_ext(self.params, self.tx, listener, extra_interference)
            }
            Some(index) => {
                self.resolve_fast::<false>(index, listener, extra_interference, None)
                    .0
            }
        }
    }

    /// Exact scan over the SoA transpose through the lane kernels —
    /// bitwise [`resolve_listener_ext`]: same distance expression, same
    /// power kernel, same ascending-order accumulation and strict-`>`
    /// argmax (the lane chunks only restructure the element-wise math).
    fn resolve_exact_lanes(
        &self,
        xs: &[f64],
        ys: &[f64],
        listener: Point,
        extra_interference: f64,
    ) -> ListenOutcome {
        debug_assert!(extra_interference >= 0.0, "interference cannot be negative");
        debug_assert!(!xs.is_empty(), "SoA staged only for non-empty channels");
        let mut total = extra_interference;
        let mut best = 0usize;
        let mut best_pow = f64::NEG_INFINITY;
        lanes::accumulate_identity(
            &self.kernel,
            xs,
            ys,
            listener.x,
            listener.y,
            &mut total,
            &mut best_pow,
            &mut best,
        );
        decide(self.params, best, best_pow, total)
    }

    /// Like [`ChannelResolver::resolve`], additionally returning the
    /// rigorous bound on the absolute interference error of this outcome
    /// (always 0 on the exact path). A decode decision can differ from
    /// [`ResolveMode::Exact`] only if moving the interference by the bound
    /// — plus ulp-scale rounding slack from the cell-order near-field sum —
    /// crosses the `β` threshold.
    pub fn resolve_with_bound(
        &self,
        listener: Point,
        extra_interference: f64,
    ) -> (ListenOutcome, f64) {
        match self.fast.get() {
            None => (
                resolve_listener_ext(self.params, self.tx, listener, extra_interference),
                0.0,
            ),
            Some(index) => self.resolve_fast::<true>(index, listener, extra_interference, None),
        }
    }

    /// A resolver view for one shard task: listeners known to lie inside
    /// `listeners_bbox`. The task precomputes, once, which blocks can
    /// possibly descend for *any* listener in the box (the shard's halo
    /// neighborhood); every other block is aggregate-only for the whole
    /// task and skips its per-listener distance test. Because a block
    /// farther than the descend radius from the box is farther than it
    /// from every listener inside ([`BoundingBox::dist_sq_to_box`]
    /// monotonicity), every per-listener branch decision is unchanged —
    /// [`TaskResolver::resolve`] is bit-for-bit
    /// [`ChannelResolver::resolve`].
    pub fn task(&self, listeners_bbox: BoundingBox) -> TaskResolver<'_, 'a> {
        let candidates = self.fast.get().map(|ix| {
            ix.blocks
                .iter()
                .enumerate()
                .filter(|(_, b)| b.rect.dist_sq_to_box(&listeners_bbox) <= ix.descend_sq)
                .map(|(i, _)| i as u32)
                .collect()
        });
        TaskResolver {
            resolver: self,
            bbox: listeners_bbox,
            candidates,
        }
    }

    /// Fast-mode core: blocks in row-major order; aggregated blocks (past
    /// the descend radius) contribute one far term; descended blocks visit
    /// their cells — near cells (inside the cutoff) exactly, far cells as
    /// one term each. `BOUND` selects whether the per-rectangle error
    /// interval is accumulated; the hot path resolves with `BOUND = false`
    /// and reports 0. `candidates` (from [`ChannelResolver::task`]) marks
    /// the blocks that may descend for this listener's task; `None` means
    /// every block is tested.
    /// Accumulates one pending near run — a contiguous range of
    /// `index.items` covering consecutive near cells — through the lane
    /// kernel, which adds each item's power to `total` and tracks the
    /// argmax in ascending CSR order with the smallest-original-index
    /// tie-break: bitwise the scalar per-cell loop over the same cells.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn flush_near_run(
        &self,
        index: &FastIndex,
        s: usize,
        e: usize,
        listener: Point,
        total: &mut f64,
        best_pow: &mut f64,
        best: &mut usize,
    ) {
        if e > s {
            lanes::accumulate_indexed(
                &self.kernel,
                &index.lane_xs[s..e],
                &index.lane_ys[s..e],
                &index.items[s..e],
                listener.x,
                listener.y,
                total,
                best_pow,
                best,
            );
        }
    }

    /// Merges a near cell's CSR span `[s, e)` into the pending near run,
    /// flushing the previous run first when the spans are not contiguous.
    #[inline]
    fn near_run_push(
        &self,
        index: &FastIndex,
        s: usize,
        e: usize,
        listener: Point,
        st: &mut LaneScan,
    ) {
        if st.run_e == s {
            st.run_e = e;
        } else {
            self.flush_near_run(
                index,
                st.run_s,
                st.run_e,
                listener,
                &mut st.total,
                &mut st.best_pow,
                &mut st.best,
            );
            st.run_s = s;
            st.run_e = e;
        }
    }

    /// Cell scan of one descended block under lane mode. `entirely_far`
    /// records that the block's rectangle lies beyond the near cutoff: no
    /// cell's minimum distance can undercut the block's, so the scan skips
    /// classification and folds the far terms straight (vector eval,
    /// in-order adds). Otherwise the vector phase computes rect distance +
    /// center power for LANE_WIDTH cells at once — both bitwise their
    /// scalar counterparts ([`lanes::cell_chunk_metrics`]) — and a scalar
    /// in-order pass classifies each cell: near cells merge into the
    /// pending CSR run, far cells fold their pre-multiplied term. Zipped
    /// `chunks_exact` iterators (not index-and-slice per chunk) keep the
    /// vector phases free of per-chunk bounds checks — the same codegen
    /// lesson as `accumulate_indexed`.
    #[inline]
    fn lane_block_cells(
        &self,
        index: &FastIndex,
        cs: usize,
        ce: usize,
        entirely_far: bool,
        listener: Point,
        st: &mut LaneScan,
    ) {
        if entirely_far {
            let mut icx = index.cell_cx[cs..ce].chunks_exact(LANE_WIDTH);
            let mut icy = index.cell_cy[cs..ce].chunks_exact(LANE_WIDTH);
            let mut icn = index.cell_cnt[cs..ce].chunks_exact(LANE_WIDTH);
            for ((cx, cy), cn) in (&mut icx).zip(&mut icy).zip(&mut icn) {
                let cx: &[f64; LANE_WIDTH] = cx.try_into().expect("exact chunk");
                let cy: &[f64; LANE_WIDTH] = cy.try_into().expect("exact chunk");
                let cn: &[f64; LANE_WIDTH] = cn.try_into().expect("exact chunk");
                let terms =
                    lanes::far_chunk_terms(&self.kernel, cx, cy, cn, listener.x, listener.y);
                for &t in &terms {
                    st.far_est += t;
                }
            }
            // Scalar remainder off the cached centers — bitwise the scalar
            // far-cell term.
            for ((&cx, &cy), &cn) in icx
                .remainder()
                .iter()
                .zip(icy.remainder())
                .zip(icn.remainder())
            {
                let dx = cx - listener.x;
                let dy = cy - listener.y;
                st.far_est += cn * self.kernel.eval(dx * dx + dy * dy);
            }
            return;
        }
        let m = ce - cs;
        let mnx = index.cell_min_x[cs..ce].chunks_exact(LANE_WIDTH);
        let mny = index.cell_min_y[cs..ce].chunks_exact(LANE_WIDTH);
        let mxx = index.cell_max_x[cs..ce].chunks_exact(LANE_WIDTH);
        let mxy = index.cell_max_y[cs..ce].chunks_exact(LANE_WIDTH);
        let ccx = index.cell_cx[cs..ce].chunks_exact(LANE_WIDTH);
        let ccy = index.cell_cy[cs..ce].chunks_exact(LANE_WIDTH);
        let ccn = index.cell_cnt[cs..ce].chunks_exact(LANE_WIDTH);
        let mut k = 0usize;
        for ((((((mnx, mny), mxx), mxy), cx), cy), cn) in
            mnx.zip(mny).zip(mxx).zip(mxy).zip(ccx).zip(ccy).zip(ccn)
        {
            let mnx: &[f64; LANE_WIDTH] = mnx.try_into().expect("exact chunk");
            let mny: &[f64; LANE_WIDTH] = mny.try_into().expect("exact chunk");
            let mxx: &[f64; LANE_WIDTH] = mxx.try_into().expect("exact chunk");
            let mxy: &[f64; LANE_WIDTH] = mxy.try_into().expect("exact chunk");
            let cx: &[f64; LANE_WIDTH] = cx.try_into().expect("exact chunk");
            let cy: &[f64; LANE_WIDTH] = cy.try_into().expect("exact chunk");
            let cn: &[f64; LANE_WIDTH] = cn.try_into().expect("exact chunk");
            let (d_min, terms) = lanes::cell_chunk_metrics(
                &self.kernel,
                mnx,
                mny,
                mxx,
                mxy,
                cx,
                cy,
                cn,
                listener.x,
                listener.y,
            );
            for j in 0..LANE_WIDTH {
                if d_min[j] <= index.cutoff_sq {
                    let cell = &index.cells[cs + k + j];
                    self.near_run_push(index, cell.start as usize, cell.end as usize, listener, st);
                } else {
                    st.far_est += terms[j];
                }
            }
            k += LANE_WIDTH;
        }
        // Remainder cells: scalar classification, same branches and the
        // same term values as the vector phase.
        for cell in &index.cells[cs + (m - m % LANE_WIDTH)..ce] {
            if cell.rect.dist_sq_to(listener) <= index.cutoff_sq {
                self.near_run_push(index, cell.start as usize, cell.end as usize, listener, st);
            } else {
                let n = f64::from(cell.end - cell.start);
                let c = cell.rect.center();
                st.far_est += n * self.params.received_power_sq(c.dist_sq(listener));
            }
        }
    }

    fn resolve_fast<const BOUND: bool>(
        &self,
        index: &FastIndex,
        listener: Point,
        extra_interference: f64,
        candidates: Option<&[u32]>,
    ) -> (ListenOutcome, f64) {
        debug_assert!(extra_interference >= 0.0, "interference cannot be negative");
        let params = self.params;
        let mut total = extra_interference;
        let mut best = 0usize;
        let mut best_pow = f64::NEG_INFINITY;
        let mut far_lo = 0.0;
        let mut far_hi = 0.0;
        let mut far_est = 0.0;
        // Lane mode (hot path only — the bound path evaluates three powers
        // per rectangle and is not hot): the block pass and the descended
        // cell scans both read the index's metadata SoA LANE_WIDTH entries
        // at a time — descend classification, rect distances, and
        // far-field center powers vectorized, every fold kept scalar in
        // traversal order — and consecutive near cells merge into
        // contiguous CSR runs accumulated by the lane kernel. Near items
        // and far terms feed *separate* accumulators (`total` /
        // `far_est`), each in the scalar traversal's own order, so their
        // interleaving is free and the final sum is bitwise the scalar
        // path's.
        let lanes_on = !BOUND && self.lanes;
        let mut cand = candidates.map(|c| c.iter().copied().peekable());
        if lanes_on {
            let mut st = LaneScan {
                total,
                best_pow,
                best,
                far_est: 0.0,
                run_s: 0,
                run_e: 0,
            };
            BLOCK_SCRATCH.with(|scratch| {
                let (d_blk, bterms) = &mut *scratch.borrow_mut();
                let nb = index.blocks.len();
                d_blk.clear();
                d_blk.resize(nb, 0.0);
                bterms.clear();
                bterms.resize(nb, 0.0);
                // Vector sweep: squared rect distance (bitwise
                // `rect.dist_sq_to`) and the aggregated far term (bitwise
                // `count · P/d(center)^α`) for LANE_WIDTH blocks at a
                // time, staged into the scratch so the walk below carries
                // no vector state across its calls into the cell scans.
                let bnx = index.blk_min_x.chunks_exact(LANE_WIDTH);
                let bny = index.blk_min_y.chunks_exact(LANE_WIDTH);
                let bxx = index.blk_max_x.chunks_exact(LANE_WIDTH);
                let bxy = index.blk_max_y.chunks_exact(LANE_WIDTH);
                let bcx = index.blk_cx.chunks_exact(LANE_WIDTH);
                let bcy = index.blk_cy.chunks_exact(LANE_WIDTH);
                let bcn = index.blk_cnt.chunks_exact(LANE_WIDTH);
                let od = d_blk.chunks_exact_mut(LANE_WIDTH);
                let ot = bterms.chunks_exact_mut(LANE_WIDTH);
                for ((((((((mnx, mny), mxx), mxy), cx), cy), cn), od), ot) in bnx
                    .zip(bny)
                    .zip(bxx)
                    .zip(bxy)
                    .zip(bcx)
                    .zip(bcy)
                    .zip(bcn)
                    .zip(od)
                    .zip(ot)
                {
                    let mnx: &[f64; LANE_WIDTH] = mnx.try_into().expect("exact chunk");
                    let mny: &[f64; LANE_WIDTH] = mny.try_into().expect("exact chunk");
                    let mxx: &[f64; LANE_WIDTH] = mxx.try_into().expect("exact chunk");
                    let mxy: &[f64; LANE_WIDTH] = mxy.try_into().expect("exact chunk");
                    let cx: &[f64; LANE_WIDTH] = cx.try_into().expect("exact chunk");
                    let cy: &[f64; LANE_WIDTH] = cy.try_into().expect("exact chunk");
                    let cn: &[f64; LANE_WIDTH] = cn.try_into().expect("exact chunk");
                    let (d, t) = lanes::cell_chunk_metrics(
                        &self.kernel,
                        mnx,
                        mny,
                        mxx,
                        mxy,
                        cx,
                        cy,
                        cn,
                        listener.x,
                        listener.y,
                    );
                    od.copy_from_slice(&d);
                    ot.copy_from_slice(&t);
                }
                // Scalar remainder, same expressions.
                for b in nb - nb % LANE_WIDTH..nb {
                    let block = &index.blocks[b];
                    d_blk[b] = block.rect.dist_sq_to(listener);
                    bterms[b] =
                        block.count * params.received_power_sq(block.center.dist_sq(listener));
                }
                // Scalar walk in block order: fold the aggregated term or
                // descend into the cell scan. A block not in the task's
                // candidate list never descends — and its aggregated term
                // is the same value the per-listener test would produce,
                // so candidacy only steers the branch.
                for (b, (block, (&d, &t))) in index
                    .blocks
                    .iter()
                    .zip(d_blk.iter().zip(bterms.iter()))
                    .enumerate()
                {
                    let may_descend = match cand.as_mut() {
                        None => true,
                        Some(it) => {
                            if it.peek() == Some(&(b as u32)) {
                                it.next();
                                true
                            } else {
                                false
                            }
                        }
                    };
                    if may_descend && d <= index.descend_sq {
                        self.lane_block_cells(
                            index,
                            block.cell_start as usize,
                            block.cell_end as usize,
                            d > index.cutoff_sq,
                            listener,
                            &mut st,
                        );
                    } else {
                        st.far_est += t;
                    }
                }
            });
            self.flush_near_run(
                index,
                st.run_s,
                st.run_e,
                listener,
                &mut st.total,
                &mut st.best_pow,
                &mut st.best,
            );
            total = st.total;
            best_pow = st.best_pow;
            best = st.best;
            far_est = st.far_est;
        } else {
            for (bi, block) in index.blocks.iter().enumerate() {
                // A block not in the task's candidate list is beyond the
                // descend radius for every listener of the task — same
                // branch the per-listener test below would take, decided
                // once.
                let may_descend = match cand.as_mut() {
                    None => true,
                    Some(it) => {
                        if it.peek() == Some(&(bi as u32)) {
                            it.next();
                            true
                        } else {
                            false
                        }
                    }
                };
                let block_d_sq = if may_descend {
                    block.rect.dist_sq_to(listener)
                } else {
                    f64::INFINITY
                };
                if block_d_sq <= index.descend_sq {
                    let (cs, ce) = (block.cell_start as usize, block.cell_end as usize);
                    for cell in &index.cells[cs..ce] {
                        let d_min_sq = cell.rect.dist_sq_to(listener);
                        if d_min_sq <= index.cutoff_sq {
                            // Near cell: exact per-transmitter summation.
                            // Ties on power go to the smallest transmitter
                            // index, matching the scalar reference's
                            // first-strongest-wins scan.
                            let (s, e) = (cell.start as usize, cell.end as usize);
                            for &i in &index.items[s..e] {
                                let p =
                                    params.received_power_sq(self.tx[i as usize].dist_sq(listener));
                                total += p;
                                if p > best_pow || (p == best_pow && (i as usize) < best) {
                                    best_pow = p;
                                    best = i as usize;
                                }
                            }
                        } else {
                            // Far cell: one aggregated term; the true cell
                            // power lies in [n·P/d_max^α, n·P/d_min^α] and
                            // so does the center estimate.
                            let n = f64::from(cell.end - cell.start);
                            let c = cell.rect.center();
                            far_est += n * params.received_power_sq(c.dist_sq(listener));
                            if BOUND {
                                far_hi += n * params.received_power_sq(d_min_sq);
                                far_lo += n * params
                                    .received_power_sq(cell.rect.max_dist_sq_to(listener));
                            }
                        }
                    }
                } else {
                    // Far block: one aggregated term for all of its cells.
                    // The descend radius is at least the cutoff, so no
                    // cell of an aggregated block can be near.
                    far_est +=
                        block.count * params.received_power_sq(block.center.dist_sq(listener));
                    if BOUND {
                        far_hi +=
                            block.count * params.received_power_sq(block.rect.dist_sq_to(listener));
                        far_lo += block.count
                            * params.received_power_sq(block.rect.max_dist_sq_to(listener));
                    }
                }
            }
        }
        total += far_est;
        let bound = (far_hi - far_lo).max(0.0);
        if best_pow == f64::NEG_INFINITY {
            // No near-field candidate. Aggregated transmitters are all
            // beyond R_c ≥ R_T and therefore undecodable, matching Exact's
            // no-decode outcome (carrier sense still reads the estimate).
            return (
                ListenOutcome {
                    decoded: None,
                    signal: 0.0,
                    sinr: 0.0,
                    total_power: total,
                },
                bound,
            );
        }
        (decide(self.params, best, best_pow, total), bound)
    }

    /// Listener-lane fast core: resolves [`LANE_WIDTH`] listeners in **one
    /// walk** of the index. Lane `l` carries listener `l`'s accumulator
    /// chain, so every vector add advances LANE_WIDTH independent serial
    /// reduction chains at once — the structural answer to the
    /// serial-floating-point-add floor that caps what single-listener
    /// vectorization can reach (each listener's fold is a dependency chain
    /// of ~thousands of adds at ~4-cycle latency; batching overlaps eight
    /// such chains instead of trying to shorten one).
    ///
    /// Bitwise contract, per lane: the fold *sequence* of lane `l` is the
    /// scalar walk's sequence with `+0.0` identities interspersed. Blocks
    /// and cells are visited in the same row-major order for all lanes;
    /// where lanes diverge (one listener descends a block another
    /// aggregates), the inactive lane adds `+0.0` — an exact identity on
    /// its non-negative accumulator (`x + 0.0 == x` bitwise for every
    /// `x ≥ +0.0`, and power terms are strictly positive) — while the
    /// active lane adds the very value the scalar walk would
    /// ([`lanes::rect_metrics_lanes`] is element-wise bitwise the scalar
    /// rect/center expressions). Near cells fold through
    /// [`lanes::accumulate_span_lanes`] — transmitters in CSR order, all
    /// eight accumulator/argmax chains advanced per element under the
    /// per-lane near mask, with the same greater-or-tie-on-smaller-index
    /// predicate as the scalar loop. Hence each lane's outcome is
    /// bit-for-bit `resolve_fast::<false>` of that listener alone.
    fn resolve_fast_batch(
        &self,
        index: &FastIndex,
        lxs: &[f64; LANE_WIDTH],
        lys: &[f64; LANE_WIDTH],
        extra_interference: f64,
        candidates: Option<&[u32]>,
    ) -> [ListenOutcome; LANE_WIDTH] {
        debug_assert!(extra_interference >= 0.0, "interference cannot be negative");
        // All lane state is f64 — masks are 1.0/0.0 applied by exact
        // multiplicative identities, the argmax index rides in a f64 lane
        // (exact below 2⁵³) — so every fold below is packed-double SIMD.
        let mut total = [extra_interference; LANE_WIDTH];
        let mut best_pow = [f64::NEG_INFINITY; LANE_WIDTH];
        let mut best = [0.0f64; LANE_WIDTH];
        let mut far = [0.0f64; LANE_WIDTH];
        let mut cand = candidates.map(|c| c.iter().copied().peekable());
        for (bi, block) in index.blocks.iter().enumerate() {
            // Candidacy is a property of the task, not the listener — one
            // peek serves the whole batch.
            let may_descend = match cand.as_mut() {
                None => true,
                Some(it) => {
                    if it.peek() == Some(&(bi as u32)) {
                        it.next();
                        true
                    } else {
                        false
                    }
                }
            };
            if !may_descend {
                // Aggregate-only for the whole task: no lane needs the
                // rectangle distance, so skip the clamp entirely.
                let bterms = lanes::far_terms_lanes(
                    &self.kernel,
                    index.blk_cx[bi],
                    index.blk_cy[bi],
                    index.blk_cnt[bi],
                    lxs,
                    lys,
                );
                for l in 0..LANE_WIDTH {
                    far[l] += bterms[l];
                }
                continue;
            }
            let (d_blk, bterms) = lanes::rect_metrics_lanes(
                &self.kernel,
                index.blk_min_x[bi],
                index.blk_min_y[bi],
                index.blk_max_x[bi],
                index.blk_max_y[bi],
                index.blk_cx[bi],
                index.blk_cy[bi],
                index.blk_cnt[bi],
                lxs,
                lys,
            );
            let mut desc = [0.0f64; LANE_WIDTH];
            let mut ndesc = 0.0f64;
            for l in 0..LANE_WIDTH {
                desc[l] = if d_blk[l] <= index.descend_sq {
                    1.0
                } else {
                    0.0
                };
                ndesc += desc[l];
            }
            if ndesc == 0.0 {
                // The common case under spatial sorting: the whole batch
                // aggregates this block — one unmasked vector add.
                for l in 0..LANE_WIDTH {
                    far[l] += bterms[l];
                }
                continue;
            }
            // Divergent block: descending lanes take +0.0 here (exact
            // identity) and fold their per-cell terms below; the rest take
            // the aggregated term at the same position in their fold
            // sequence as the scalar walk.
            for l in 0..LANE_WIDTH {
                far[l] += bterms[l] * (1.0 - desc[l]);
            }
            let (cs, ce) = (block.cell_start as usize, block.cell_end as usize);
            // A cell can be near for lane `l` only if the block itself is
            // within the cutoff for `l` (cell distance ≥ block distance).
            // Most descended blocks sit in the (cutoff, descend] annulus
            // for the whole batch, so the dominant scan is the `else`
            // branch below: far-only, clamp-free, and free of calls that
            // could spill the vector state.
            let maybe_near = d_blk.iter().any(|&d| d <= index.cutoff_sq);
            if maybe_near {
                let iter = index.cells[cs..ce]
                    .iter()
                    .zip(&index.cell_min_x[cs..ce])
                    .zip(&index.cell_min_y[cs..ce])
                    .zip(&index.cell_max_x[cs..ce])
                    .zip(&index.cell_max_y[cs..ce])
                    .zip(&index.cell_cx[cs..ce])
                    .zip(&index.cell_cy[cs..ce])
                    .zip(&index.cell_cnt[cs..ce]);
                for (((((((cell, &mnx), &mny), &mxx), &mxy), &ccx), &ccy), &ccn) in iter {
                    let (d_min, terms) = lanes::rect_metrics_lanes(
                        &self.kernel,
                        mnx,
                        mny,
                        mxx,
                        mxy,
                        ccx,
                        ccy,
                        ccn,
                        lxs,
                        lys,
                    );
                    // near ⊆ desc, so (desc − near) is exactly the
                    // far-fold mask: a lane that aggregated this block
                    // already took its block term and its cells
                    // contribute +0.0.
                    let mut near = [0.0f64; LANE_WIDTH];
                    let mut nnear = 0.0f64;
                    for l in 0..LANE_WIDTH {
                        near[l] = if d_min[l] <= index.cutoff_sq {
                            desc[l]
                        } else {
                            0.0
                        };
                        nnear += near[l];
                    }
                    for l in 0..LANE_WIDTH {
                        far[l] += terms[l] * (desc[l] - near[l]);
                    }
                    if nnear != 0.0 {
                        // Cross-lane near fold: each transmitter of the
                        // cell advances all eight accumulator chains with
                        // one masked vector add, in CSR order.
                        let (s, e) = (cell.start as usize, cell.end as usize);
                        lanes::accumulate_span_lanes(
                            &self.kernel,
                            &index.lane_xs[s..e],
                            &index.lane_ys[s..e],
                            &index.items[s..e],
                            lxs,
                            lys,
                            &near,
                            &mut total,
                            &mut best_pow,
                            &mut best,
                        );
                    }
                }
            } else {
                let iter = index.cell_cx[cs..ce]
                    .iter()
                    .zip(&index.cell_cy[cs..ce])
                    .zip(&index.cell_cnt[cs..ce]);
                for ((&ccx, &ccy), &ccn) in iter {
                    let terms = lanes::far_terms_lanes(&self.kernel, ccx, ccy, ccn, lxs, lys);
                    for l in 0..LANE_WIDTH {
                        far[l] += terms[l] * desc[l];
                    }
                }
            }
        }
        let mut out = [ListenOutcome::SILENT; LANE_WIDTH];
        for l in 0..LANE_WIDTH {
            let t = total[l] + far[l];
            out[l] = if best_pow[l] == f64::NEG_INFINITY {
                ListenOutcome {
                    decoded: None,
                    signal: 0.0,
                    sinr: 0.0,
                    total_power: t,
                }
            } else {
                decide(self.params, best[l] as usize, best_pow[l], t)
            };
        }
        out
    }

    /// Resolves one listener under an optional task candidate list — the
    /// per-listener fallback of the batched path, bitwise
    /// [`TaskResolver::resolve`] / [`ChannelResolver::resolve`].
    #[inline]
    fn resolve_one(
        &self,
        listener: Point,
        extra_interference: f64,
        candidates: Option<&[u32]>,
    ) -> ListenOutcome {
        match (self.fast.get(), candidates) {
            (Some(index), Some(cand)) => {
                self.resolve_fast::<false>(index, listener, extra_interference, Some(cand))
                    .0
            }
            _ => self.resolve(listener, extra_interference),
        }
    }

    /// Core of the batched drivers: sorts listeners into row-major spatial
    /// order (so the lanes of each batch share their descended-block
    /// neighborhood and the common all-aggregate / all-descend vector
    /// paths dominate), resolves [`LANE_WIDTH`] at a time through
    /// [`ChannelResolver::resolve_fast_batch`], and scatters outcomes back
    /// to the **caller's listener order**. The sort permutes only which
    /// listeners share a walk — each outcome is a pure function of its own
    /// listener, so `out` is bitwise the per-listener loop. Falls back to
    /// that loop when lanes are off, the index is absent (Exact mode), or
    /// the batch is narrower than a lane.
    fn resolve_batch_impl(
        &self,
        listeners: &[Point],
        extra_interference: f64,
        candidates: Option<&[u32]>,
        out: &mut Vec<ListenOutcome>,
    ) {
        self.resolve_batch_core(
            listeners.len(),
            |i| listeners[i],
            extra_interference,
            candidates,
            out,
        );
    }

    /// Shared machinery of the slice and indexed batch drivers: `get(i)`
    /// yields the `i`-th listener of the batch, `out[i]` its outcome.
    fn resolve_batch_core(
        &self,
        n: usize,
        get: impl Fn(usize) -> Point + Copy,
        extra_interference: f64,
        candidates: Option<&[u32]>,
        out: &mut Vec<ListenOutcome>,
    ) {
        out.clear();
        let index = match self.fast.get() {
            Some(ix) if self.lanes && n >= LANE_WIDTH => ix,
            _ => {
                out.extend(
                    (0..n).map(|i| self.resolve_one(get(i), extra_interference, candidates)),
                );
                return;
            }
        };
        out.resize(n, ListenOutcome::SILENT);
        SORT_SCRATCH.with(|scratch| {
            let order = &mut *scratch.borrow_mut();
            order.clear();
            order.extend((0..n).map(|i| (index.batch_key(get(i)), i as u32)));
            order.sort_unstable();
            let mut chunks = order.chunks_exact(LANE_WIDTH);
            let mut lxs = [0.0f64; LANE_WIDTH];
            let mut lys = [0.0f64; LANE_WIDTH];
            for chunk in &mut chunks {
                for (j, &(_, i)) in chunk.iter().enumerate() {
                    let p = get(i as usize);
                    lxs[j] = p.x;
                    lys[j] = p.y;
                }
                let outs =
                    self.resolve_fast_batch(index, &lxs, &lys, extra_interference, candidates);
                for (j, &(_, i)) in chunk.iter().enumerate() {
                    out[i as usize] = outs[j];
                }
            }
            for &(_, i) in chunks.remainder() {
                out[i as usize] = self
                    .resolve_fast::<false>(index, get(i as usize), extra_interference, candidates)
                    .0;
            }
        });
    }

    /// Resolves every listener into `out` (cleared first; outcomes in
    /// listener order), walking the index once per [`LANE_WIDTH`]
    /// spatially-adjacent listeners instead of once per listener. Each
    /// outcome is bit-for-bit [`ChannelResolver::resolve`] of that
    /// listener — batching, like sharding and threading, is invisible in
    /// the results.
    pub fn resolve_batch_into(
        &self,
        listeners: &[Point],
        extra_interference: f64,
        out: &mut Vec<ListenOutcome>,
    ) {
        self.resolve_batch_impl(listeners, extra_interference, None, out);
    }

    /// Resolves a batch of listeners into `out` (cleared first), in
    /// listener order. Batches whose work volume dwarfs the pool's task
    /// handoff and merge cost are resolved in parallel on multi-core
    /// hosts; per-listener outcomes are independent, so the result is
    /// identical to the sequential loop on any thread count. When the
    /// fan-out engages, the caller's buffer is replaced by the collected
    /// one (one allocation, amortized against `PAR_MIN_PAIRS` (1M) pair
    /// resolutions).
    pub fn resolve_into(
        &self,
        listeners: &[Point],
        extra_interference: f64,
        out: &mut Vec<ListenOutcome>,
    ) {
        let work = listeners
            .len()
            .saturating_mul(self.estimated_work_per_listener().max(1));
        if listeners.len() >= PAR_LISTENERS
            && work >= PAR_MIN_PAIRS
            && rayon::current_num_threads() > 1
        {
            // The vendored rayon has no collect_into_vec; hand the collected
            // buffer to the caller instead of copying it into `out`.
            *out = listeners
                .par_iter()
                .map(|&l| self.resolve(l, extra_interference))
                .collect();
        } else {
            self.resolve_into_sequential(listeners, extra_interference, out);
        }
    }

    /// [`ChannelResolver::resolve_into`] without the listener fan-out —
    /// for callers that already parallelize at a coarser grain (the
    /// engine's shard tasks and channel groups) or that rely on `out`'s
    /// buffer being reused. Runs the lane-batched walk when the fast index
    /// and lanes are available — outcomes are bitwise the per-listener
    /// loop either way.
    pub fn resolve_into_sequential(
        &self,
        listeners: &[Point],
        extra_interference: f64,
        out: &mut Vec<ListenOutcome>,
    ) {
        self.resolve_batch_impl(listeners, extra_interference, None, out);
    }

    /// Indexed form of [`ChannelResolver::resolve_batch_into`]:
    /// `out[i]` is the outcome for `positions[keys[i]]`. Lets callers
    /// that address listeners through index lists (the engine's shard
    /// units) feed the lane-batched walk without gathering a point
    /// buffer first.
    pub fn resolve_indexed_into(
        &self,
        positions: &[Point],
        keys: &[u32],
        extra_interference: f64,
        out: &mut Vec<ListenOutcome>,
    ) {
        self.resolve_batch_core(
            keys.len(),
            |i| positions[keys[i] as usize],
            extra_interference,
            None,
            out,
        );
    }
}

/// One shard task's view of a [`ChannelResolver`]: see
/// [`ChannelResolver::task`]. Resolution through a task is bit-for-bit
/// identical to resolution through the resolver itself for any listener
/// inside the task's bounding box (debug-asserted).
pub struct TaskResolver<'r, 'a> {
    resolver: &'r ChannelResolver<'a>,
    bbox: BoundingBox,
    /// Sorted block indices that may descend for some listener of this
    /// task (`None` on the exact path).
    candidates: Option<Vec<u32>>,
}

impl TaskResolver<'_, '_> {
    /// Resolves one listener of this task — bitwise identical to
    /// [`ChannelResolver::resolve`] on the same inputs.
    #[inline]
    pub fn resolve(&self, listener: Point, extra_interference: f64) -> ListenOutcome {
        debug_assert!(
            self.bbox.contains(listener),
            "task listener {listener:?} outside its task bbox"
        );
        match (self.resolver.fast.get(), &self.candidates) {
            (Some(index), Some(cand)) => {
                self.resolver
                    .resolve_fast::<false>(index, listener, extra_interference, Some(cand))
                    .0
            }
            _ => self.resolver.resolve(listener, extra_interference),
        }
    }

    /// Resolves a batch of this task's listeners into `out` (cleared
    /// first; outcomes in listener order) through the lane-batched index
    /// walk — each outcome bit-for-bit [`TaskResolver::resolve`] of that
    /// listener. This is the engine's and bench harness' hot entry: shard
    /// tasks hand over whole listener runs, and the batch walk amortizes
    /// one block traversal across [`LANE_WIDTH`] of them.
    pub fn resolve_batch_into(
        &self,
        listeners: &[Point],
        extra_interference: f64,
        out: &mut Vec<ListenOutcome>,
    ) {
        #[cfg(debug_assertions)]
        for &l in listeners {
            debug_assert!(
                self.bbox.contains(l),
                "task listener {l:?} outside its task bbox"
            );
        }
        match (self.resolver.fast.get(), &self.candidates) {
            (Some(_), Some(cand)) => {
                self.resolver
                    .resolve_batch_impl(listeners, extra_interference, Some(cand), out);
            }
            _ => self
                .resolver
                .resolve_batch_impl(listeners, extra_interference, None, out),
        }
    }

    /// Indexed form of [`TaskResolver::resolve_batch_into`]: `out[i]` is
    /// the outcome for `positions[keys[i]]`.
    pub fn resolve_indexed_into(
        &self,
        positions: &[Point],
        keys: &[u32],
        extra_interference: f64,
        out: &mut Vec<ListenOutcome>,
    ) {
        #[cfg(debug_assertions)]
        for &k in keys {
            debug_assert!(
                self.bbox.contains(positions[k as usize]),
                "task listener {:?} outside its task bbox",
                positions[k as usize]
            );
        }
        let candidates = match (self.resolver.fast.get(), &self.candidates) {
            (Some(_), Some(cand)) => Some(cand.as_slice()),
            _ => None,
        };
        self.resolver.resolve_batch_core(
            keys.len(),
            |i| positions[keys[i] as usize],
            extra_interference,
            candidates,
            out,
        );
    }

    /// Number of halo blocks this task may descend into (0 on the exact
    /// path) — the size of the task's near neighborhood.
    pub fn halo_blocks(&self) -> usize {
        self.candidates.as_ref().map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::resolve_listener;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn exact() -> SinrParams {
        SinrParams::default()
    }

    fn fast(cutoff_factor: f64) -> SinrParams {
        SinrParams::default().with_resolve(ResolveMode::Fast { cutoff_factor })
    }

    fn random_world(seed: u64, n_tx: usize, side: f64) -> (Vec<Point>, Vec<Point>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pt = |side: f64| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        let txs = (0..n_tx).map(|_| pt(side)).collect();
        let mut rng2 = SmallRng::seed_from_u64(seed ^ 0xABCD);
        let listeners = (0..50)
            .map(|_| {
                Point::new(
                    rng2.gen_range(-5.0..side + 5.0),
                    rng2.gen_range(-5.0..side + 5.0),
                )
            })
            .collect();
        (txs, listeners)
    }

    /// A dense world large enough that whole blocks aggregate (cells are
    /// clamped at `R_T/4`, so high density means many cells and several
    /// blocks beyond the descend radius).
    fn dense_blocky_world(seed: u64, n_tx: usize) -> (Vec<Point>, Vec<Point>) {
        let side = (n_tx as f64 / 4.0).sqrt() * 2.0;
        random_world(seed, n_tx, side)
    }

    #[test]
    fn exact_mode_never_builds_grid_and_fast_does() {
        let (txs, _) = random_world(1, 100, 60.0);
        let pe = exact();
        let pf = fast(1.0);
        assert!(!ChannelResolver::new(&pe, &txs).is_fast());
        let rf = ChannelResolver::new(&pf, &txs);
        assert!(rf.is_fast());
        assert_eq!(rf.len(), 100);
        assert!(!rf.is_empty());
        // Tiny transmitter sets fall back to the exact scan.
        assert!(!ChannelResolver::new(&pf, &txs[..4]).is_fast());
    }

    #[test]
    fn exact_batch_is_bitwise_scalar_on_large_worlds() {
        for seed in 0..4u64 {
            let (txs, listeners) = random_world(seed, 400, 50.0);
            let params = exact();
            let resolver = ChannelResolver::new(&params, &txs);
            let mut out = Vec::new();
            resolver.resolve_into(&listeners, 0.3, &mut out);
            for (i, &l) in listeners.iter().enumerate() {
                assert_eq!(out[i], resolve_listener_ext(&params, &txs, l, 0.3));
            }
        }
    }

    #[test]
    fn empty_and_extra_interference_edge_cases() {
        let params = exact();
        let resolver = ChannelResolver::new(&params, &[]);
        assert!(resolver.is_empty());
        assert_eq!(resolver.resolve(Point::ORIGIN, 0.0), ListenOutcome::SILENT);
        assert_eq!(resolver.resolve(Point::ORIGIN, 2.0).total_power, 2.0);
        let (out, bound) = resolver.resolve_with_bound(Point::ORIGIN, 0.0);
        assert_eq!(out, ListenOutcome::SILENT);
        assert_eq!(bound, 0.0);
    }

    #[test]
    fn fast_falls_back_to_exact_on_all_near_worlds() {
        // A world whose diagonal fits inside the cutoff has no far field to
        // aggregate: Fast must skip the grid entirely and be bit-for-bit
        // the exact scan.
        let (txs, listeners) = random_world(7, 60, 6.0);
        let pe = exact();
        let pf = fast(2.0);
        let re = ChannelResolver::new(&pe, &txs);
        let rf = ChannelResolver::new(&pf, &txs);
        assert!(
            !rf.is_fast(),
            "no grid should be built for an all-near world"
        );
        for &l in &listeners {
            let (out_f, bound) = rf.resolve_with_bound(l, 0.0);
            assert_eq!(bound, 0.0);
            assert_eq!(out_f, re.resolve(l, 0.0));
        }
    }

    #[test]
    fn fast_grid_engages_and_rarely_disagrees_on_dense_worlds() {
        let (txs, listeners) = random_world(5, 400, 60.0);
        let pe = exact();
        let pf = fast(1.5);
        let re = ChannelResolver::new(&pe, &txs);
        let rf = ChannelResolver::new(&pf, &txs);
        assert!(rf.is_fast(), "a dense spread-out world must use the grid");
        let mut flips = 0usize;
        for &l in &listeners {
            let out_f = rf.resolve(l, 0.0);
            let out_e = re.resolve(l, 0.0);
            if out_f.decoded == out_e.decoded {
                if out_f.decoded.is_some() {
                    assert_eq!(out_f.signal, out_e.signal, "same decoded power term");
                }
            } else {
                flips += 1;
            }
        }
        assert!(
            flips * 10 <= listeners.len(),
            "far-field aggregation flipped {flips}/{} decisions",
            listeners.len()
        );
    }

    #[test]
    fn block_aggregation_engages_on_big_dense_worlds() {
        let (txs, listeners) = dense_blocky_world(11, 20_000);
        let params = fast(1.5);
        let resolver = ChannelResolver::new(&params, &txs);
        assert!(resolver.is_fast());
        assert!(
            resolver.block_count() >= 9,
            "expected several blocks, got {}",
            resolver.block_count()
        );
        // A corner listener must see most blocks aggregated: its task from
        // a tight bbox descends into only a small halo neighborhood.
        let task = resolver.task(BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        assert!(
            task.halo_blocks() < resolver.block_count(),
            "corner task should not descend into every block ({}/{})",
            task.halo_blocks(),
            resolver.block_count()
        );
        // And block aggregation stays within the published bound contract.
        let pe = exact();
        let re = ChannelResolver::new(&pe, &txs);
        for &l in listeners.iter().take(10) {
            let (out_f, bound) = resolver.resolve_with_bound(l, 0.0);
            let out_e = re.resolve(l, 0.0);
            assert!(
                (out_f.total_power - out_e.total_power).abs()
                    <= bound + 1e-9 * out_e.total_power.max(1.0),
                "carrier-sense error {} exceeds bound {bound}",
                (out_f.total_power - out_e.total_power).abs()
            );
        }
    }

    #[test]
    fn task_resolution_is_bitwise_resolver_resolution() {
        let (txs, listeners) = dense_blocky_world(3, 8_000);
        for params in [exact(), fast(1.5)] {
            let resolver = ChannelResolver::new(&params, &txs);
            // Partition listeners into quadrant tasks and compare bitwise.
            let world = BoundingBox::from_points(listeners.iter().copied()).unwrap();
            let (cx, cy) = (world.center().x, world.center().y);
            for &l in &listeners {
                let corner = Point::new(
                    if l.x <= cx {
                        world.min().x
                    } else {
                        world.max().x
                    },
                    if l.y <= cy {
                        world.min().y
                    } else {
                        world.max().y
                    },
                );
                let task = resolver.task(BoundingBox::new(Point::new(cx, cy), corner));
                assert_eq!(
                    task.resolve(l, 0.25),
                    resolver.resolve(l, 0.25),
                    "task outcome diverged at {l:?}"
                );
            }
        }
    }

    #[test]
    fn lane_and_scalar_resolvers_are_bitwise_identical() {
        // Both modes, fractional and integer α, enough transmitters that
        // the lane chunks and the scalar remainder both run.
        for alpha in [3.0, 3.7] {
            for params in [
                SinrParams::with_range(alpha, 1.5, 1.0, 8.0, 0.5),
                SinrParams::with_range(alpha, 1.5, 1.0, 8.0, 0.5)
                    .with_resolve(ResolveMode::Fast { cutoff_factor: 1.5 }),
            ] {
                let (txs, listeners) = dense_blocky_world(17, 5_000);
                let lanes_on = ChannelResolver::new(&params, &txs).with_lanes(true);
                let lanes_off = ChannelResolver::new(&params, &txs).with_lanes(false);
                assert!(lanes_on.lanes_enabled() && !lanes_off.lanes_enabled());
                for &l in &listeners {
                    let a = lanes_on.resolve(l, 0.25);
                    let b = lanes_off.resolve(l, 0.25);
                    assert_eq!(a.decoded, b.decoded);
                    assert_eq!(a.signal.to_bits(), b.signal.to_bits());
                    assert_eq!(a.sinr.to_bits(), b.sinr.to_bits());
                    assert_eq!(
                        a.total_power.to_bits(),
                        b.total_power.to_bits(),
                        "lane total diverged at {l:?} (α={alpha})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_resolution_is_bitwise_per_listener() {
        // The listener-lane walk (spatial sort, shared block traversal,
        // masked folds) must be invisible in the outcomes — through the
        // resolver directly and through a task's candidate list, with a
        // remainder narrower than a lane, for integer and fractional α.
        for alpha in [3.0, 3.7] {
            let params = SinrParams::with_range(alpha, 1.5, 1.0, 8.0, 0.5)
                .with_resolve(ResolveMode::Fast { cutoff_factor: 1.5 });
            let (txs, mut listeners) = dense_blocky_world(23, 8_000);
            // Odd count so the chunked walk leaves a scalar remainder.
            listeners.truncate(45);
            let resolver = ChannelResolver::new(&params, &txs).with_lanes(true);
            assert!(resolver.is_fast());
            let mut out = Vec::new();
            resolver.resolve_batch_into(&listeners, 0.25, &mut out);
            assert_eq!(out.len(), listeners.len());
            for (k, &l) in listeners.iter().enumerate() {
                let one = resolver.resolve(l, 0.25);
                assert_eq!(out[k].decoded, one.decoded);
                assert_eq!(out[k].total_power.to_bits(), one.total_power.to_bits());
                assert_eq!(out[k].signal.to_bits(), one.signal.to_bits());
                assert_eq!(out[k].sinr.to_bits(), one.sinr.to_bits());
            }
            // Task-scoped batches: same contract under a candidate list.
            let bbox = BoundingBox::from_points(listeners.iter().copied()).unwrap();
            let task = resolver.task(bbox);
            let mut task_out = Vec::new();
            task.resolve_batch_into(&listeners, 0.25, &mut task_out);
            for (k, &l) in listeners.iter().enumerate() {
                let one = task.resolve(l, 0.25);
                assert_eq!(task_out[k].total_power.to_bits(), one.total_power.to_bits());
                assert_eq!(task_out[k], one);
            }
            // Lanes off: the same entry point degrades to the scalar loop.
            let scalar = ChannelResolver::new(&params, &txs).with_lanes(false);
            let mut scalar_out = Vec::new();
            scalar.resolve_batch_into(&listeners, 0.25, &mut scalar_out);
            for (k, o) in out.iter().enumerate() {
                assert_eq!(scalar_out[k].total_power.to_bits(), o.total_power.to_bits());
            }
        }
    }

    #[test]
    fn cache_reuses_index_for_static_positions_and_rebuilds_on_change() {
        let (txs, listeners) = random_world(9, 400, 60.0);
        let params = fast(1.5);
        let mut cache = ResolverCache::new();
        let fresh: Vec<ListenOutcome> = {
            let r = ChannelResolver::new(&params, &txs);
            listeners.iter().map(|&l| r.resolve(l, 0.0)).collect()
        };
        for _ in 0..5 {
            let r = ChannelResolver::cached(&params, &txs, &mut cache);
            assert!(r.is_fast());
            for (k, &l) in listeners.iter().enumerate() {
                assert_eq!(r.resolve(l, 0.0), fresh[k], "cached outcome diverged");
            }
        }
        assert_eq!(cache.builds(), 1, "static positions must not rebuild");
        // Any position change invalidates.
        let mut moved = txs.clone();
        moved[7] = Point::new(moved[7].x + 0.5, moved[7].y);
        {
            let r = ChannelResolver::cached(&params, &moved, &mut cache);
            let direct = ChannelResolver::new(&params, &moved);
            assert_eq!(
                r.resolve(listeners[0], 0.0),
                direct.resolve(listeners[0], 0.0)
            );
        }
        assert_eq!(cache.builds(), 2);
        // Parameter changes invalidate too (different cutoff → different index).
        let wide = fast(2.5);
        let _ = ChannelResolver::cached(&wide, &moved, &mut cache);
        assert_eq!(cache.builds(), 3);
    }

    #[test]
    fn fast_bound_shrinks_with_cutoff() {
        let (txs, listeners) = random_world(3, 500, 200.0);
        let tight = fast(1.0);
        let wide = fast(3.0);
        let rt = ChannelResolver::new(&tight, &txs);
        let rw = ChannelResolver::new(&wide, &txs);
        let mut sum_tight = 0.0;
        let mut sum_wide = 0.0;
        for &l in &listeners {
            sum_tight += rt.resolve_with_bound(l, 0.0).1;
            sum_wide += rw.resolve_with_bound(l, 0.0).1;
        }
        assert!(
            sum_wide < sum_tight,
            "wider cutoff must tighten the far-field bound: {sum_wide} vs {sum_tight}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        /// Tentpole property: batched Exact resolution is outcome-for-outcome
        /// (bitwise) the scalar reference, for any placement and extra
        /// interference.
        #[test]
        fn exact_equals_scalar_bitwise(
            raw in proptest::collection::vec((-30.0..30.0f64, -30.0..30.0f64), 0..60),
            lx in -30.0..30.0f64,
            ly in -30.0..30.0f64,
            extra in 0.0..5.0f64,
        ) {
            let params = exact();
            let txs: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let l = Point::new(lx, ly);
            let resolver = ChannelResolver::new(&params, &txs);
            prop_assert_eq!(
                resolver.resolve(l, extra),
                resolve_listener_ext(&params, &txs, l, extra)
            );
        }

        /// Fast mode never flips a decode whose SINR margin exceeds the
        /// published per-listener error bound.
        #[test]
        fn fast_flips_only_within_bound(
            raw in proptest::collection::vec((0.0..120.0f64, 0.0..120.0f64), 16..80),
            lx in 0.0..120.0f64,
            ly in 0.0..120.0f64,
            cutoff in 1.0..2.5f64,
        ) {
            let params = fast(cutoff);
            let txs: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let l = Point::new(lx, ly);
            let resolver = ChannelResolver::new(&params, &txs);
            let (fast_out, bound) = resolver.resolve_with_bound(l, 0.0);
            let scalar = resolve_listener(&params, &txs, l);
            if fast_out.decoded == scalar.decoded {
                // Same decision; if decoded, it is the same transmitter and
                // the numeric fields differ by at most the bound's effect.
                if fast_out.decoded.is_some() {
                    prop_assert_eq!(fast_out.signal, scalar.signal);
                    prop_assert!(
                        (fast_out.total_power - scalar.total_power).abs()
                            <= bound + 1e-9 * scalar.total_power.max(1.0)
                    );
                }
            } else {
                // Decisions differ: the scalar margin must be within the
                // bound — neither robustly decodable nor robustly not.
                let (sig, interference) = strongest_and_interference(&params, &txs, l);
                // Ulp-scale slack: the near field is summed in cell order,
                // so totals differ from the scalar scan by rounding even when
                // the interval bound is 0.
                let slack = bound + 1e-9 * (params.noise + interference);
                let robust_yes = params.decodes(sig, interference + slack);
                let robust_no = !params.decodes(sig, (interference - slack).max(0.0));
                prop_assert!(
                    !robust_yes && !robust_no,
                    "flip outside bound {}: sig {} interference {} (fast {:?} vs scalar {:?})",
                    bound, sig, interference, fast_out.decoded, scalar.decoded
                );
            }
        }

        /// Block-level aggregation (dense worlds, several blocks) also only
        /// flips within the published bound, and task-partitioned
        /// resolution is bitwise the direct resolution.
        #[test]
        fn blocky_fast_flips_only_within_bound(
            seed in 0u64..32,
            lx in 0.0..140.0f64,
            ly in 0.0..140.0f64,
        ) {
            let params = fast(1.5);
            let (txs, _) = dense_blocky_world(seed, 5_000);
            let l = Point::new(lx, ly);
            let resolver = ChannelResolver::new(&params, &txs);
            prop_assert!(resolver.is_fast());
            let (fast_out, bound) = resolver.resolve_with_bound(l, 0.0);
            let task = resolver.task(BoundingBox::new(
                Point::new(lx - 1.0, ly - 1.0),
                Point::new(lx + 1.0, ly + 1.0),
            ));
            prop_assert_eq!(task.resolve(l, 0.0), fast_out);
            let scalar = resolve_listener(&params, &txs, l);
            if fast_out.decoded != scalar.decoded {
                let (sig, interference) = strongest_and_interference(&params, &txs, l);
                let slack = bound + 1e-9 * (params.noise + interference);
                let robust_yes = params.decodes(sig, interference + slack);
                let robust_no = !params.decodes(sig, (interference - slack).max(0.0));
                prop_assert!(
                    !robust_yes && !robust_no,
                    "flip outside bound {bound}: sig {sig} interference {interference}"
                );
            }
        }
    }

    /// The true strongest signal and the exact residual interference at `l`
    /// (ground truth for the margin check above).
    fn strongest_and_interference(params: &SinrParams, txs: &[Point], l: Point) -> (f64, f64) {
        let mut total = 0.0;
        let mut best = f64::NEG_INFINITY;
        for &t in txs {
            let p = params.received_power_sq(t.dist_sq(l));
            total += p;
            if p > best {
                best = p;
            }
        }
        (best, total - best)
    }
}
