//! Batched per-channel SINR resolution over a spatial grid.
//!
//! [`ChannelResolver`] takes the transmitter set of one channel *once* per
//! slot and resolves every listener of that channel against it, replacing
//! the engine's former per-listener `resolve_listener_ext` scan (O(tx)
//! `powf` calls per listener). Two modes, selected by
//! [`SinrParams::resolve`](crate::SinrParams)'s [`ResolveMode`]:
//!
//! * **[`ResolveMode::Exact`]** (default) — every transmitter's power is
//!   computed and summed in transmitter order through the same
//!   [`SinrParams::received_power_sq`](crate::SinrParams::received_power_sq)
//!   kernel the scalar reference uses, so outcomes are **bit-for-bit
//!   identical** to [`resolve_listener`](crate::resolve_listener). The
//!   speedup comes from the shared squared-distance kernel (no `sqrt`
//!   before the power law, multiply-only integer-`α` fast paths instead of
//!   `powf`) and, on multi-core hosts, from fanning listeners out across
//!   threads (per-listener outcomes are independent, so parallel and
//!   sequential resolution are identical).
//!
//! * **[`ResolveMode::Fast`]** — a near/far split over a
//!   [`SpatialGrid`] built on the transmitter positions. Cells whose
//!   rectangle comes within the cutoff radius `R_c = cutoff_factor · R_T`
//!   of the listener are summed exactly, transmitter by transmitter; every
//!   farther cell contributes one aggregated term
//!   `n_cell · P / d(center)^α` — one distance computation per occupied
//!   cell instead of one per transmitter.
//!
//! # The far-field error bound (why truncation is principled)
//!
//! Under the paper's physical model (Eq. 1) the received power of a
//! transmitter at distance `d` is `P/d^α` with path-loss exponent `α > 2`.
//! For a placement of density `λ` (transmitters per unit area), the total
//! interference arriving from beyond a radius `R_c` is at most the tail
//! integral
//!
//! ```text
//! I_far ≤ ∫_{R_c}^∞ 2πλr · P r^{-α} dr = 2πλP/(α−2) · R_c^{2−α},
//! ```
//!
//! which **converges precisely because `α > 2`** — the same
//! bounded-far-interference reasoning behind Definition 4's clear-reception
//! threshold (a fixed interference budget certifies that no transmitter
//! within `4r` fired) and Lemma 2's annulus argument. Fast mode does not
//! even discard the tail: it *aggregates* it per cell, so only the
//! *variation of distance within a cell* is approximated. With cell side
//! `c` (half-diagonal `δ = c·√2/2`), the per-transmitter error is at most
//! `|∂_d(P d^{-α})|·δ = αPδ·d^{-α-1}` up to `O(δ/d)²`, and integrating over
//! the plane beyond `R_c` gives the analytic estimate
//!
//! ```text
//! ε(R_c, α, λ) ≲ ∫_{R_c}^∞ 2πλr · αPδ r^{-α-1} dr
//!              = 2πλαPδ/(α−1) · R_c^{1−α}
//! ```
//!
//! (closed forms in [`crate::bounds::far_field_tail`] and
//! [`crate::bounds::far_cell_error`]). Beyond the analytic estimate, the
//! resolver computes a **rigorous per-listener bound** from the actual
//! placement: each occupied far cell's true power lies in
//! `[n·P/d_max^α, n·P/d_min^α]` (`d_min`/`d_max` the nearest/farthest point
//! of the cell rectangle), and the center estimate lies in the same
//! interval, so the interference error is at most the summed interval
//! widths — returned by [`ChannelResolver::resolve_with_bound`]. Because
//! `cutoff_factor ≥ 1` forces `R_c ≥ R_T`, no far transmitter can ever be
//! decodable (decoding requires `d ≤ R_T`), so Fast mode can only differ
//! from Exact on a decode whose SINR margin is within that published bound
//! plus floating-point rounding (the near field is summed in cell order,
//! not transmitter order, so totals differ from the scalar scan at ulp
//! scale even when the bound is 0) — the property the crate's tests
//! enforce.

use crate::params::{ResolveMode, SinrParams};
use crate::resolve::{decide, resolve_listener_ext, ListenOutcome};
use mca_geom::{BoundingBox, Point, SpatialGrid};
use rayon::prelude::*;

/// Listener count above which [`ChannelResolver::resolve_into`] may fan
/// out across threads (no-op on single-core hosts; results are identical
/// either way).
const PAR_LISTENERS: usize = 256;

/// Minimum per-batch work volume (listeners × estimated power evaluations
/// per listener, mode-aware) before the fan-out engages: the vendored
/// rayon spawns scoped threads per call (no pool), so the spawn cost
/// (~tens of µs per worker) must be dwarfed by the resolve work.
const PAR_MIN_PAIRS: usize = 4_000_000;

/// Transmitter count below which Fast mode falls back to the exact scan —
/// the grid build would cost more than it saves.
const FAST_MIN_TX: usize = 16;

/// Cells along the longer axis are capped so a very spread-out transmitter
/// set cannot blow up the grid's memory.
const MAX_CELLS_PER_AXIS: f64 = 192.0;

/// One occupied transmitter cell of the Fast-mode index.
struct CellSpan {
    rect: BoundingBox,
    /// Range into [`FastIndex::items`].
    start: u32,
    end: u32,
}

/// Fast-mode spatial index: occupied cells in deterministic (row-major)
/// order, with transmitter indices stored contiguously per cell.
struct FastIndex {
    cells: Vec<CellSpan>,
    items: Vec<u32>,
}

/// Batched reception resolution for one channel's transmitter set.
///
/// Build once per (channel, slot) with [`ChannelResolver::new`], then
/// resolve any number of listeners. The engine holds per-channel scratch
/// buffers and calls [`ChannelResolver::resolve_into`]; ad-hoc callers can
/// use [`resolve_channel`](crate::resolve_channel) or
/// [`ChannelResolver::resolve`].
///
/// # Examples
///
/// ```
/// use mca_sinr::{resolve_listener, ChannelResolver, SinrParams};
/// use mca_geom::Point;
///
/// let params = SinrParams::default();
/// let txs = [Point::new(3.0, 0.0), Point::new(40.0, 40.0)];
/// let resolver = ChannelResolver::new(&params, &txs);
/// let out = resolver.resolve(Point::ORIGIN, 0.0);
/// // Default mode is bit-for-bit the scalar reference.
/// assert_eq!(out, resolve_listener(&params, &txs, Point::ORIGIN));
/// assert_eq!(out.decoded, Some(0));
/// ```
pub struct ChannelResolver<'a> {
    params: &'a SinrParams,
    tx: &'a [Point],
    /// Present only in Fast mode with enough transmitters.
    fast: Option<FastIndex>,
    cutoff_sq: f64,
    /// Estimated power-evaluation count per resolved listener (exact scan:
    /// all transmitters; Fast: occupied cells + expected near field) —
    /// the quantity the listener fan-out threshold is measured in.
    work_per_listener: usize,
}

impl<'a> ChannelResolver<'a> {
    /// Indexes `tx_positions` for batched resolution under
    /// `params.resolve`.
    pub fn new(params: &'a SinrParams, tx_positions: &'a [Point]) -> Self {
        let mut cutoff_sq = f64::INFINITY;
        let mut work_per_listener = tx_positions.len();
        let fast = match params.resolve {
            ResolveMode::Fast { cutoff_factor } if tx_positions.len() >= FAST_MIN_TX => {
                let rt = params.transmission_range();
                let cutoff = cutoff_factor * rt;
                cutoff_sq = cutoff * cutoff;
                let bb = BoundingBox::from_points(tx_positions.iter().copied())
                    .expect("non-empty transmitter set");
                let extent = bb.width().max(bb.height());
                // Adaptive cell side: aim for a handful of transmitters per
                // occupied cell (the aggregation win), never below R_T/4
                // (error control) and never so small the grid outgrows
                // MAX_CELLS_PER_AXIS.
                let occupancy_side = (bb.area() * 4.0 / tx_positions.len() as f64).sqrt();
                let side = (rt / 4.0)
                    .max(occupancy_side)
                    .max(extent / MAX_CELLS_PER_AXIS);
                // Decide *before* building anything whether the grid can
                // pay for itself: a transmitter set whose diagonal fits
                // inside the cutoff has no far field to aggregate, and a
                // grid with as many cells as transmitters saves nothing
                // (per listener, Fast touches every occupied cell). Both
                // checks are O(1) on top of the bbox pass.
                let diag_sq = bb.min().dist_sq(bb.max());
                let ncells =
                    ((bb.width() / side) as usize + 1) * ((bb.height() / side) as usize + 1);
                if diag_sq <= cutoff_sq || ncells * 2 > tx_positions.len() {
                    None
                } else {
                    let grid = SpatialGrid::build(tx_positions, side);
                    // No occupied_cells() pre-pass (it would rescan the
                    // whole grid); occupied cells are bounded by ncells.
                    let mut cells = Vec::new();
                    let mut items = Vec::with_capacity(tx_positions.len());
                    grid.for_each_cell(|cell| {
                        let start = items.len() as u32;
                        items.extend_from_slice(cell.items);
                        cells.push(CellSpan {
                            rect: cell.rect,
                            start,
                            end: items.len() as u32,
                        });
                    });
                    // Per-listener cost on the Fast path: one term per
                    // occupied cell plus the expected near field (average
                    // transmitter density over the cutoff disk).
                    let near_frac =
                        (std::f64::consts::PI * cutoff_sq / bb.area().max(side * side)).min(1.0);
                    work_per_listener =
                        cells.len() + (tx_positions.len() as f64 * near_frac).ceil() as usize;
                    Some(FastIndex { cells, items })
                }
            }
            _ => None,
        };
        ChannelResolver {
            params,
            tx: tx_positions,
            fast,
            cutoff_sq,
            work_per_listener,
        }
    }

    /// Whether this resolver is using the grid-accelerated Fast path —
    /// false for [`ResolveMode::Exact`], and false in Fast mode when the
    /// geometry cannot profit from a grid (too few transmitters, an
    /// all-near world whose diagonal fits inside the cutoff, or cell
    /// counts rivaling the transmitter count), in which case the resolver
    /// transparently runs the exact scan.
    pub fn is_fast(&self) -> bool {
        self.fast.is_some()
    }

    /// Number of transmitters indexed.
    pub fn len(&self) -> usize {
        self.tx.len()
    }

    /// Whether the channel has no transmitters.
    pub fn is_empty(&self) -> bool {
        self.tx.is_empty()
    }

    /// Resolves one listener. `extra_interference` is the per-channel
    /// environmental term (fading, out-of-network traffic), exactly as in
    /// [`crate::resolve_listener_ext`].
    #[inline]
    pub fn resolve(&self, listener: Point, extra_interference: f64) -> ListenOutcome {
        match &self.fast {
            None => resolve_listener_ext(self.params, self.tx, listener, extra_interference),
            Some(index) => {
                self.resolve_fast::<false>(index, listener, extra_interference)
                    .0
            }
        }
    }

    /// Like [`ChannelResolver::resolve`], additionally returning the
    /// rigorous bound on the absolute interference error of this outcome
    /// (always 0 on the exact path). A decode decision can differ from
    /// [`ResolveMode::Exact`] only if moving the interference by the bound
    /// — plus ulp-scale rounding slack from the cell-order near-field sum —
    /// crosses the `β` threshold.
    pub fn resolve_with_bound(
        &self,
        listener: Point,
        extra_interference: f64,
    ) -> (ListenOutcome, f64) {
        match &self.fast {
            None => (
                resolve_listener_ext(self.params, self.tx, listener, extra_interference),
                0.0,
            ),
            Some(index) => self.resolve_fast::<true>(index, listener, extra_interference),
        }
    }

    /// Fast-mode core. `BOUND` selects whether the per-cell error interval
    /// is accumulated (needs two extra rect distances per far cell); the
    /// hot path resolves with `BOUND = false` and reports 0.
    fn resolve_fast<const BOUND: bool>(
        &self,
        index: &FastIndex,
        listener: Point,
        extra_interference: f64,
    ) -> (ListenOutcome, f64) {
        debug_assert!(extra_interference >= 0.0, "interference cannot be negative");
        let params = self.params;
        let mut total = extra_interference;
        let mut best = 0usize;
        let mut best_pow = f64::NEG_INFINITY;
        let mut far_lo = 0.0;
        let mut far_hi = 0.0;
        let mut far_est = 0.0;
        for cell in &index.cells {
            let d_min_sq = cell.rect.dist_sq_to(listener);
            if d_min_sq <= self.cutoff_sq {
                // Near cell: exact per-transmitter summation. Ties on power
                // go to the smallest transmitter index, matching the scalar
                // reference's first-strongest-wins scan.
                for &i in &index.items[cell.start as usize..cell.end as usize] {
                    let p = params.received_power_sq(self.tx[i as usize].dist_sq(listener));
                    total += p;
                    if p > best_pow || (p == best_pow && (i as usize) < best) {
                        best_pow = p;
                        best = i as usize;
                    }
                }
            } else {
                // Far cell: one aggregated term; the true cell power lies in
                // [n·P/d_max^α, n·P/d_min^α] and so does the center estimate.
                let n = f64::from(cell.end - cell.start);
                far_est += n * params.received_power_sq(cell.rect.center().dist_sq(listener));
                if BOUND {
                    far_hi += n * params.received_power_sq(d_min_sq);
                    far_lo += n * params.received_power_sq(cell.rect.max_dist_sq_to(listener));
                }
            }
        }
        total += far_est;
        let bound = (far_hi - far_lo).max(0.0);
        if best_pow == f64::NEG_INFINITY {
            // No near-field candidate. Far transmitters are all beyond
            // R_c ≥ R_T and therefore undecodable, matching Exact's
            // no-decode outcome (carrier sense still reads the estimate).
            return (
                ListenOutcome {
                    decoded: None,
                    signal: 0.0,
                    sinr: 0.0,
                    total_power: total,
                },
                bound,
            );
        }
        (decide(params, best, best_pow, total), bound)
    }

    /// Resolves a batch of listeners into `out` (cleared first), in
    /// listener order. Batches whose work volume dwarfs the thread-spawn
    /// cost are resolved in parallel on multi-core hosts; per-listener
    /// outcomes are independent, so the result is identical to the
    /// sequential loop on any thread count. When the fan-out engages, the
    /// caller's buffer is replaced by the collected one (one allocation,
    /// amortized against `PAR_MIN_PAIRS` (4M) pair resolutions).
    pub fn resolve_into(
        &self,
        listeners: &[Point],
        extra_interference: f64,
        out: &mut Vec<ListenOutcome>,
    ) {
        let work = listeners
            .len()
            .saturating_mul(self.work_per_listener.max(1));
        if listeners.len() >= PAR_LISTENERS
            && work >= PAR_MIN_PAIRS
            && rayon::current_num_threads() > 1
        {
            // The vendored rayon has no collect_into_vec; hand the collected
            // buffer to the caller instead of copying it into `out`.
            *out = listeners
                .par_iter()
                .map(|&l| self.resolve(l, extra_interference))
                .collect();
        } else {
            self.resolve_into_sequential(listeners, extra_interference, out);
        }
    }

    /// [`ChannelResolver::resolve_into`] without the listener fan-out —
    /// for callers that already parallelize at a coarser grain (the
    /// engine's `par_channels` channel groups use this to avoid nested
    /// thread spawning) or that rely on `out`'s buffer being reused.
    pub fn resolve_into_sequential(
        &self,
        listeners: &[Point],
        extra_interference: f64,
        out: &mut Vec<ListenOutcome>,
    ) {
        out.clear();
        out.extend(
            listeners
                .iter()
                .map(|&l| self.resolve(l, extra_interference)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::resolve_listener;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn exact() -> SinrParams {
        SinrParams::default()
    }

    fn fast(cutoff_factor: f64) -> SinrParams {
        SinrParams::default().with_resolve(ResolveMode::Fast { cutoff_factor })
    }

    fn random_world(seed: u64, n_tx: usize, side: f64) -> (Vec<Point>, Vec<Point>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pt = |side: f64| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        let txs = (0..n_tx).map(|_| pt(side)).collect();
        let mut rng2 = SmallRng::seed_from_u64(seed ^ 0xABCD);
        let listeners = (0..50)
            .map(|_| {
                Point::new(
                    rng2.gen_range(-5.0..side + 5.0),
                    rng2.gen_range(-5.0..side + 5.0),
                )
            })
            .collect();
        (txs, listeners)
    }

    #[test]
    fn exact_mode_never_builds_grid_and_fast_does() {
        let (txs, _) = random_world(1, 100, 60.0);
        let pe = exact();
        let pf = fast(1.0);
        assert!(!ChannelResolver::new(&pe, &txs).is_fast());
        let rf = ChannelResolver::new(&pf, &txs);
        assert!(rf.is_fast());
        assert_eq!(rf.len(), 100);
        assert!(!rf.is_empty());
        // Tiny transmitter sets fall back to the exact scan.
        assert!(!ChannelResolver::new(&pf, &txs[..4]).is_fast());
    }

    #[test]
    fn exact_batch_is_bitwise_scalar_on_large_worlds() {
        for seed in 0..4u64 {
            let (txs, listeners) = random_world(seed, 400, 50.0);
            let params = exact();
            let resolver = ChannelResolver::new(&params, &txs);
            let mut out = Vec::new();
            resolver.resolve_into(&listeners, 0.3, &mut out);
            for (i, &l) in listeners.iter().enumerate() {
                assert_eq!(out[i], resolve_listener_ext(&params, &txs, l, 0.3));
            }
        }
    }

    #[test]
    fn empty_and_extra_interference_edge_cases() {
        let params = exact();
        let resolver = ChannelResolver::new(&params, &[]);
        assert!(resolver.is_empty());
        assert_eq!(resolver.resolve(Point::ORIGIN, 0.0), ListenOutcome::SILENT);
        assert_eq!(resolver.resolve(Point::ORIGIN, 2.0).total_power, 2.0);
        let (out, bound) = resolver.resolve_with_bound(Point::ORIGIN, 0.0);
        assert_eq!(out, ListenOutcome::SILENT);
        assert_eq!(bound, 0.0);
    }

    #[test]
    fn fast_falls_back_to_exact_on_all_near_worlds() {
        // A world whose diagonal fits inside the cutoff has no far field to
        // aggregate: Fast must skip the grid entirely and be bit-for-bit
        // the exact scan.
        let (txs, listeners) = random_world(7, 60, 6.0);
        let pe = exact();
        let pf = fast(2.0);
        let re = ChannelResolver::new(&pe, &txs);
        let rf = ChannelResolver::new(&pf, &txs);
        assert!(
            !rf.is_fast(),
            "no grid should be built for an all-near world"
        );
        for &l in &listeners {
            let (out_f, bound) = rf.resolve_with_bound(l, 0.0);
            assert_eq!(bound, 0.0);
            assert_eq!(out_f, re.resolve(l, 0.0));
        }
    }

    #[test]
    fn fast_grid_engages_and_rarely_disagrees_on_dense_worlds() {
        let (txs, listeners) = random_world(5, 400, 60.0);
        let pe = exact();
        let pf = fast(1.5);
        let re = ChannelResolver::new(&pe, &txs);
        let rf = ChannelResolver::new(&pf, &txs);
        assert!(rf.is_fast(), "a dense spread-out world must use the grid");
        let mut flips = 0usize;
        for &l in &listeners {
            let out_f = rf.resolve(l, 0.0);
            let out_e = re.resolve(l, 0.0);
            if out_f.decoded == out_e.decoded {
                if out_f.decoded.is_some() {
                    assert_eq!(out_f.signal, out_e.signal, "same decoded power term");
                }
            } else {
                flips += 1;
            }
        }
        assert!(
            flips * 10 <= listeners.len(),
            "far-field aggregation flipped {flips}/{} decisions",
            listeners.len()
        );
    }

    #[test]
    fn fast_bound_shrinks_with_cutoff() {
        let (txs, listeners) = random_world(3, 500, 200.0);
        let tight = fast(1.0);
        let wide = fast(3.0);
        let rt = ChannelResolver::new(&tight, &txs);
        let rw = ChannelResolver::new(&wide, &txs);
        let mut sum_tight = 0.0;
        let mut sum_wide = 0.0;
        for &l in &listeners {
            sum_tight += rt.resolve_with_bound(l, 0.0).1;
            sum_wide += rw.resolve_with_bound(l, 0.0).1;
        }
        assert!(
            sum_wide < sum_tight,
            "wider cutoff must tighten the far-field bound: {sum_wide} vs {sum_tight}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        /// Tentpole property: batched Exact resolution is outcome-for-outcome
        /// (bitwise) the scalar reference, for any placement and extra
        /// interference.
        #[test]
        fn exact_equals_scalar_bitwise(
            raw in proptest::collection::vec((-30.0..30.0f64, -30.0..30.0f64), 0..60),
            lx in -30.0..30.0f64,
            ly in -30.0..30.0f64,
            extra in 0.0..5.0f64,
        ) {
            let params = exact();
            let txs: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let l = Point::new(lx, ly);
            let resolver = ChannelResolver::new(&params, &txs);
            prop_assert_eq!(
                resolver.resolve(l, extra),
                resolve_listener_ext(&params, &txs, l, extra)
            );
        }

        /// Fast mode never flips a decode whose SINR margin exceeds the
        /// published per-listener error bound.
        #[test]
        fn fast_flips_only_within_bound(
            raw in proptest::collection::vec((0.0..120.0f64, 0.0..120.0f64), 16..80),
            lx in 0.0..120.0f64,
            ly in 0.0..120.0f64,
            cutoff in 1.0..2.5f64,
        ) {
            let params = fast(cutoff);
            let txs: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let l = Point::new(lx, ly);
            let resolver = ChannelResolver::new(&params, &txs);
            let (fast_out, bound) = resolver.resolve_with_bound(l, 0.0);
            let scalar = resolve_listener(&params, &txs, l);
            if fast_out.decoded == scalar.decoded {
                // Same decision; if decoded, it is the same transmitter and
                // the numeric fields differ by at most the bound's effect.
                if fast_out.decoded.is_some() {
                    prop_assert_eq!(fast_out.signal, scalar.signal);
                    prop_assert!(
                        (fast_out.total_power - scalar.total_power).abs()
                            <= bound + 1e-9 * scalar.total_power.max(1.0)
                    );
                }
            } else {
                // Decisions differ: the scalar margin must be within the
                // bound — neither robustly decodable nor robustly not.
                let (sig, interference) = strongest_and_interference(&params, &txs, l);
                // Ulp-scale slack: the near field is summed in cell order,
                // so totals differ from the scalar scan by rounding even when
                // the interval bound is 0.
                let slack = bound + 1e-9 * (params.noise + interference);
                let robust_yes = params.decodes(sig, interference + slack);
                let robust_no = !params.decodes(sig, (interference - slack).max(0.0));
                prop_assert!(
                    !robust_yes && !robust_no,
                    "flip outside bound {}: sig {} interference {} (fast {:?} vs scalar {:?})",
                    bound, sig, interference, fast_out.decoded, scalar.decoded
                );
            }
        }
    }

    /// The true strongest signal and the exact residual interference at `l`
    /// (ground truth for the margin check above).
    fn strongest_and_interference(params: &SinrParams, txs: &[Point], l: Point) -> (f64, f64) {
        let mut total = 0.0;
        let mut best = f64::NEG_INFINITY;
        for &t in txs {
            let p = params.received_power_sq(t.dist_sq(l));
            total += p;
            if p > best {
                best = p;
            }
        }
        (best, total - best)
    }
}
