//! Analytic bounds from the paper's Lemmas 2 and 3.
//!
//! These closed forms are used two ways: (i) by the experiment harness
//! (experiment E11) to compare simulated reception probabilities against the
//! paper's guarantees, and (ii) by tests as ground truth for the interference
//! engine.

use crate::params::SinrParams;

/// Lemma 2: the largest guaranteed-reception radius `r₂` for a set of
/// transmitters that is `r₁`-independent:
/// `r₂ ≤ min{ ((α−2)/(48β(α−1)))^{1/α} · r₁,  R_T/2 }`.
///
/// Every listener within `r₂` of a transmitter in such a set decodes it.
pub fn lemma2_max_r2(params: &SinrParams, r1: f64) -> f64 {
    assert!(r1 > 0.0, "r1 must be positive");
    (params.lemma2_t() * r1).min(params.transmission_range() / 2.0)
}

/// The annulus ("concentric circles") interference bound used in Lemma 2's
/// proof: for transmitters mutually separated by `r₁`, the interference at
/// any point within `r₂` of one of them from all *other* transmitters is at
/// most `24 · r₁^{−α} · N·β·R_T^α · (α−1)/(α−2)`.
pub fn lemma2_interference_bound(params: &SinrParams, r1: f64) -> f64 {
    assert!(r1 > 0.0, "r1 must be positive");
    let rt = params.transmission_range();
    24.0 * r1.powf(-params.alpha)
        * params.noise
        * params.beta
        * rt.powf(params.alpha)
        * (params.alpha - 1.0)
        / (params.alpha - 2.0)
}

/// A *witness* for Lemma 2's area argument: the maximum number of points of
/// an `r₁`-separated set that fit in the annulus `[t·r₁, (t+1)·r₁)` around a
/// center is at most `8(2t + 1)`.
pub fn lemma2_annulus_capacity(t: u32) -> u32 {
    8 * (2 * t + 1)
}

/// Lemma 3's success-probability form `κ = exp(−c · (R_T/R)² · ψ)`:
/// whenever a node transmits among neighbors whose transmission
/// probabilities sum to at most `ψ` per `R`-ball, all of its `R`-neighbors
/// hear it with probability at least `κ`.
///
/// The paper leaves the constant `c` implicit; `kappa_constant` makes it a
/// parameter so experiments can fit it. [`kappa_default`] provides the value
/// we validated against simulation (experiment E11); it is deliberately
/// conservative.
pub fn kappa(params: &SinrParams, r: f64, psi: f64, c: f64) -> f64 {
    assert!(r > 0.0 && psi >= 0.0 && c > 0.0);
    let ratio = params.transmission_range() / r;
    (-c * ratio * ratio * psi).exp()
}

/// Conservative default constant for [`kappa`], fit against simulation
/// (see experiment E11 in `EXPERIMENTS.md`).
pub const KAPPA_CONSTANT: f64 = 3.0;

/// [`kappa`] with [`KAPPA_CONSTANT`].
pub fn kappa_default(params: &SinrParams, r: f64, psi: f64) -> f64 {
    kappa(params, r, psi, KAPPA_CONSTANT)
}

/// Exact worst-case interference for the concentric-annulus configuration:
/// places the maximum admissible number of transmitters (`8(2t+1)`) at the
/// inner edge (`t·r₁`) of each annulus for `t = 1..t_max` and sums their
/// power at the center. Used in tests to confirm the closed form
/// [`lemma2_interference_bound`] really is an upper bound.
pub fn annulus_worst_case_interference(params: &SinrParams, r1: f64, t_max: u32) -> f64 {
    (1..=t_max)
        .map(|t| {
            let count = lemma2_annulus_capacity(t) as f64;
            count * params.power / (t as f64 * r1).powf(params.alpha)
        })
        .sum()
}

/// Far-field truncation tail: for a placement of *uniform* transmitter
/// density `density` (per unit area), the total interference arriving from
/// beyond radius `r_c` scales as the continuum integral
/// `∫_{r_c}^∞ 2πλr · P r^{−α} dr = 2πλP/(α−2) · r_c^{2−α}`.
///
/// Finite precisely because the model assumes `α > 2` (Eq. 1) — the same
/// convergent-tail reasoning behind Definition 4 and Lemma 2. This is a
/// *design estimate* for choosing the Fast-mode cutoff in
/// [`crate::ChannelResolver`], not a per-placement guarantee: a placement
/// that concentrates its transmitters just beyond `r_c` can exceed it.
/// The rigorous per-placement quantity is the per-listener interval bound
/// the resolver itself reports
/// ([`ChannelResolver::resolve_with_bound`](crate::ChannelResolver::resolve_with_bound)).
pub fn far_field_tail(params: &SinrParams, r_c: f64, density: f64) -> f64 {
    assert!(r_c > 0.0, "cutoff radius must be positive");
    assert!(density >= 0.0, "density cannot be negative");
    2.0 * std::f64::consts::PI * density * params.power / (params.alpha - 2.0)
        * r_c.powf(2.0 - params.alpha)
}

/// First-order estimate of the cell-aggregation error of Fast-mode far
/// fields: approximating each transmitter beyond `r_c` by its cell center
/// (cell side `cell`, half-diagonal `δ = c·√2/2`) perturbs each power term
/// by at most `αPδ·d^{−α−1}` to first order, and integrating over density
/// `density` beyond `r_c` gives `2πλαPδ/(α−1) · r_c^{1−α}` — one power of
/// `r_c` smaller than the full tail of [`far_field_tail`].
pub fn far_cell_error(params: &SinrParams, r_c: f64, cell: f64, density: f64) -> f64 {
    assert!(r_c > 0.0, "cutoff radius must be positive");
    assert!(cell > 0.0, "cell side must be positive");
    assert!(density >= 0.0, "density cannot be negative");
    let delta = cell * std::f64::consts::SQRT_2 / 2.0;
    2.0 * std::f64::consts::PI * density * params.alpha * params.power * delta
        / (params.alpha - 1.0)
        * r_c.powf(1.0 - params.alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> SinrParams {
        SinrParams::default()
    }

    #[test]
    fn r2_bound_is_positive_and_capped() {
        let params = p();
        let small = lemma2_max_r2(&params, 0.1);
        assert!(small > 0.0 && small < 0.1);
        // Huge separation: cap at R_T / 2.
        let big = lemma2_max_r2(&params, 1e6);
        assert!((big - params.transmission_range() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn r2_scales_linearly_below_cap() {
        let params = p();
        let a = lemma2_max_r2(&params, 1.0);
        let b = lemma2_max_r2(&params, 2.0);
        assert!((b - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    fn closed_form_dominates_worst_case_sum() {
        // The paper's bound must dominate the explicit annulus construction.
        let params = p();
        for r1 in [0.5, 1.0, 4.0, 16.0] {
            let exact = annulus_worst_case_interference(&params, r1, 10_000);
            let bound = lemma2_interference_bound(&params, r1);
            assert!(
                exact <= bound * (1.0 + 1e-9),
                "r1={r1}: exact {exact} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn lemma2_guarantee_holds_numerically() {
        // If transmitters are r1-separated and r2 obeys the lemma, then the
        // SINR at distance r2 under the worst-case annulus interference
        // clears beta. This is the lemma's actual content.
        let params = p();
        let r1 = 2.0;
        let r2 = lemma2_max_r2(&params, r1);
        let interference = lemma2_interference_bound(&params, r1);
        let signal = params.received_power(r2);
        assert!(
            params.decodes(signal, interference),
            "SINR {} below beta {}",
            params.sinr(signal, interference),
            params.beta
        );
    }

    #[test]
    fn annulus_capacity_formula() {
        assert_eq!(lemma2_annulus_capacity(1), 24);
        assert_eq!(lemma2_annulus_capacity(2), 40);
        assert_eq!(lemma2_annulus_capacity(10), 168);
    }

    #[test]
    fn kappa_behaviour() {
        let params = p();
        let r = params.transmission_range() / 2.0;
        // Zero contention: success certain.
        assert!((kappa_default(&params, r, 0.0) - 1.0).abs() < 1e-12);
        // Monotone decreasing in psi.
        let k1 = kappa_default(&params, r, 0.25);
        let k2 = kappa_default(&params, r, 0.5);
        assert!(k1 > k2 && k2 > 0.0);
        // Monotone increasing in r (smaller ratio).
        let k_small_r = kappa_default(&params, r / 2.0, 0.5);
        assert!(k2 > k_small_r);
    }

    #[test]
    #[should_panic(expected = "r1 must be positive")]
    fn zero_r1_rejected() {
        lemma2_max_r2(&p(), 0.0);
    }

    #[test]
    fn far_tail_dominates_a_uniform_ring_sum() {
        // Place transmitters on a dense lattice beyond r_c and check the
        // closed-form tail upper-bounds the explicit sum at the origin.
        let params = p();
        let r_c = 2.0 * params.transmission_range();
        let step = 1.0;
        let density = 1.0 / (step * step);
        let mut exact = 0.0;
        let half = 400;
        for ix in -half..=half {
            for iy in -half..=half {
                let x = ix as f64 * step + step / 2.0;
                let y = iy as f64 * step + step / 2.0;
                let d_sq = x * x + y * y;
                if d_sq >= r_c * r_c {
                    exact += params.received_power_sq(d_sq);
                }
            }
        }
        let bound = far_field_tail(&params, r_c, density);
        assert!(
            exact <= bound * 1.2,
            "lattice tail {exact} exceeds analytic tail {bound}"
        );
        assert!(exact > bound * 0.2, "tail bound should be the right scale");
    }

    #[test]
    fn far_bounds_scale_as_derived() {
        let params = p();
        // Tail falls as r_c^{2-α} (α=3 → 1/r_c); cell error as r_c^{1-α}.
        let t1 = far_field_tail(&params, 10.0, 0.5);
        let t2 = far_field_tail(&params, 20.0, 0.5);
        assert!((t1 / t2 - 2.0).abs() < 1e-9);
        let e1 = far_cell_error(&params, 10.0, 2.0, 0.5);
        let e2 = far_cell_error(&params, 20.0, 2.0, 0.5);
        assert!((e1 / e2 - 4.0).abs() < 1e-9);
        // Cell error is linear in the cell side.
        let e_half = far_cell_error(&params, 10.0, 1.0, 0.5);
        assert!((e1 / e_half - 2.0).abs() < 1e-9);
    }
}
