//! Per-slot, per-channel reception resolution.
//!
//! Given the set of transmitters on a channel and a listener, decide what
//! the listener decodes (Eq. 1) and what its carrier-sense hardware reports
//! (total received power; SINR and signal strength on success). Since
//! `β ≥ 1`, at most one transmitter can decode per listener per slot — the
//! strongest-signal candidate is the only one that can pass the threshold.

use crate::params::SinrParams;
use mca_geom::Point;

/// What one listener experienced in one slot on one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ListenOutcome {
    /// Index (into the transmitter slice passed to the resolver) of the
    /// decoded transmitter, if any.
    pub decoded: Option<usize>,
    /// Received power of the decoded signal (0 if none decoded).
    pub signal: f64,
    /// SINR of the decoded signal (0 if none decoded).
    pub sinr: f64,
    /// Total received power summed over *all* transmitters on the channel
    /// (excluding ambient noise) — the carrier-sense reading.
    pub total_power: f64,
}

impl ListenOutcome {
    /// Outcome of a slot with no transmitter on the channel.
    pub const SILENT: ListenOutcome = ListenOutcome {
        decoded: None,
        signal: 0.0,
        sinr: 0.0,
        total_power: 0.0,
    };

    /// Interference sensed alongside the decoded signal: total power minus
    /// the decoded signal (the quantity Definition 4 compares against `T_s`).
    /// Equals `total_power` when nothing decoded.
    pub fn sensed_interference(&self) -> f64 {
        (self.total_power - self.signal).max(0.0)
    }
}

/// Resolves one listener against the transmitters on its channel.
///
/// `tx_positions` are the positions of the transmitters currently on the
/// channel; `listener` is the listener's position. The listener must not be
/// transmitting (half-duplex — enforced by the engine).
pub fn resolve_listener(
    params: &SinrParams,
    tx_positions: &[Point],
    listener: Point,
) -> ListenOutcome {
    resolve_listener_ext(params, tx_positions, listener, 0.0)
}

/// [`resolve_listener`] with an additional per-channel interference term.
///
/// `extra_interference` models power on the channel that comes from outside
/// the simulated transmitter set — a faded (Gilbert–Elliot *bad*-state)
/// channel, co-channel traffic from a neighboring network, or a jammer whose
/// energy the listener's carrier sense should see. It is added to both the
/// SINR denominator and `total_power`, so carrier-sensing protocols observe
/// the degraded channel instead of mistaking it for silence.
pub fn resolve_listener_ext(
    params: &SinrParams,
    tx_positions: &[Point],
    listener: Point,
    extra_interference: f64,
) -> ListenOutcome {
    debug_assert!(extra_interference >= 0.0, "interference cannot be negative");
    if tx_positions.is_empty() {
        if extra_interference <= 0.0 {
            return ListenOutcome::SILENT;
        }
        return ListenOutcome {
            decoded: None,
            signal: 0.0,
            sinr: 0.0,
            total_power: extra_interference,
        };
    }
    let mut total = extra_interference;
    let mut best = 0usize;
    let mut best_pow = f64::NEG_INFINITY;
    for (i, &t) in tx_positions.iter().enumerate() {
        let p = params.received_power_sq(t.dist_sq(listener));
        total += p;
        if p > best_pow {
            best_pow = p;
            best = i;
        }
    }
    decide(params, best, best_pow, total)
}

/// Applies the Eq. 1 threshold to a scanned candidate: `best`/`best_pow` is
/// the strongest transmitter (earliest index on power ties) and `total` the
/// carrier-sense sum *including* the candidate. Shared by the scalar
/// reference above and the batched `ChannelResolver`, so both produce
/// identical outcomes from identical scans.
#[inline]
pub(crate) fn decide(params: &SinrParams, best: usize, best_pow: f64, total: f64) -> ListenOutcome {
    let interference = total - best_pow;
    let sinr = params.sinr(best_pow, interference);
    if sinr >= params.beta {
        ListenOutcome {
            decoded: Some(best),
            signal: best_pow,
            sinr,
            total_power: total,
        }
    } else {
        ListenOutcome {
            decoded: None,
            signal: 0.0,
            sinr: 0.0,
            total_power: total,
        }
    }
}

/// Batch resolution of many listeners against the same transmitter set.
///
/// Routed through [`ChannelResolver`](crate::ChannelResolver), the single
/// batched resolution code path (the engine uses the same resolver): with
/// the default [`ResolveMode::Exact`](crate::ResolveMode::Exact) the result
/// is bit-for-bit what per-listener [`resolve_listener`] calls produce.
pub fn resolve_channel(
    params: &SinrParams,
    tx_positions: &[Point],
    listeners: &[Point],
) -> Vec<ListenOutcome> {
    let resolver = crate::ChannelResolver::new(params, tx_positions);
    let mut out = Vec::with_capacity(listeners.len());
    resolver.resolve_into(listeners, 0.0, &mut out);
    out
}

/// Whether `outcome` is a *clear reception* for radius `r` (Definition 4):
/// the decoded sender is within `r` (judged by signal strength, i.e. the
/// RSSI distance estimate) and the sensed interference is at most the
/// radius-dependent threshold `T_s(r)`
/// (see [`SinrParams::clear_threshold_for`]).
pub fn is_clear_reception(params: &SinrParams, outcome: &ListenOutcome, r: f64) -> bool {
    match outcome.decoded {
        None => false,
        Some(_) => {
            outcome.signal >= params.received_power(r)
                && outcome.sensed_interference() <= params.clear_threshold_for(r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p() -> SinrParams {
        SinrParams::default() // R_T = 8
    }

    #[test]
    fn silence_when_no_transmitters() {
        let out = resolve_listener(&p(), &[], Point::ORIGIN);
        assert_eq!(out, ListenOutcome::SILENT);
        assert_eq!(out.sensed_interference(), 0.0);
    }

    #[test]
    fn lone_transmitter_in_range_decodes() {
        let params = p();
        let out = resolve_listener(&params, &[Point::new(3.0, 0.0)], Point::ORIGIN);
        assert_eq!(out.decoded, Some(0));
        assert!(out.sinr >= params.beta);
        assert!((out.signal - params.received_power(3.0)).abs() < 1e-12);
        assert!((out.total_power - out.signal).abs() < 1e-12);
    }

    #[test]
    fn lone_transmitter_out_of_range_fails() {
        let params = p();
        let out = resolve_listener(&params, &[Point::new(9.0, 0.0)], Point::ORIGIN);
        assert_eq!(out.decoded, None);
        assert!(out.total_power > 0.0, "carrier sense still reads power");
    }

    #[test]
    fn extra_interference_degrades_and_is_sensed() {
        let params = p();
        // Marginal link at distance 6 of R_T = 8: decodes when clean.
        let sender = [Point::new(6.0, 0.0)];
        let clean = resolve_listener_ext(&params, &sender, Point::ORIGIN, 0.0);
        assert_eq!(clean.decoded, Some(0));
        assert_eq!(clean, resolve_listener(&params, &sender, Point::ORIGIN));
        // Strong extra interference kills the decode but shows up in
        // carrier sense.
        let faded = resolve_listener_ext(&params, &sender, Point::ORIGIN, 1000.0);
        assert_eq!(faded.decoded, None);
        assert!(faded.total_power > clean.total_power);
        // An empty channel with extra interference reads busy, not silent.
        let busy = resolve_listener_ext(&params, &[], Point::ORIGIN, 2.5);
        assert_eq!(busy.decoded, None);
        assert_eq!(busy.total_power, 2.5);
        assert_eq!(
            resolve_listener_ext(&params, &[], Point::ORIGIN, 0.0),
            ListenOutcome::SILENT
        );
    }

    #[test]
    fn symmetric_colliders_jam_each_other() {
        // Two equally strong transmitters: SINR = sig/(N + sig) < 1 <= beta.
        let params = p();
        let txs = [Point::new(-2.0, 0.0), Point::new(2.0, 0.0)];
        let out = resolve_listener(&params, &txs, Point::ORIGIN);
        assert_eq!(out.decoded, None);
    }

    #[test]
    fn capture_effect_near_transmitter_wins() {
        // A very close transmitter is decoded despite a distant concurrent one.
        let params = p();
        let txs = [Point::new(0.5, 0.0), Point::new(7.9, 0.0)];
        let out = resolve_listener(&params, &txs, Point::ORIGIN);
        assert_eq!(out.decoded, Some(0));
        // And the far transmitter is *not* decodable at a midpoint-ish
        // listener that hears the near one loudly.
        let out2 = resolve_listener(&params, &txs, Point::new(6.0, 0.0));
        // near tx at distance 5.5, far tx at distance 1.9: far one wins there
        assert_eq!(out2.decoded, Some(1));
    }

    #[test]
    fn total_power_counts_everyone() {
        let params = p();
        let txs = [
            Point::new(1.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(-3.0, 0.0),
        ];
        let out = resolve_listener(&params, &txs, Point::ORIGIN);
        let expect: f64 = [1.0, 2.0, 3.0]
            .iter()
            .map(|&d| params.received_power(d))
            .sum();
        assert!((out.total_power - expect).abs() < 1e-9);
    }

    #[test]
    fn batch_matches_single() {
        let params = p();
        let txs = [Point::new(1.0, 1.0), Point::new(4.0, 4.0)];
        let listeners = [Point::ORIGIN, Point::new(5.0, 5.0), Point::new(100.0, 0.0)];
        let batch = resolve_channel(&params, &txs, &listeners);
        for (i, &l) in listeners.iter().enumerate() {
            assert_eq!(batch[i], resolve_listener(&params, &txs, l));
        }
    }

    #[test]
    fn clear_reception_requires_proximity_and_quiet() {
        let params = p();
        let r = 1.0;
        // Close sender, no interference: clear.
        let close = resolve_listener(&params, &[Point::new(0.8, 0.0)], Point::ORIGIN);
        assert!(is_clear_reception(&params, &close, r));
        // Decodable but beyond r: not clear.
        let far = resolve_listener(&params, &[Point::new(2.0, 0.0)], Point::ORIGIN);
        assert_eq!(far.decoded, Some(0));
        assert!(!is_clear_reception(&params, &far, r));
        // Close sender but a loud 4r-neighborhood interferer: not clear.
        let jammed = resolve_listener(
            &params,
            &[Point::new(0.8, 0.0), Point::new(0.0, 3.0)],
            Point::ORIGIN,
        );
        if jammed.decoded.is_some() {
            assert!(!is_clear_reception(&params, &jammed, r));
        }
        // Silence is never a clear reception.
        assert!(!is_clear_reception(&params, &ListenOutcome::SILENT, r));
    }

    #[test]
    fn clear_reception_threshold_excludes_4r_neighbors() {
        // Definition 4's claim: interference <= T_s implies no transmitter
        // within 4r. Verify the contrapositive numerically: a single
        // transmitter at distance exactly 4r produces interference > T_s.
        let params = p();
        let r = params.transmission_range() / 8.0;
        let interferer_power = params.received_power(4.0 * r);
        assert!(
            interferer_power > params.clear_threshold(),
            "a 4r-neighbor must be detectable: {} vs {}",
            interferer_power,
            params.clear_threshold()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn at_most_one_decode_and_it_is_strongest(
            raw in proptest::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 1..12),
            lx in -20.0..20.0f64,
            ly in -20.0..20.0f64,
        ) {
            let params = p();
            let txs: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let l = Point::new(lx, ly);
            let out = resolve_listener(&params, &txs, l);
            if let Some(i) = out.decoded {
                // Decoded transmitter has the (weakly) strongest signal.
                let pi = params.received_power(txs[i].dist(l));
                for t in &txs {
                    prop_assert!(params.received_power(t.dist(l)) <= pi + 1e-12);
                }
                // And its SINR clears the threshold.
                prop_assert!(out.sinr >= params.beta);
            }
            // Total power is the sum of individual powers.
            let sum: f64 = txs.iter().map(|t| params.received_power(t.dist(l))).sum();
            prop_assert!((out.total_power - sum).abs() < 1e-6 * (1.0 + sum));
        }

        #[test]
        fn adding_interferer_never_creates_decode(
            d in 0.5..7.5f64,
            ix in -20.0..20.0f64,
            iy in -20.0..20.0f64,
        ) {
            let params = p();
            let sender = Point::new(d, 0.0);
            let jam = Point::new(ix, iy);
            let alone = resolve_listener(&params, &[sender], Point::ORIGIN);
            let jammed = resolve_listener(&params, &[sender, jam], Point::ORIGIN);
            // If the pair decodes the original sender, it surely decoded alone.
            if jammed.decoded == Some(0) {
                prop_assert_eq!(alone.decoded, Some(0));
                prop_assert!(jammed.sinr <= alone.sinr + 1e-9);
            }
        }
    }
}
