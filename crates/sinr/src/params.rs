//! SINR model parameters and the paper's derived radii and thresholds.
//!
//! The physical model (paper §2, Eq. 1): a transmission from `u` is decoded
//! at `v` iff `SINR(u,v) = (P/d(u,v)^α) / (N + Σ_w P/d(w,v)^α) ≥ β`, with
//! path-loss exponent `α > 2`, ambient noise `N`, threshold `β ≥ 1`, and
//! uniform transmit power `P`.
//!
//! Everything the algorithms need is derived here:
//! * transmission range `R_T = (P/(βN))^{1/α}`;
//! * graph radius `R_ε = (1 − ε)·R_T` and generally `R_c = (1 − c)·R_T`;
//! * Lemma 2 separation constant `t = ((α−2)/(48β(α−1)))^{1/α}`;
//! * cluster radius `r_c = min{ t/(2t+2) · R_{ε/2}, ε·R_T/4 }` (§5.1.1);
//! * clear-reception interference threshold
//!   `T_s = N · min{(2^α − 1)/2^α, (1/2)^α · β}` (Definition 4).

use std::fmt;

/// How per-channel reception is resolved by the batched resolver
/// (`ChannelResolver`) and everything routed through it.
///
/// * [`ResolveMode::Exact`] (the default) computes every
///   transmitter–listener power term and sums in transmitter order — the
///   outcome is bit-for-bit identical to the scalar reference
///   `resolve_listener`, so enabling the batched path cannot change any
///   simulation result.
/// * [`ResolveMode::Fast`] sums the near field (every transmitter within
///   the cutoff radius `R_c = cutoff_factor · R_T`) exactly and aggregates
///   the far field at grid-cell granularity: one distance computation per
///   occupied cell instead of one per transmitter. The approximation is
///   error-bounded — the resolver reports, per listener, a rigorous bound
///   on the interference error (see `ChannelResolver::resolve_with_bound`),
///   and a decode decision can only differ from `Exact` when the SINR
///   margin is smaller than that bound. The bound is finite because the
///   path-loss exponent satisfies `α > 2` (Eq. 1), which makes the
///   far-field tail integral converge; see `mca_sinr::resolve_batch`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ResolveMode {
    /// Exact summation, bitwise-identical to the scalar reference.
    #[default]
    Exact,
    /// Grid-batched near/far split with an error-bounded far field.
    Fast {
        /// Near-field cutoff radius as a multiple of the transmission
        /// range `R_T`. Must be at least 1 so every decodable transmitter
        /// (necessarily within `R_T` of its listener) is resolved exactly.
        cutoff_factor: f64,
    },
}

impl ResolveMode {
    /// The [`ResolveMode::Fast`] mode with a default cutoff of `1.5·R_T`.
    pub fn fast() -> Self {
        ResolveMode::Fast { cutoff_factor: 1.5 }
    }
}

/// Ground-truth physical parameters used by the simulation engine.
///
/// # Examples
///
/// ```
/// use mca_sinr::SinrParams;
/// let p = SinrParams::default();
/// assert!(p.transmission_range() > 0.0);
/// assert!(p.r_cluster() < p.r_eps());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinrParams {
    /// Path-loss exponent `α > 2`.
    pub alpha: f64,
    /// SINR decoding threshold `β ≥ 1`.
    pub beta: f64,
    /// Ambient noise `N > 0`.
    pub noise: f64,
    /// Uniform transmission power `P > 0`.
    pub power: f64,
    /// Communication-graph margin `ε ∈ (0, 1)`: graph edges span `R_ε`.
    pub eps: f64,
    /// Near-field clamp: received power saturates below this distance
    /// (prevents singularities when two nodes are (nearly) co-located).
    pub min_dist: f64,
    /// How the engine resolves per-channel reception (see [`ResolveMode`]).
    pub resolve: ResolveMode,
}

impl Default for SinrParams {
    /// `α = 3`, `β = 1.5`, `N = 1`, `ε = 0.5`, and `P` chosen so that
    /// `R_T = 8` distance units.
    fn default() -> Self {
        SinrParams::with_range(3.0, 1.5, 1.0, 8.0, 0.5)
    }
}

impl SinrParams {
    /// Creates parameters from explicit values.
    ///
    /// # Panics
    ///
    /// Panics unless `α > 2`, `β ≥ 1`, `N > 0`, `P > 0`, `0 < ε < 1`.
    pub fn new(alpha: f64, beta: f64, noise: f64, power: f64, eps: f64) -> Self {
        let p = SinrParams {
            alpha,
            beta,
            noise,
            power,
            eps,
            min_dist: 1e-6,
            resolve: ResolveMode::Exact,
        };
        p.validate();
        p
    }

    /// Returns a copy with the given [`ResolveMode`] (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if a [`ResolveMode::Fast`] cutoff factor is not finite or is
    /// below 1.
    pub fn with_resolve(mut self, resolve: ResolveMode) -> Self {
        self.resolve = resolve;
        self.validate();
        self
    }

    /// Creates parameters with `P` back-solved so the transmission range is
    /// exactly `range`: `P = β·N·range^α`.
    pub fn with_range(alpha: f64, beta: f64, noise: f64, range: f64, eps: f64) -> Self {
        assert!(range > 0.0, "range must be positive");
        SinrParams::new(alpha, beta, noise, beta * noise * range.powf(alpha), eps)
    }

    fn validate(&self) {
        assert!(self.alpha > 2.0, "alpha must exceed 2, got {}", self.alpha);
        assert!(
            self.beta >= 1.0,
            "beta must be at least 1, got {}",
            self.beta
        );
        assert!(self.noise > 0.0, "noise must be positive");
        assert!(self.power > 0.0, "power must be positive");
        assert!(
            self.eps > 0.0 && self.eps < 1.0,
            "eps must lie in (0,1), got {}",
            self.eps
        );
        if let ResolveMode::Fast { cutoff_factor } = self.resolve {
            assert!(
                cutoff_factor.is_finite() && cutoff_factor >= 1.0,
                "Fast cutoff_factor must be finite and at least 1, got {cutoff_factor}"
            );
        }
    }

    /// Transmission range `R_T = (P/(β·N))^{1/α}` — the maximum distance at
    /// which a transmission can be decoded in the absence of interference.
    pub fn transmission_range(&self) -> f64 {
        (self.power / (self.beta * self.noise)).powf(1.0 / self.alpha)
    }

    /// `R_c = (1 − c)·R_T` for `0 < c < 1` (paper notation `R_c`).
    pub fn r_scaled(&self, c: f64) -> f64 {
        assert!((0.0..1.0).contains(&c), "c must lie in [0,1), got {c}");
        (1.0 - c) * self.transmission_range()
    }

    /// Communication-graph radius `R_ε = (1 − ε)·R_T`.
    pub fn r_eps(&self) -> f64 {
        self.r_scaled(self.eps)
    }

    /// `R_{ε/2} = (1 − ε/2)·R_T`, the cluster-coloring separation radius.
    pub fn r_eps_half(&self) -> f64 {
        self.r_scaled(self.eps / 2.0)
    }

    /// Lemma 2 constant `t = ((α−2) / (48·β·(α−1)))^{1/α}`: transmitters
    /// mutually separated by `r₁` are decoded by all listeners within
    /// `t·r₁` (capped at `R_T/2`).
    pub fn lemma2_t(&self) -> f64 {
        ((self.alpha - 2.0) / (48.0 * self.beta * (self.alpha - 1.0))).powf(1.0 / self.alpha)
    }

    /// Cluster radius `r_c = min{ t/(2t+2) · R_{ε/2}, ε·R_T/4 }` (§5.1.1).
    pub fn r_cluster(&self) -> f64 {
        let t = self.lemma2_t();
        (t / (2.0 * t + 2.0) * self.r_eps_half()).min(self.eps * self.transmission_range() / 4.0)
    }

    /// Clear-reception interference threshold
    /// `T_s = N · min{(2^α − 1)/2^α, (1/2)^α · β}` (Definition 4).
    ///
    /// This fixed value is calibrated for the largest radius the ruling set
    /// admits (`r = R_T/2`); see [`SinrParams::clear_threshold_for`] for the
    /// radius-dependent generalization the implementation uses.
    pub fn clear_threshold(&self) -> f64 {
        let a = (2f64.powf(self.alpha) - 1.0) / 2f64.powf(self.alpha);
        let b = 0.5f64.powf(self.alpha) * self.beta;
        self.noise * a.min(b)
    }

    /// Radius-dependent clear-reception threshold
    /// `T_s(r) = min{ P/(β·r^α) − N,  P/(4r)^α }`.
    ///
    /// The two terms are exactly Definition 4's two goals, re-derived for a
    /// general radius `r`: interference at most the first term keeps a
    /// sender at distance `r` decodable; at most the second certifies that
    /// no other node within `4r` transmitted. At `r = R_T/2` the second term
    /// equals the paper's `(1/2)^α·β·N`; for the small radii used inside
    /// clusters the paper's fixed `T_s` is needlessly strict by a factor of
    /// `(R_T/2r)^α`, which would stall elections (DESIGN.md deviation #8).
    ///
    /// Returns 0 when `r ≥ R_T` (no interference level makes distance-`r`
    /// reception clear).
    pub fn clear_threshold_for(&self, r: f64) -> f64 {
        assert!(r > 0.0, "radius must be positive");
        let decode = self.power / (self.beta * r.powf(self.alpha)) - self.noise;
        let exclude = self.power / (4.0 * r).powf(self.alpha);
        decode.min(exclude).max(0.0)
    }

    /// Received power `P/d^α` at distance `d` (clamped at `min_dist`).
    #[inline]
    pub fn received_power(&self, d: f64) -> f64 {
        self.received_power_sq(d * d)
    }

    /// Received power from the *squared* distance: `P/(d²)^{α/2}` with the
    /// near-field clamp applied to `d²`.
    ///
    /// This is the canonical hot kernel: both the scalar reference
    /// (`resolve_listener`) and the batched `ChannelResolver` call it on
    /// `Point::dist_sq`, skipping the square root of `Point::dist` and
    /// using multiply-only fast paths for the integer path-loss exponents
    /// used in practice (a ~5× cheaper inner loop than `powf` for the
    /// default `α = 3`). The fast-path dispatch itself lives in one place
    /// — [`PowerKernel`] — shared by this function, the batched resolver,
    /// and the SIMD lane kernels ([`crate::lanes`]), so every resolution
    /// path is bit-for-bit identical by construction.
    #[inline]
    pub fn received_power_sq(&self, d_sq: f64) -> f64 {
        self.power_kernel().eval(d_sq)
    }

    /// The precomputed received-power kernel for these parameters: `P`,
    /// the squared near-field clamp, and the α fast path resolved once
    /// (instead of once per power evaluation). [`PowerKernel::eval`] is
    /// bitwise [`SinrParams::received_power_sq`]; batch resolvers hoist
    /// the kernel out of their per-transmitter loops.
    #[inline]
    pub fn power_kernel(&self) -> PowerKernel {
        PowerKernel {
            power: self.power,
            min_d_sq: self.min_dist * self.min_dist,
            alpha: if self.alpha == 3.0 {
                AlphaPath::Cubic
            } else if self.alpha == 4.0 {
                AlphaPath::Quartic
            } else if self.alpha == 5.0 {
                AlphaPath::Quintic
            } else if self.alpha == 6.0 {
                AlphaPath::Sextic
            } else {
                AlphaPath::General {
                    half_alpha: self.alpha / 2.0,
                }
            },
        }
    }

    /// Inverts [`SinrParams::received_power`]: the distance at which a
    /// transmitter would produce `signal` — the RSSI-based distance estimate
    /// available to listeners (paper §2, "Knowledge of Nodes").
    pub fn distance_from_power(&self, signal: f64) -> f64 {
        assert!(signal > 0.0, "signal must be positive");
        (self.power / signal).powf(1.0 / self.alpha)
    }

    /// SINR of a signal of strength `signal` against interference `interf`
    /// (sum of other received powers) plus ambient noise.
    pub fn sinr(&self, signal: f64, interf: f64) -> f64 {
        signal / (self.noise + interf)
    }

    /// Whether a signal decodes: `sinr(signal, interf) ≥ β`.
    pub fn decodes(&self, signal: f64, interf: f64) -> bool {
        self.sinr(signal, interf) >= self.beta
    }

    /// Whether `β ≥ 2^{1/α}`, the condition under which the exponential
    /// chain admits at most one successful transmission per slot
    /// (Moscibroda–Wattenhofer; paper §1 "Lower Bounds").
    pub fn chain_lower_bound_applies(&self) -> bool {
        self.beta >= 2f64.powf(1.0 / self.alpha)
    }
}

impl fmt::Display for SinrParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SINR(α={}, β={}, N={}, P={:.3}, ε={}, R_T={:.3})",
            self.alpha,
            self.beta,
            self.noise,
            self.power,
            self.eps,
            self.transmission_range()
        )
    }
}

/// Which specialization of `d^α`-from-`d²` a [`PowerKernel`] runs: the
/// multiply-only fast paths for the small integer exponents (even `α`
/// needs no square root at all), or the general `powf` form.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AlphaPath {
    /// `α = 3`: `d² · √d²`.
    Cubic,
    /// `α = 4`: `d² · d²`.
    Quartic,
    /// `α = 5`: `(d² · d²) · √d²`.
    Quintic,
    /// `α = 6`: `(d² · d²) · d²`.
    Sextic,
    /// Any other `α`: `(d²)^{α/2}` via `powf`.
    General {
        /// Precomputed `α/2`.
        half_alpha: f64,
    },
}

/// The received-power kernel `d² ↦ P/(d²)^{α/2}` with its α fast path
/// resolved ahead of time — the **single source of truth** for the
/// integer-α branches. [`SinrParams::received_power_sq`] delegates here,
/// the batched resolver hoists one kernel out of its per-transmitter
/// loops, and the lane kernels in [`crate::lanes`] evaluate it
/// [`LANE_WIDTH`](crate::lanes::LANE_WIDTH) elements at a time — all
/// computing the exact same sequence of IEEE operations per element, so
/// every path is bit-for-bit identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerKernel {
    /// Transmit power `P` (the numerator).
    power: f64,
    /// Squared near-field clamp `min_dist²`, applied to `d²` first.
    min_d_sq: f64,
    /// The specialized denominator.
    alpha: AlphaPath,
}

impl PowerKernel {
    /// Received power from the squared distance — bitwise
    /// [`SinrParams::received_power_sq`] of the parameters this kernel
    /// was derived from.
    #[inline]
    pub fn eval(&self, d_sq: f64) -> f64 {
        let d_sq = d_sq.max(self.min_d_sq);
        let denom = match self.alpha {
            AlphaPath::Cubic => d_sq * d_sq.sqrt(),
            AlphaPath::Quartic => d_sq * d_sq,
            AlphaPath::Quintic => (d_sq * d_sq) * d_sq.sqrt(),
            AlphaPath::Sextic => (d_sq * d_sq) * d_sq,
            AlphaPath::General { half_alpha } => d_sq.powf(half_alpha),
        };
        self.power / denom
    }

    /// [`PowerKernel::eval`] over an array of squared distances, with the
    /// α dispatch hoisted out of the element loop so the integer-α arms
    /// compile to straight-line max/sqrt/mul/div lane code the
    /// autovectorizer turns into packed `f64` SIMD. Element `j` of the
    /// result is bitwise `eval(d_sq[j])`: the max-clamp, square roots,
    /// multiplies, and the divide are exactly-rounded IEEE operations at
    /// any vector width, and the `powf` arm calls the same scalar libm
    /// routine per lane.
    ///
    /// `inline(always)`: this is the innermost arithmetic of every lane
    /// kernel — left as a call, the ABI boundary spills the caller's
    /// vector state to the stack per element and caps the whole batch
    /// walk at scalar/128-bit code (measured, not hypothetical).
    #[inline(always)]
    pub fn eval_lanes<const L: usize>(&self, d_sq: [f64; L]) -> [f64; L] {
        let mut c = d_sq;
        for v in &mut c {
            *v = v.max(self.min_d_sq);
        }
        let mut out = [0.0f64; L];
        match self.alpha {
            AlphaPath::Cubic => {
                for j in 0..L {
                    out[j] = self.power / (c[j] * c[j].sqrt());
                }
            }
            AlphaPath::Quartic => {
                for j in 0..L {
                    out[j] = self.power / (c[j] * c[j]);
                }
            }
            AlphaPath::Quintic => {
                for j in 0..L {
                    out[j] = self.power / ((c[j] * c[j]) * c[j].sqrt());
                }
            }
            AlphaPath::Sextic => {
                for j in 0..L {
                    out[j] = self.power / ((c[j] * c[j]) * c[j]);
                }
            }
            AlphaPath::General { half_alpha } => {
                for j in 0..L {
                    out[j] = self.power / c[j].powf(half_alpha);
                }
            }
        }
        out
    }

    /// Whether this kernel runs a multiply-only integer-α fast path (the
    /// lane arms that vectorize end to end).
    pub fn is_integer_fast_path(&self) -> bool {
        !matches!(self.alpha, AlphaPath::General { .. })
    }
}

/// An inclusive `[min, max]` interval of a physical parameter.
///
/// Nodes do not know `α`, `β`, `N` exactly — only ranges (paper §2,
/// "Knowledge of Nodes"). Conservative algorithm constants pick whichever
/// end of the interval is safe for the computation at hand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamInterval {
    /// Lower bound.
    pub min: f64,
    /// Upper bound.
    pub max: f64,
}

impl ParamInterval {
    /// An interval; panics if `min > max`.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(min <= max, "interval min {min} exceeds max {max}");
        ParamInterval { min, max }
    }

    /// The degenerate interval `[v, v]`.
    pub fn exact(v: f64) -> Self {
        ParamInterval { min: v, max: v }
    }

    /// Whether `v` lies in the interval.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.min && v <= self.max
    }
}

/// What a *node* knows about the physical layer: parameter intervals plus a
/// polynomial estimate of `n`.
///
/// `conservative()` produces a [`SinrParams`] whose derived radii are *safe*:
/// its transmission range lower-bounds the true one, so ranges computed from
/// it never overshoot (`α`, `β`, `N` at their maxima).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeKnowledge {
    /// Known range of the path-loss exponent.
    pub alpha: ParamInterval,
    /// Known range of the decoding threshold.
    pub beta: ParamInterval,
    /// Known range of the ambient noise.
    pub noise: ParamInterval,
    /// The (known) uniform power.
    pub power: f64,
    /// The (known) graph margin ε.
    pub eps: f64,
    /// Polynomial upper bound on the node count (`n̂ ≥ n`).
    pub n_bound: usize,
}

impl NodeKnowledge {
    /// Exact knowledge of `params`, with node-count bound `n_bound`.
    pub fn exact(params: &SinrParams, n_bound: usize) -> Self {
        NodeKnowledge {
            alpha: ParamInterval::exact(params.alpha),
            beta: ParamInterval::exact(params.beta),
            noise: ParamInterval::exact(params.noise),
            power: params.power,
            eps: params.eps,
            n_bound,
        }
    }

    /// Widens each interval by the multiplicative `slack ≥ 1` (min divided,
    /// max multiplied), modeling calibration error.
    pub fn with_slack(params: &SinrParams, n_bound: usize, slack: f64) -> Self {
        assert!(slack >= 1.0, "slack must be at least 1");
        NodeKnowledge {
            alpha: ParamInterval::new((params.alpha / slack).max(2.0 + 1e-9), params.alpha * slack),
            beta: ParamInterval::new((params.beta / slack).max(1.0), params.beta * slack),
            noise: ParamInterval::new(params.noise / slack, params.noise * slack),
            power: params.power,
            eps: params.eps,
            n_bound,
        }
    }

    /// A safe parameter set: the derived transmission range lower-bounds the
    /// true one, and the clear-reception threshold lower-bounds the true one,
    /// so clear receptions inferred by nodes are genuine.
    pub fn conservative(&self) -> SinrParams {
        SinrParams::new(
            self.alpha.max,
            self.beta.max,
            self.noise.max,
            self.power,
            self.eps,
        )
    }

    /// `ln n̂` — the factor all round counts scale with.
    pub fn ln_n(&self) -> f64 {
        (self.n_bound.max(2) as f64).ln()
    }

    /// `log₂ n̂`, rounded up, at least 1.
    pub fn log2_n(&self) -> usize {
        (usize::BITS - (self.n_bound.max(2) - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_params_are_valid() {
        let p = SinrParams::default();
        assert!((p.transmission_range() - 8.0).abs() < 1e-9);
        assert!(p.alpha > 2.0 && p.beta >= 1.0);
    }

    #[test]
    fn with_range_roundtrips() {
        let p = SinrParams::with_range(2.5, 2.0, 0.5, 10.0, 0.25);
        assert!((p.transmission_range() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 2")]
    fn alpha_at_most_two_rejected() {
        SinrParams::new(2.0, 1.5, 1.0, 100.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "beta must be at least 1")]
    fn beta_below_one_rejected() {
        SinrParams::new(3.0, 0.9, 1.0, 100.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "eps must lie in (0,1)")]
    fn eps_out_of_range_rejected() {
        SinrParams::new(3.0, 1.5, 1.0, 100.0, 1.0);
    }

    #[test]
    fn radii_ordering() {
        // r_c < R_eps < R_{eps/2} < R_T, as the construction requires.
        let p = SinrParams::default();
        assert!(p.r_cluster() < p.r_eps());
        assert!(p.r_eps() < p.r_eps_half());
        assert!(p.r_eps_half() < p.transmission_range());
    }

    #[test]
    fn cluster_radius_satisfies_paper_caps() {
        let p = SinrParams::default();
        let t = p.lemma2_t();
        let rc = p.r_cluster();
        assert!(rc <= t / (2.0 * t + 2.0) * p.r_eps_half() + 1e-12);
        assert!(rc <= p.eps * p.transmission_range() / 4.0 + 1e-12);
    }

    #[test]
    fn decode_at_exact_range_without_interference() {
        let p = SinrParams::default();
        let rt = p.transmission_range();
        let sig = p.received_power(rt);
        assert!(p.decodes(sig, 0.0));
        let sig_far = p.received_power(rt * 1.01);
        assert!(!p.decodes(sig_far, 0.0));
    }

    #[test]
    fn clear_threshold_matches_definition_4() {
        let p = SinrParams::new(3.0, 1.5, 2.0, 1000.0, 0.5);
        let a = (2f64.powi(3) - 1.0) / 8.0; // (2^3-1)/2^3 = 7/8
        let b = 0.125 * 1.5; // (1/2)^3 * beta
        assert!((p.clear_threshold() - 2.0 * a.min(b)).abs() < 1e-12);
    }

    #[test]
    fn clear_threshold_for_matches_paper_at_half_range() {
        let p = SinrParams::default();
        let r = p.transmission_range() / 2.0;
        // Second term at r = R_T/2 equals the paper's (1/2)^α·β·N.
        let paper_term = p.noise * 0.5f64.powf(p.alpha) * p.beta;
        assert!((p.clear_threshold_for(r) - paper_term).abs() < 1e-9 * paper_term);
    }

    #[test]
    fn clear_threshold_for_shrinks_with_radius() {
        let p = SinrParams::default();
        let t1 = p.clear_threshold_for(1.0);
        let t2 = p.clear_threshold_for(2.0);
        assert!(t1 > t2, "smaller radii tolerate more interference");
        // At the transmission range, nothing is clear.
        assert_eq!(p.clear_threshold_for(p.transmission_range() * 1.01), 0.0);
    }

    #[test]
    fn clear_threshold_for_excludes_4r_transmitter() {
        let p = SinrParams::default();
        for r in [0.5, 1.0, 2.0, 3.0] {
            // A single transmitter strictly inside 4r exceeds the threshold.
            let inside = p.received_power(3.9 * r);
            assert!(inside > p.clear_threshold_for(r), "r themselves = {r}");
        }
    }

    #[test]
    fn distance_inference_inverts_power() {
        let p = SinrParams::default();
        for d in [0.5, 1.0, 3.0, 7.9] {
            let sig = p.received_power(d);
            assert!((p.distance_from_power(sig) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn resolve_mode_default_and_builder() {
        let p = SinrParams::default();
        assert_eq!(p.resolve, ResolveMode::Exact);
        let f = p.with_resolve(ResolveMode::fast());
        assert!(matches!(f.resolve, ResolveMode::Fast { cutoff_factor } if cutoff_factor == 1.5));
    }

    #[test]
    #[should_panic(expected = "cutoff_factor")]
    fn fast_cutoff_below_one_rejected() {
        SinrParams::default().with_resolve(ResolveMode::Fast { cutoff_factor: 0.5 });
    }

    #[test]
    fn power_kernel_matches_powf_reference() {
        // The multiply-only integer-α fast paths must agree with the
        // direct P/d^α formula to rounding error.
        for alpha in [2.5, 3.0, 4.0, 5.0, 6.0] {
            let p = SinrParams::with_range(alpha, 1.5, 1.0, 8.0, 0.5);
            for d in [0.3, 1.0, 2.7, 7.99, 8.0, 31.0] {
                let got = p.received_power(d);
                let want = p.power / d.powf(alpha);
                assert!(
                    (got - want).abs() <= 1e-12 * want,
                    "α={alpha} d={d}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn power_sq_kernel_is_the_canonical_form() {
        let p = SinrParams::default();
        for d in [0.0, 0.5, 3.0, 8.0, 20.0] {
            assert_eq!(p.received_power(d), p.received_power_sq(d * d));
        }
    }

    #[test]
    fn power_kernel_lane_eval_is_bitwise_scalar_eval() {
        // Every α arm (integer fast paths and the powf fallback), lane
        // widths 4 and 8, including clamped (sub-min_dist) inputs.
        for alpha in [2.5, 3.0, 3.7, 4.0, 5.0, 6.0] {
            let p = SinrParams::with_range(alpha, 1.5, 1.0, 8.0, 0.5);
            let k = p.power_kernel();
            assert_eq!(
                k.is_integer_fast_path(),
                alpha.fract() == 0.0 && alpha <= 6.0
            );
            let d = [0.0, 1e-14, 0.25, 1.0, 7.3, 64.0, 144.0, 900.0];
            let out8 = k.eval_lanes(d);
            for j in 0..8 {
                assert_eq!(out8[j].to_bits(), k.eval(d[j]).to_bits(), "α={alpha} j={j}");
                assert_eq!(
                    out8[j].to_bits(),
                    p.received_power_sq(d[j]).to_bits(),
                    "kernel diverged from received_power_sq at α={alpha}"
                );
            }
            let out4 = k.eval_lanes([d[0], d[3], d[5], d[7]]);
            for (j, &i) in [0usize, 3, 5, 7].iter().enumerate() {
                assert_eq!(out4[j].to_bits(), k.eval(d[i]).to_bits());
            }
        }
    }

    #[test]
    fn near_field_clamp() {
        let p = SinrParams::default();
        assert_eq!(p.received_power(0.0), p.received_power(p.min_dist));
        assert!(p.received_power(0.0).is_finite());
    }

    #[test]
    fn chain_condition() {
        // beta = 1.5 >= 2^(1/3) ≈ 1.26
        assert!(SinrParams::default().chain_lower_bound_applies());
        // beta = 1.0 < 2^(1/3)
        assert!(!SinrParams::new(3.0, 1.0, 1.0, 100.0, 0.5).chain_lower_bound_applies());
    }

    #[test]
    fn knowledge_conservative_underestimates_range() {
        let p = SinrParams::default();
        let k = NodeKnowledge::with_slack(&p, 1000, 1.2);
        let cons = k.conservative();
        assert!(cons.transmission_range() <= p.transmission_range() + 1e-9);
        assert!(k.alpha.contains(p.alpha));
        assert!(k.beta.contains(p.beta));
        assert!(k.noise.contains(p.noise));
    }

    #[test]
    fn knowledge_log_helpers() {
        let p = SinrParams::default();
        let k = NodeKnowledge::exact(&p, 1024);
        assert_eq!(k.log2_n(), 10);
        assert!((k.ln_n() - (1024f64).ln()).abs() < 1e-12);
        let k1 = NodeKnowledge::exact(&p, 1);
        assert!(k1.ln_n() > 0.0);
        assert!(k1.log2_n() >= 1);
    }

    #[test]
    #[should_panic(expected = "interval min")]
    fn inverted_interval_rejected() {
        ParamInterval::new(2.0, 1.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", SinrParams::default()).is_empty());
    }

    proptest! {
        #[test]
        fn sinr_monotone_in_interference(
            sig in 0.01..1e6f64,
            i1 in 0.0..1e6f64,
            extra in 0.0..1e6f64,
        ) {
            let p = SinrParams::default();
            // More interference never helps: decoding is monotone.
            prop_assert!(p.sinr(sig, i1) >= p.sinr(sig, i1 + extra));
            if p.decodes(sig, i1 + extra) {
                prop_assert!(p.decodes(sig, i1));
            }
        }

        #[test]
        fn received_power_monotone_in_distance(d1 in 0.01..100.0f64, d2 in 0.01..100.0f64) {
            let p = SinrParams::default();
            if d1 <= d2 {
                prop_assert!(p.received_power(d1) >= p.received_power(d2));
            }
        }

        #[test]
        fn range_solves_threshold(alpha in 2.1..6.0f64, beta in 1.0..4.0f64, noise in 0.1..10.0f64, rt in 0.5..50.0f64) {
            let p = SinrParams::with_range(alpha, beta, noise, rt, 0.5);
            let sig = p.received_power(rt);
            // At exactly R_T, SINR against noise alone equals beta.
            prop_assert!((p.sinr(sig, 0.0) - beta).abs() < 1e-6 * beta);
        }
    }
}
