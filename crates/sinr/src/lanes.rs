//! SIMD listener lanes: batched structure-of-arrays power kernels.
//!
//! The per-listener hot loop of the batched resolver sums
//! `received_power_sq` over a span of transmitters. Done one `Point` at a
//! time, the compiler cannot vectorize it: the array-of-structs layout
//! interleaves `x` and `y`, and the running sum + argmax form a loop-carried
//! dependence. This module restructures the kernel so it *does* vectorize —
//! without changing a single output bit:
//!
//! 1. **SoA inputs.** Callers pass separate `xs`/`ys` coordinate slices
//!    (the resolver's spatial index stores a per-cell CSR copy of them;
//!    the engine stages per-channel transmitter coordinates directly into
//!    SoA buffers, so no per-slot transpose happens anywhere).
//! 2. **Lane-wise evaluation, sequential reduction.** Each
//!    [`LANE_WIDTH`]-element chunk computes `dx`, `dy`, `d² = dx² + dy²`,
//!    and the power `P/(d²)^{α/2}` element-wise into stack arrays —
//!    straight-line max/sqrt/mul/div code the autovectorizer compiles to
//!    packed `f64` SIMD ([`PowerKernel::eval_lanes`]). The *accumulation*
//!    of those lane values into the running total and argmax then happens
//!    in a scalar loop over the chunk, in ascending index order.
//!
//! # The deterministic reduction-order contract
//!
//! Step 2 is the whole trick. A conventional SIMD sum keeps `LANE_WIDTH`
//! partial accumulators and reduces them horizontally at the end — which
//! reassociates the floating-point sum and changes the result by rounding.
//! Here the chunked reduction adds the **same values in the same
//! architectural order** as the scalar reference (`total += p_0; total +=
//! p_1; …`), the remainder is handled by the scalar kernel itself, and
//! every element's power is produced by the same IEEE operation sequence
//! (exactly-rounded at any vector width, no FMA contraction — Rust never
//! contracts by default). Lane resolution is therefore **bit-for-bit**
//! the scalar resolution, not merely close: goldens stay byte-identical
//! at every thread/shard/lane configuration, which the proptests in
//! `tests/lane_kernels.rs` and the forced-parallel golden re-run prove.
//! What the lanes buy is the *element-wise math* (distance and power, the
//! actual hot work); the in-order adds are a few scalar cycles per lane.
//!
//! # When lanes engage
//!
//! Lanes are **on by default** and toggled per process:
//!
//! * environment: `MCA_LANES=0` disables them (any other value, or unset,
//!   leaves them on);
//! * programmatic: [`set_enabled`] overrides the environment (the bench
//!   harness uses this for its `lanes`-vs-`scalar` arm pair);
//!   [`clear_override`] returns to the environment default.
//!
//! A resolver samples the toggle once at construction
//! ([`crate::ChannelResolver::with_lanes`] can pin it per resolver).
//! Because lane and scalar resolution are bit-identical, the toggle is a
//! pure performance knob — it can never change a simulation outcome.

// The kernels mirror the scalar accumulator state as flat `&mut`
// parameters and walk the fixed-size lane arrays by index: that is the
// exact shape the autovectorizer was measured against (see
// docs/SIMD_LANES.md); the argument-count and range-loop lints would
// trade it for unverified codegen on the hottest loop in the workspace.
#![allow(clippy::too_many_arguments, clippy::needless_range_loop)]

use crate::params::PowerKernel;
use std::sync::atomic::{AtomicI8, Ordering};
use std::sync::OnceLock;

/// Elements processed per vector chunk. Eight `f64`s fill one AVX-512
/// register, two AVX2 registers, or four SSE2/NEON registers — wide
/// enough that the autovectorizer unrolls profitably on all of them.
pub const LANE_WIDTH: usize = 8;

/// Process-wide lane toggle: `-1` = follow the `MCA_LANES` environment
/// default, `0` = forced off, `1` = forced on.
static OVERRIDE: AtomicI8 = AtomicI8::new(-1);

/// Whether the lane kernels are currently enabled (see module docs for
/// the `MCA_LANES` / [`set_enabled`] precedence).
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| std::env::var("MCA_LANES").map_or(true, |v| v != "0"))
        }
    }
}

/// Forces the lane kernels on or off for subsequently constructed
/// resolvers, overriding `MCA_LANES`. Safe at any time: lanes are
/// bit-identical to the scalar path, so flipping mid-run cannot change
/// any outcome — only throughput.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(i8::from(on), Ordering::Relaxed);
}

/// Drops a [`set_enabled`] override, returning to the `MCA_LANES`
/// environment default.
pub fn clear_override() {
    OVERRIDE.store(-1, Ordering::Relaxed);
}

/// The widest packed-`f64` instruction set this binary was compiled for —
/// recorded in bench artifacts so speedup figures read honestly. The ≥2×
/// lane gate engages only when this is at least 4 lanes wide ("avx2" or
/// "avx512"); an SSE2-baseline build (2-wide) cannot be expected to
/// double a memory-and-sqrt-bound kernel.
pub fn simd_level() -> &'static str {
    if cfg!(target_feature = "avx512f") {
        "avx512"
    } else if cfg!(target_feature = "avx2") {
        "avx2"
    } else if cfg!(target_feature = "sse2") {
        "sse2"
    } else if cfg!(target_arch = "aarch64") {
        "neon"
    } else {
        "none"
    }
}

/// Whether the compiled SIMD level is wide enough (≥ 4 `f64` lanes) for
/// the bench's ≥2× lanes-vs-scalar gate to engage.
pub fn simd_capable() -> bool {
    cfg!(target_feature = "avx512f") || cfg!(target_feature = "avx2")
}

/// Near-field accumulation over an indexed SoA span: `xs[k]`/`ys[k]` are
/// the coordinates of transmitter `ids[k]`. Adds every element's power to
/// `total` and tracks the argmax in ascending `k` order with the
/// first-strongest-wins tie-break on the *original* transmitter index
/// (`p > best_pow`, or `p == best_pow` with a smaller id) — bitwise the
/// resolver's scalar near-cell loop.
#[inline(always)]
pub fn accumulate_indexed(
    kernel: &PowerKernel,
    xs: &[f64],
    ys: &[f64],
    ids: &[u32],
    lx: f64,
    ly: f64,
    total: &mut f64,
    best_pow: &mut f64,
    best: &mut usize,
) {
    debug_assert!(xs.len() == ys.len() && xs.len() == ids.len());
    // Fixed-size chunk references (`&[f64; LANE_WIDTH]`) are what lets the
    // autovectorizer emit clean packed code: they eliminate per-element
    // bounds checks, which otherwise break the straight-line lane shape at
    // inlined call sites (measured 2.4× slower without them).
    let mut cxs = xs.chunks_exact(LANE_WIDTH);
    let mut cys = ys.chunks_exact(LANE_WIDTH);
    let mut cids = ids.chunks_exact(LANE_WIDTH);
    let mut k = 0;
    for ((sx, sy), sid) in (&mut cxs).zip(&mut cys).zip(&mut cids) {
        let sx: &[f64; LANE_WIDTH] = sx.try_into().expect("exact chunk");
        let sy: &[f64; LANE_WIDTH] = sy.try_into().expect("exact chunk");
        let sid: &[u32; LANE_WIDTH] = sid.try_into().expect("exact chunk");
        let mut d = [0.0f64; LANE_WIDTH];
        for j in 0..LANE_WIDTH {
            let dx = sx[j] - lx;
            let dy = sy[j] - ly;
            d[j] = dx * dx + dy * dy;
        }
        let p = kernel.eval_lanes(d);
        for j in 0..LANE_WIDTH {
            let pj = p[j];
            *total += pj;
            let i = sid[j] as usize;
            if pj > *best_pow || (pj == *best_pow && i < *best) {
                *best_pow = pj;
                *best = i;
            }
        }
        k += LANE_WIDTH;
    }
    // Remainder: the scalar kernel, still in ascending order.
    for j in k..xs.len() {
        let dx = xs[j] - lx;
        let dy = ys[j] - ly;
        let pj = kernel.eval(dx * dx + dy * dy);
        *total += pj;
        let i = ids[j] as usize;
        if pj > *best_pow || (pj == *best_pow && i < *best) {
            *best_pow = pj;
            *best = i;
        }
    }
}

/// Whole-set accumulation over identity-indexed SoA coordinates (the
/// exact-scan path): element `k` *is* transmitter `k`. Ascending order
/// with a strict `>` argmax — bitwise the scalar reference
/// `resolve_listener_ext` scan (first strongest wins).
#[inline(always)]
pub fn accumulate_identity(
    kernel: &PowerKernel,
    xs: &[f64],
    ys: &[f64],
    lx: f64,
    ly: f64,
    total: &mut f64,
    best_pow: &mut f64,
    best: &mut usize,
) {
    debug_assert_eq!(xs.len(), ys.len());
    let mut cxs = xs.chunks_exact(LANE_WIDTH);
    let mut cys = ys.chunks_exact(LANE_WIDTH);
    let mut k = 0;
    for (sx, sy) in (&mut cxs).zip(&mut cys) {
        let sx: &[f64; LANE_WIDTH] = sx.try_into().expect("exact chunk");
        let sy: &[f64; LANE_WIDTH] = sy.try_into().expect("exact chunk");
        let mut d = [0.0f64; LANE_WIDTH];
        for j in 0..LANE_WIDTH {
            let dx = sx[j] - lx;
            let dy = sy[j] - ly;
            d[j] = dx * dx + dy * dy;
        }
        let p = kernel.eval_lanes(d);
        for j in 0..LANE_WIDTH {
            let pj = p[j];
            *total += pj;
            if pj > *best_pow {
                *best_pow = pj;
                *best = k + j;
            }
        }
        k += LANE_WIDTH;
    }
    for j in k..xs.len() {
        let dx = xs[j] - lx;
        let dy = ys[j] - ly;
        let pj = kernel.eval(dx * dx + dy * dy);
        *total += pj;
        if pj > *best_pow {
            *best_pow = pj;
            *best = j;
        }
    }
}

/// The vector phase of the descended-block cell scan: for one
/// [`LANE_WIDTH`] chunk of cells (rect bounds, centers — the index's
/// per-cell metadata SoA), computes each cell's squared distance from the
/// listener to its rectangle and the power at its center.
///
/// Both outputs are **bitwise** their scalar counterparts:
///
/// * the rect distance mirrors [`BoundingBox::dist_sq_to`] — `clamp` via
///   `max`/`min` yields the same clamped coordinate (a sign-of-zero
///   difference at the boundary is killed by the squaring), and the
///   subtract/multiply/add sequence is identical;
/// * the center power is `kernel.eval` of `center.dist_sq(listener)` —
///   the same subtract/square/add followed by [`PowerKernel::eval_lanes`],
///   whose every element is bitwise [`PowerKernel::eval`].
///
/// The caller classifies each cell against the near cutoff with `d_min²`
/// (agreeing exactly with the scalar resolver's branch) and folds the far
/// cells' pre-multiplied `count · power` terms into its running estimate
/// in cell order — the one serial `fadd` chain the bitwise contract
/// requires is all that stays scalar.
///
/// [`BoundingBox::dist_sq_to`]: mca_geom::BoundingBox::dist_sq_to
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub fn cell_chunk_metrics(
    kernel: &PowerKernel,
    min_x: &[f64; LANE_WIDTH],
    min_y: &[f64; LANE_WIDTH],
    max_x: &[f64; LANE_WIDTH],
    max_y: &[f64; LANE_WIDTH],
    cx: &[f64; LANE_WIDTH],
    cy: &[f64; LANE_WIDTH],
    count: &[f64; LANE_WIDTH],
    lx: f64,
    ly: f64,
) -> ([f64; LANE_WIDTH], [f64; LANE_WIDTH]) {
    let mut d_min = [0.0f64; LANE_WIDTH];
    let mut d_center = [0.0f64; LANE_WIDTH];
    for j in 0..LANE_WIDTH {
        let px = lx.max(min_x[j]).min(max_x[j]);
        let py = ly.max(min_y[j]).min(max_y[j]);
        let dx = px - lx;
        let dy = py - ly;
        d_min[j] = dx * dx + dy * dy;
        let ex = cx[j] - lx;
        let ey = cy[j] - ly;
        d_center[j] = ex * ex + ey * ey;
    }
    let mut terms = kernel.eval_lanes(d_center);
    for j in 0..LANE_WIDTH {
        // One exactly-rounded multiply per lane — bitwise the scalar
        // path's `n · received_power_sq(d²)` term.
        terms[j] *= count[j];
    }
    (d_min, terms)
}

/// [`cell_chunk_metrics`] without the rect-distance classification, for
/// descended blocks whose rectangle is entirely beyond the near cutoff:
/// every cell's minimum distance is at least the block's (already tested
/// by the descend branch), so no cell can classify near and the scan
/// needs only the far terms. Element `j` is bitwise the scalar far-cell
/// term `count · P/d(center)^α`; the caller folds the chunk into its far
/// estimate in cell order.
#[inline(always)]
pub fn far_chunk_terms(
    kernel: &PowerKernel,
    cx: &[f64; LANE_WIDTH],
    cy: &[f64; LANE_WIDTH],
    count: &[f64; LANE_WIDTH],
    lx: f64,
    ly: f64,
) -> [f64; LANE_WIDTH] {
    let mut d_center = [0.0f64; LANE_WIDTH];
    for j in 0..LANE_WIDTH {
        let ex = cx[j] - lx;
        let ey = cy[j] - ly;
        d_center[j] = ex * ex + ey * ey;
    }
    let mut terms = kernel.eval_lanes(d_center);
    for j in 0..LANE_WIDTH {
        terms[j] *= count[j];
    }
    terms
}

/// The listener-lane dual of [`cell_chunk_metrics`]: one rectangle
/// (bounds, center, transmitter count — scalars), [`LANE_WIDTH`]
/// *listeners*. Element `l` is bitwise the scalar
/// `rect.dist_sq_to(listener_l)` and the scalar aggregated term
/// `count · P/d(center, listener_l)^α` — the same `max`/`min` clamp and
/// subtract/square/add sequences, with [`PowerKernel::eval_lanes`]
/// element-wise bitwise [`PowerKernel::eval`], and the `count` multiply a
/// single exactly-rounded (commutative) operation.
///
/// This is what lets the batched resolver walk the index **once** for
/// LANE_WIDTH listeners: each lane carries one listener's accumulator
/// chain, so a vector add advances LANE_WIDTH independent serial
/// reduction chains — in each lane's own scalar order — in one
/// instruction.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub fn rect_metrics_lanes(
    kernel: &PowerKernel,
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
    cx: f64,
    cy: f64,
    count: f64,
    lxs: &[f64; LANE_WIDTH],
    lys: &[f64; LANE_WIDTH],
) -> ([f64; LANE_WIDTH], [f64; LANE_WIDTH]) {
    let mut d_min = [0.0f64; LANE_WIDTH];
    let mut d_center = [0.0f64; LANE_WIDTH];
    for l in 0..LANE_WIDTH {
        let px = lxs[l].max(min_x).min(max_x);
        let py = lys[l].max(min_y).min(max_y);
        let dx = px - lxs[l];
        let dy = py - lys[l];
        d_min[l] = dx * dx + dy * dy;
        let ex = cx - lxs[l];
        let ey = cy - lys[l];
        d_center[l] = ex * ex + ey * ey;
    }
    let mut terms = kernel.eval_lanes(d_center);
    for l in 0..LANE_WIDTH {
        terms[l] *= count;
    }
    (d_min, terms)
}

/// Near-field fold of one CSR span against [`LANE_WIDTH`] listeners at
/// once: transmitter `j` (coordinates `xs[j]`/`ys[j]`, original index
/// `ids[j]` — broadcast scalars) is evaluated against the listener lanes,
/// and one masked vector add advances all LANE_WIDTH `total` chains.
///
/// All lane state is `f64` so the whole loop is packed-double SIMD:
/// `mask` is `1.0`/`0.0` and applied by multiplication (`pw · 1.0 == pw`
/// and `pw · 0.0 == +0.0` exactly, for the strictly positive finite
/// powers this folds), and the argmax index rides in a `f64` lane —
/// exact, and order-isomorphic to the integer, for any index below 2⁵³.
/// Mixing `usize`/`bool` lanes here demotes the loop to scalar selects
/// (measured).
///
/// Per lane `l`, the value sequence is exactly the scalar near loop over
/// `l`'s own near cells: elements arrive in the same CSR order, masked-out
/// elements contribute `+0.0` (an exact identity on the non-negative
/// accumulator), and the argmax update uses the identical
/// greater-or-tie-on-smaller-index predicate, so `total`/`best_pow`/`best`
/// are bit-for-bit the per-listener fold. This is the structural win of
/// listener batching: the near fold is a serial dependency chain per
/// listener (~4-cycle add latency each), and one vector add here advances
/// eight such chains in the time the scalar code advances one.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub fn accumulate_span_lanes(
    kernel: &PowerKernel,
    xs: &[f64],
    ys: &[f64],
    ids: &[u32],
    lxs: &[f64; LANE_WIDTH],
    lys: &[f64; LANE_WIDTH],
    mask: &[f64; LANE_WIDTH],
    total: &mut [f64; LANE_WIDTH],
    best_pow: &mut [f64; LANE_WIDTH],
    best: &mut [f64; LANE_WIDTH],
) {
    for ((&x, &y), &id) in xs.iter().zip(ys).zip(ids) {
        let mut d = [0.0f64; LANE_WIDTH];
        for l in 0..LANE_WIDTH {
            let dx = x - lxs[l];
            let dy = y - lys[l];
            d[l] = dx * dx + dy * dy;
        }
        let pw = kernel.eval_lanes(d);
        let i = f64::from(id);
        for l in 0..LANE_WIDTH {
            total[l] += pw[l] * mask[l];
        }
        for l in 0..LANE_WIDTH {
            let upd =
                mask[l] != 0.0 && (pw[l] > best_pow[l] || (pw[l] == best_pow[l] && i < best[l]));
            best_pow[l] = if upd { pw[l] } else { best_pow[l] };
            best[l] = if upd { i } else { best[l] };
        }
    }
}

/// Far-only variant of [`rect_metrics_lanes`]: just the aggregated center
/// term, no rectangle clamp. For a block (or cell) already known to be
/// beyond the near cutoff for **every** lane of the batch, the rectangle
/// distance can steer no branch — this drops half the vector work from
/// the dominant all-far cell scan. Element `l` is bitwise the scalar
/// `count · P/d(center, listener_l)^α`.
#[inline(always)]
pub fn far_terms_lanes(
    kernel: &PowerKernel,
    cx: f64,
    cy: f64,
    count: f64,
    lxs: &[f64; LANE_WIDTH],
    lys: &[f64; LANE_WIDTH],
) -> [f64; LANE_WIDTH] {
    let mut d_center = [0.0f64; LANE_WIDTH];
    for l in 0..LANE_WIDTH {
        let ex = cx - lxs[l];
        let ey = cy - lys[l];
        d_center[l] = ex * ex + ey * ey;
    }
    let mut terms = kernel.eval_lanes(d_center);
    for l in 0..LANE_WIDTH {
        terms[l] *= count;
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SinrParams;

    fn kernel(alpha: f64) -> PowerKernel {
        SinrParams::with_range(alpha, 1.5, 1.0, 8.0, 0.5).power_kernel()
    }

    /// Deterministic pseudo-random coordinates without pulling rand in.
    fn coords(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 100.0 - 50.0
        };
        (
            (0..n).map(|_| next()).collect(),
            (0..n).map(|_| next()).collect(),
        )
    }

    fn scalar_identity(
        k: &PowerKernel,
        xs: &[f64],
        ys: &[f64],
        lx: f64,
        ly: f64,
    ) -> (f64, f64, usize) {
        let (mut total, mut best_pow, mut best) = (0.0, f64::NEG_INFINITY, 0usize);
        for j in 0..xs.len() {
            let dx = xs[j] - lx;
            let dy = ys[j] - ly;
            let p = k.eval(dx * dx + dy * dy);
            total += p;
            if p > best_pow {
                best_pow = p;
                best = j;
            }
        }
        (total, best_pow, best)
    }

    #[test]
    fn identity_accumulation_is_bitwise_scalar_for_all_remainders() {
        for alpha in [2.5, 3.0, 4.0, 5.0, 6.0] {
            let k = kernel(alpha);
            // Lengths straddling every remainder class of LANE_WIDTH.
            for n in 0..=2 * LANE_WIDTH + 3 {
                let (xs, ys) = coords(n, n as u64 + 1);
                let (st, sp, sb) = scalar_identity(&k, &xs, &ys, 3.0, -2.0);
                let (mut t, mut p, mut b) = (0.0, f64::NEG_INFINITY, 0usize);
                accumulate_identity(&k, &xs, &ys, 3.0, -2.0, &mut t, &mut p, &mut b);
                assert_eq!(t.to_bits(), st.to_bits(), "α={alpha} n={n}");
                assert_eq!(p.to_bits(), sp.to_bits(), "α={alpha} n={n}");
                assert_eq!(b, sb, "α={alpha} n={n}");
            }
        }
    }

    #[test]
    fn indexed_accumulation_matches_scalar_with_tie_break() {
        let k = kernel(3.0);
        let (xs, ys) = coords(21, 7);
        // Duplicate a coordinate so the power ties; ids deliberately
        // descending so the tie-break (smaller id wins) is exercised.
        let mut xs = xs;
        let mut ys = ys;
        xs[20] = xs[0];
        ys[20] = ys[0];
        let ids: Vec<u32> = (0..21u32).rev().collect();
        let (mut t, mut p, mut b) = (0.5, f64::NEG_INFINITY, 0usize);
        accumulate_indexed(&k, &xs, &ys, &ids, 1.0, 1.0, &mut t, &mut p, &mut b);
        let (mut st, mut sp, mut sb) = (0.5, f64::NEG_INFINITY, 0usize);
        for j in 0..21 {
            let dx = xs[j] - 1.0;
            let dy = ys[j] - 1.0;
            let pw = k.eval(dx * dx + dy * dy);
            st += pw;
            let i = ids[j] as usize;
            if pw > sp || (pw == sp && i < sb) {
                sp = pw;
                sb = i;
            }
        }
        assert_eq!(t.to_bits(), st.to_bits());
        assert_eq!(p.to_bits(), sp.to_bits());
        assert_eq!(b, sb);
    }

    #[test]
    fn cell_chunk_metrics_is_bitwise_rect_distance_and_center_power() {
        use mca_geom::{BoundingBox, Point};
        for alpha in [3.0, 3.7] {
            let k = kernel(alpha);
            let (cx, cy) = coords(LANE_WIDTH, 40 + alpha as u64);
            // Rect half-extents vary per cell; one listener inside a rect,
            // the rest outside, so both clamp regimes are exercised.
            let (mut min_x, mut min_y, mut max_x, mut max_y) = (
                [0.0; LANE_WIDTH],
                [0.0; LANE_WIDTH],
                [0.0; LANE_WIDTH],
                [0.0; LANE_WIDTH],
            );
            for j in 0..LANE_WIDTH {
                let h = 0.5 + j as f64 * 0.3;
                min_x[j] = cx[j] - h;
                max_x[j] = cx[j] + h;
                min_y[j] = cy[j] - h;
                max_y[j] = cy[j] + h;
            }
            let (lx, ly) = (cx[3], cy[3]);
            let cxa: [f64; LANE_WIDTH] = cx.clone().try_into().unwrap();
            let cya: [f64; LANE_WIDTH] = cy.clone().try_into().unwrap();
            let mut cnt = [0.0f64; LANE_WIDTH];
            for (j, c) in cnt.iter_mut().enumerate() {
                *c = (j % 5 + 1) as f64;
            }
            let (d_min, terms) =
                cell_chunk_metrics(&k, &min_x, &min_y, &max_x, &max_y, &cxa, &cya, &cnt, lx, ly);
            let listener = Point::new(lx, ly);
            for j in 0..LANE_WIDTH {
                let rect = BoundingBox::from_points([
                    Point::new(min_x[j], min_y[j]),
                    Point::new(max_x[j], max_y[j]),
                ])
                .unwrap();
                assert_eq!(
                    d_min[j].to_bits(),
                    rect.dist_sq_to(listener).to_bits(),
                    "α={alpha} j={j}"
                );
                let scalar = cnt[j] * k.eval(Point::new(cx[j], cy[j]).dist_sq(listener));
                assert_eq!(terms[j].to_bits(), scalar.to_bits(), "α={alpha} j={j}");
            }
        }
    }

    #[test]
    fn toggle_precedence() {
        // Programmatic override beats the environment; clearing returns
        // to the default (on, unless MCA_LANES=0 — not set in tests).
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        clear_override();
        assert!(enabled());
        assert!(!simd_level().is_empty());
    }
}
