//! Workloads and measurement for the batched SINR resolver benchmark.
//!
//! Shared between the `sinr_resolve` criterion bench and the
//! `experiments bench-sinr` JSON emitter so both measure exactly the same
//! thing: one "slot" = resolving every listener of every channel against
//! that channel's transmitter set.
//!
//! The baseline, [`seed_scan_slot`], is a frozen copy of the seed engine's
//! per-listener scan (`dist → powf(α)` kernel, one O(tx) pass per
//! listener) so the recorded speedups stay anchored to the pre-batching
//! hot path even as the live code evolves.

use mca_geom::Point;
use mca_sinr::{ChannelResolver, ResolveMode, SinrParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// One benchmark world: per-channel transmitter and listener positions.
pub struct SinrWorld {
    /// Transmitter positions, per channel.
    pub tx: Vec<Vec<Point>>,
    /// Listener positions, per channel.
    pub rx: Vec<Vec<Point>>,
}

/// Builds a world of `n` nodes (half transmitting, half listening, dealt
/// round-robin over `channels` channels) on a uniform square deployment.
/// `dense` uses 4 nodes per unit area (hundreds of in-range interferers at
/// the default `R_T = 8`); sparse uses 1/4 node per unit area.
pub fn build_world(n: usize, channels: u16, dense: bool, seed: u64) -> SinrWorld {
    let side = if dense {
        (n as f64 / 4.0).sqrt()
    } else {
        (n as f64 * 4.0).sqrt()
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tx = vec![Vec::new(); channels as usize];
    let mut rx = vec![Vec::new(); channels as usize];
    for i in 0..n {
        let p = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        let ch = i % channels as usize;
        // Alternate roles per dealing round so every channel gets both
        // transmitters and listeners regardless of the channel count.
        if (i / channels as usize).is_multiple_of(2) {
            tx[ch].push(p);
        } else {
            rx[ch].push(p);
        }
    }
    SinrWorld { tx, rx }
}

/// Frozen copy of the seed engine's scalar resolution (pre-batching):
/// `received_power = P / dist.max(min_dist).powf(α)`, summed per listener
/// over the whole transmitter set. Returns (decoded?, total power).
fn seed_resolve_listener(params: &SinrParams, tx: &[Point], listener: Point) -> (bool, f64) {
    if tx.is_empty() {
        return (false, 0.0);
    }
    let mut total = 0.0;
    let mut best_pow = f64::NEG_INFINITY;
    for &t in tx {
        let d = t.dist(listener).max(params.min_dist);
        let p = params.power / d.powf(params.alpha);
        total += p;
        if p > best_pow {
            best_pow = p;
        }
    }
    let sinr = best_pow / (params.noise + (total - best_pow));
    (sinr >= params.beta, total)
}

/// One slot under the seed per-listener scan. Returns a checksum so the
/// optimizer cannot elide the work.
pub fn seed_scan_slot(params: &SinrParams, world: &SinrWorld) -> f64 {
    let mut acc = 0.0;
    for (tx, rx) in world.tx.iter().zip(&world.rx) {
        for &l in rx {
            let (decoded, total) = seed_resolve_listener(params, tx, l);
            acc += total + f64::from(u8::from(decoded));
        }
    }
    black_box(acc)
}

/// One slot through [`ChannelResolver`] (mode taken from `params.resolve`),
/// building the per-channel resolver once and resolving all of its
/// listeners in a batch — exactly what the engine hot path does.
pub fn batch_slot(params: &SinrParams, world: &SinrWorld) -> f64 {
    let mut out = Vec::new();
    let mut acc = 0.0;
    for (tx, rx) in world.tx.iter().zip(&world.rx) {
        let resolver = ChannelResolver::new(params, tx);
        resolver.resolve_into(rx, 0.0, &mut out);
        for o in &out {
            acc += o.total_power + f64::from(u8::from(o.decoded.is_some()));
        }
    }
    black_box(acc)
}

/// Median wall time of `repeats` runs of `f`, in nanoseconds.
fn median_ns<F: FnMut() -> f64>(repeats: usize, mut f: F) -> u128 {
    black_box(f()); // warm-up, untimed
    let mut samples: Vec<u128> = (0..repeats.max(1))
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The benchmark matrix: node count × channel count × density.
pub const SINR_BENCH_CASES: [(usize, u16); 4] =
    [(1_000, 1), (1_000, 16), (10_000, 1), (10_000, 16)];

/// Runs the full matrix and renders `BENCH_sinr.json`: per case, the
/// median per-slot time of the seed scan, batched `Exact`, and batched
/// `Fast`, plus the speedups over the seed scan.
pub fn bench_sinr_json(repeats: usize) -> String {
    let exact = SinrParams::default();
    let fast = SinrParams::default().with_resolve(ResolveMode::fast());
    let mut cases = Vec::new();
    for &(n, channels) in &SINR_BENCH_CASES {
        for dense in [true, false] {
            let world = build_world(n, channels, dense, 7);
            let seed_ns = median_ns(repeats, || seed_scan_slot(&exact, &world));
            let exact_ns = median_ns(repeats, || batch_slot(&exact, &world));
            let fast_ns = median_ns(repeats, || batch_slot(&fast, &world));
            let density = if dense { "dense" } else { "sparse" };
            cases.push(format!(
                concat!(
                    "    {{\"n\": {}, \"channels\": {}, \"density\": \"{}\", ",
                    "\"seed_ns_per_slot\": {}, \"exact_ns_per_slot\": {}, ",
                    "\"fast_ns_per_slot\": {}, \"exact_speedup\": {:.2}, ",
                    "\"fast_speedup\": {:.2}}}"
                ),
                n,
                channels,
                density,
                seed_ns,
                exact_ns,
                fast_ns,
                seed_ns as f64 / exact_ns.max(1) as f64,
                seed_ns as f64 / fast_ns.max(1) as f64,
            ));
        }
    }
    format!(
        concat!(
            "{{\n  \"bench\": \"sinr_resolve\",\n",
            "  \"baseline\": \"seed per-listener scan (dist + powf kernel)\",\n",
            "  \"threads\": {},\n  \"repeats\": {},\n  \"cases\": [\n{}\n  ]\n}}\n"
        ),
        rayon::current_num_threads(),
        repeats,
        cases.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_scan_and_batch_exact_agree_on_decisions() {
        let params = SinrParams::default();
        let world = build_world(400, 4, true, 3);
        let mut out = Vec::new();
        for (tx, rx) in world.tx.iter().zip(&world.rx) {
            let resolver = ChannelResolver::new(&params, tx);
            resolver.resolve_into(rx, 0.0, &mut out);
            for (k, &l) in rx.iter().enumerate() {
                let (decoded, total) = seed_resolve_listener(&params, tx, l);
                assert_eq!(out[k].decoded.is_some(), decoded);
                // Seed kernel (powf) and live kernel (squared-distance) agree
                // to rounding error.
                assert!((out[k].total_power - total).abs() <= 1e-9 * total.max(1.0));
            }
        }
    }

    #[test]
    fn bench_json_is_wellformed_smoke() {
        // 1 repeat on the smallest case keeps this a fast smoke test.
        let world = build_world(200, 2, false, 1);
        let params = SinrParams::default();
        assert!(seed_scan_slot(&params, &world).is_finite());
        assert!(batch_slot(&params, &world).is_finite());
        let fast = params.with_resolve(ResolveMode::fast());
        assert!(batch_slot(&fast, &world).is_finite());
    }
}
