//! `experiments sweep` — run a matrix file through the keyed runner with
//! checkpoint/resume.
//!
//! A sweep executes every trial of a [`SweepFile`]'s [`TrialSet`] through
//! the flood max-aggregation workload and streams one `mca-obs` JSONL-v1
//! `"trial"` record per trial to the out file, in key enumeration order.
//! After each record is written (and flushed), the trial's [`TrialKey`] is
//! appended to a journal file as one flushed line. Because emission order
//! is the enumeration order regardless of parallelism, the journal is
//! always a prefix of the set's key list — and because every trial is a
//! pure function of its key, resuming is trivially correct:
//!
//! 1. count the complete (newline-terminated) journal lines, verifying
//!    each against the enumeration — a mismatch means the journal belongs
//!    to a different matrix, and the sweep refuses to continue without
//!    `--fresh`;
//! 2. count the complete record lines in the out file: an interrupted
//!    writer may have torn the last line, or written a record whose
//!    journal entry never landed;
//! 3. truncate both files to `k = min(journaled, records)` lines and
//!    re-run the set from trial `k` onward.
//!
//! The resumed stream is byte-identical to an uninterrupted run — pinned
//! by `tests/sweep_resume.rs` and the CI `sweep-smoke` job. The summary
//! counts executed vs skipped trials, so journal skips are observable.

use crate::scenario_run::{scenario_flood_trial, ScenarioTrial};
use mca_analysis::{KeyedTrial, TrialKey};
use mca_obs::{trial_line, TrialRecord};
use mca_scenario::{ScenarioFileError, SweepFile, TrialSet, TrialSetError, TrialSink};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// How a sweep should execute.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Where the JSONL trial-record stream goes.
    pub out_path: PathBuf,
    /// Where completed keys are journaled.
    pub journal_path: PathBuf,
    /// Stop (leaving the sweep incomplete) after executing this many
    /// trials — the deterministic interrupt used by resume tests and CI.
    pub limit: Option<usize>,
    /// Ignore (and overwrite) any existing journal and out file.
    pub fresh: bool,
    /// Resolve trial batches across the worker pool.
    pub parallel: bool,
}

impl SweepConfig {
    /// The default configuration for a matrix file at `input`: the record
    /// stream lands next to it as `<stem>.trials.jsonl`, the journal as
    /// `<stem>.journal`.
    pub fn for_input(input: &Path) -> SweepConfig {
        let stem = input
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "sweep".to_string());
        let dir = input.parent().unwrap_or_else(|| Path::new("."));
        SweepConfig {
            out_path: dir.join(format!("{stem}.trials.jsonl")),
            journal_path: dir.join(format!("{stem}.journal")),
            limit: None,
            fresh: false,
            parallel: true,
        }
    }
}

/// What a sweep run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSummary {
    /// Total trials in the set.
    pub total: usize,
    /// Journaled trials skipped on resume.
    pub skipped: usize,
    /// Trials actually executed this run.
    pub executed: usize,
    /// Whether the whole set is now journaled (false when `limit`
    /// interrupted the run).
    pub complete: bool,
}

impl SweepSummary {
    /// The one-line summary the CLI prints: every counter the resume
    /// contract promises, machine-greppable.
    pub fn line(&self) -> String {
        format!(
            "sweep summary: total={} executed={} skipped={} complete={}",
            self.total, self.executed, self.skipped, self.complete
        )
    }
}

/// Everything that can go wrong running a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// Reading the matrix file failed.
    File(ScenarioFileError),
    /// The expanded set is invalid (duplicate scenario names).
    Set(TrialSetError),
    /// An I/O failure on the out file or journal.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A complete journal line does not match the matrix's key
    /// enumeration — the journal belongs to a different (or edited)
    /// matrix file.
    JournalMismatch {
        /// 1-based journal line.
        line: usize,
        /// The key the enumeration expects there (`None` when the journal
        /// holds more lines than the set has trials).
        expected: Option<TrialKey>,
        /// What the journal holds (`None` for an unparsable line).
        found: Option<TrialKey>,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::File(e) => write!(f, "{e}"),
            SweepError::Set(e) => write!(f, "{e}"),
            SweepError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            SweepError::JournalMismatch {
                line,
                expected,
                found,
            } => {
                write!(f, "journal line {line}: ")?;
                match found {
                    Some(found) => write!(f, "key `{found}` ")?,
                    None => write!(f, "unparsable entry ")?,
                }
                match expected {
                    Some(expected) => {
                        write!(f, "does not match the matrix (expected `{expected}`)")?
                    }
                    None => write!(f, "lies beyond the matrix's last trial")?,
                }
                write!(
                    f,
                    "; the journal belongs to a different matrix — rerun with \
                     --fresh to discard it"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ScenarioFileError> for SweepError {
    fn from(e: ScenarioFileError) -> Self {
        SweepError::File(e)
    }
}

impl From<TrialSetError> for SweepError {
    fn from(e: TrialSetError) -> Self {
        SweepError::Set(e)
    }
}

fn io_err(path: &Path) -> impl Fn(std::io::Error) -> SweepError + '_ {
    move |error| SweepError::Io {
        path: path.to_path_buf(),
        error,
    }
}

/// Reads a stream file's complete (newline-terminated) lines. Anything
/// after the last newline is a torn tail from an interrupted write;
/// reconciliation truncates it away. A missing file reads as empty.
fn complete_lines(path: &Path) -> Result<Vec<String>, SweepError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(vec![]),
        Err(e) => return Err(io_err(path)(e)),
    };
    let text = String::from_utf8_lossy(&bytes);
    let mut lines: Vec<String> = Vec::new();
    let mut rest = text.as_ref();
    while let Some(nl) = rest.find('\n') {
        lines.push(rest[..nl].to_string());
        rest = &rest[nl + 1..];
    }
    Ok(lines)
}

/// Verifies the journal's complete lines form a prefix of the set's key
/// enumeration, returning the prefix length.
fn journaled_prefix(lines: &[String], set: &TrialSet) -> Result<usize, SweepError> {
    for (i, line) in lines.iter().enumerate() {
        let found = TrialKey::parse_journal_line(line);
        let expected = (i < set.len()).then(|| set.key_at(i));
        match (&found, &expected) {
            (Some(found), Some(expected)) if found == expected => {}
            _ => {
                return Err(SweepError::JournalMismatch {
                    line: i + 1,
                    expected,
                    found,
                })
            }
        }
    }
    Ok(lines.len())
}

/// Rewrites `path` to hold exactly `lines[..k]`, each newline-terminated.
/// Skips the write when the file already has that exact content (so an
/// untouched resume doesn't dirty mtimes), and won't create a file just
/// to leave it empty.
fn write_prefix(path: &Path, lines: &[String], k: usize) -> Result<(), SweepError> {
    let mut text = String::new();
    for line in &lines[..k] {
        text.push_str(line);
        text.push('\n');
    }
    let current = match std::fs::read(path) {
        Ok(b) => Some(b),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(io_err(path)(e)),
    };
    if current.as_deref() == Some(text.as_bytes()) || (current.is_none() && text.is_empty()) {
        return Ok(());
    }
    std::fs::write(path, text).map_err(io_err(path))
}

/// The streaming sink: one flushed record line, then one flushed journal
/// line, per trial. Journal-after-record means a crash between the two
/// writes leaves the record unjournaled — resume truncates it and re-runs
/// the trial, reproducing the identical bytes.
struct JournalingSink {
    out: File,
    journal: File,
    out_path: PathBuf,
    journal_path: PathBuf,
    executed: usize,
    error: Option<SweepError>,
}

impl JournalingSink {
    fn write_trial(&mut self, trial: &KeyedTrial<ScenarioTrial>) -> Result<(), SweepError> {
        let line = trial_line(&trial_record(trial));
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .and_then(|()| self.out.flush())
            .map_err(io_err(&self.out_path))?;
        self.journal
            .write_all(trial.key.journal_line().as_bytes())
            .and_then(|()| self.journal.write_all(b"\n"))
            .and_then(|()| self.journal.flush())
            .map_err(io_err(&self.journal_path))?;
        self.executed += 1;
        Ok(())
    }
}

impl TrialSink<ScenarioTrial> for JournalingSink {
    fn record(&mut self, trial: KeyedTrial<ScenarioTrial>) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.write_trial(&trial) {
            self.error = Some(e);
        }
    }
}

/// The `mca-obs` record a keyed trial streams.
pub fn trial_record(trial: &KeyedTrial<ScenarioTrial>) -> TrialRecord {
    let t = &trial.result;
    TrialRecord {
        scenario: trial.key.scenario_id.clone(),
        seed: trial.key.seed,
        coverage: t.coverage,
        full_coverage: t.full_coverage,
        receptions: t.receptions,
        busy_failures: t.busy_failures,
        env_drops: t.env_drops,
        slots: t.slots,
    }
}

/// Runs (or resumes) `sweep` under `cfg`. See the module docs for the
/// resume contract.
pub fn run_sweep(sweep: &SweepFile, cfg: &SweepConfig) -> Result<SweepSummary, SweepError> {
    let set = sweep.trial_set()?;
    let total = set.len();

    // Reconciliation: how much of the set is already safely on disk.
    let skipped = if cfg.fresh {
        write_prefix(&cfg.out_path, &[], 0)?;
        write_prefix(&cfg.journal_path, &[], 0)?;
        0
    } else {
        let journal_lines = complete_lines(&cfg.journal_path)?;
        let journaled = journaled_prefix(&journal_lines, &set)?;
        let records = complete_lines(&cfg.out_path)?;
        let k = journaled.min(records.len());
        write_prefix(&cfg.out_path, &records, k)?;
        write_prefix(&cfg.journal_path, &journal_lines, k)?;
        k
    };

    let end = match cfg.limit {
        Some(limit) => total.min(skipped.saturating_add(limit)),
        None => total,
    };

    let mut sink = JournalingSink {
        out: open_append(&cfg.out_path)?,
        journal: open_append(&cfg.journal_path)?,
        out_path: cfg.out_path.clone(),
        journal_path: cfg.journal_path.clone(),
        executed: 0,
        error: None,
    };
    set.run_range(skipped..end, cfg.parallel, scenario_flood_trial, &mut sink);
    if let Some(e) = sink.error {
        return Err(e);
    }
    Ok(SweepSummary {
        total,
        skipped,
        executed: sink.executed,
        complete: end == total,
    })
}

/// Loads the matrix file at `path` and runs it under `cfg`.
pub fn run_sweep_file(path: &Path, cfg: &SweepConfig) -> Result<SweepSummary, SweepError> {
    let sweep = SweepFile::load(path)?;
    run_sweep(&sweep, cfg)
}

fn open_append(path: &Path) -> Result<File, SweepError> {
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(io_err(path))
}
