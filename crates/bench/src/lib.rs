//! # `mca-bench` — experiment harness
//!
//! One function per experiment of `EXPERIMENTS.md` (the paper is a theory
//! paper: its "tables and figures" are the complexity claims of Theorems
//! 22/24 and Lemmas 6-21, reproduced here as scaling tables). The
//! `experiments` binary prints any subset; the criterion benches wrap the
//! same harness for wall-clock tracking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary_bench;
pub mod golden;
pub mod profile;
pub mod repair_bench;
pub mod scenario_run;
pub mod serve;
pub mod shard_bench;
pub mod sinr_bench;
pub mod sweep;

pub use adversary_bench::{
    adversary_bench_json, adversary_trial, run_adversary_bench, AdversaryBenchCase,
};
pub use golden::{check_golden_trials, golden_trials_json, golden_trials_json_observed};
pub use profile::{
    default_profile_scenario, profile_json, profile_scenario, profile_supported, profile_table,
    ProfileRun, COVERAGE_GATE, PROFILE_SEED,
};
pub use repair_bench::{repair_bench_json, repair_trial, run_repair_bench, RepairBenchCase};
pub use scenario_run::{
    run_scenario, scenario_flood_trial, scenario_flood_trial_observed, ScenarioTrial,
};
pub use serve::{pending_inputs, serve, serve_once, ServeConfig, ServeReport};
pub use shard_bench::shard_bench_json;
pub use sweep::{run_sweep, run_sweep_file, SweepConfig, SweepError, SweepSummary};

/// Verbosity of the `experiments` binary's progress stream (stderr).
/// Set once via the global `--log-level {off,summary,verbose}` flag;
/// tables and JSON artifacts (stdout) are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogLevel {
    /// No progress output: stdout carries the results, stderr only errors.
    Off,
    /// End-of-run summaries (`[wrote ...]`, `[... done in Ns]`) — the default.
    #[default]
    Summary,
    /// Summaries plus per-table timing lines.
    Verbose,
}

impl LogLevel {
    /// Parses a `--log-level` argument.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "off" => Some(LogLevel::Off),
            "summary" => Some(LogLevel::Summary),
            "verbose" => Some(LogLevel::Verbose),
            _ => None,
        }
    }
}

static LOG_LEVEL: std::sync::OnceLock<LogLevel> = std::sync::OnceLock::new();

/// Pins the progress verbosity for the process (first caller wins; later
/// calls are ignored, mirroring how thread-pool pinning behaves).
pub fn set_log_level(level: LogLevel) {
    let _ = LOG_LEVEL.set(level);
}

/// The pinned progress verbosity ([`LogLevel::Summary`] until
/// [`set_log_level`] runs).
pub fn log_level() -> LogLevel {
    LOG_LEVEL.get().copied().unwrap_or_default()
}

use mca_analysis::{run_trials, Summary, Table};
use mca_baselines as baselines;
use mca_core::ruling::{self, ProbPolicy, RulingConfig, RulingOutcome, RulingSet, TimeoutRule};
use mca_core::{
    aggregate, audit_structure, build_structure, color_nodes, AlgoConfig, Constants,
    InterclusterMode, MaxAgg, NetworkEnv, StructureConfig, SubstrateMode, Tdma,
};
use mca_geom::{Deployment, Point};
use mca_radio::{Channel, Engine, NodeId};
use mca_sinr::SinrParams;
use rand::{rngs::SmallRng, SeedableRng};

/// One full build+aggregate measurement.
#[derive(Debug, Clone)]
pub struct AggMeasurement {
    /// Construction slots.
    pub build_slots: u64,
    /// Follower-to-reporter slots.
    pub follower_slots: u64,
    /// Tree + inter-cluster slots.
    pub rest_slots: u64,
    /// Total aggregation slots.
    pub agg_slots: u64,
    /// Measured TDMA color count.
    pub phi: u16,
    /// Max degree of the communication graph.
    pub delta: usize,
    /// Approximate diameter.
    pub diameter: u32,
    /// Whether the sink learned the true maximum.
    pub correct: bool,
    /// Fraction of nodes holding the true maximum at the end.
    pub coverage: f64,
    /// Peak of the Lemma-19 contention trace (`P_c(v)/f_v`).
    pub contention_peak: f64,
    /// Same-color separation violations (audit).
    pub color_violations: usize,
}

/// Standard workload: uniform deployment, max-aggregation via the flood
/// inter-cluster mode.
pub fn measure_aggregation(
    n: usize,
    side: f64,
    channels: u16,
    cluster_radius: f64,
    substrate: SubstrateMode,
    consts: Constants,
    seed: u64,
) -> AggMeasurement {
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let deploy = Deployment::uniform(n, side, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let graph = env.comm_graph();
    let algo = AlgoConfig::new(channels, mca_sinr::NodeKnowledge::exact(&params, n), consts);
    let mut cfg = StructureConfig::new(algo, seed);
    cfg.substrate = substrate;
    cfg.cluster_radius = cluster_radius;
    let structure = build_structure(&env, &cfg);
    let audit = audit_structure(&env, &structure, cfg.cluster_radius);

    let inputs: Vec<i64> = (0..n).map(|i| (i as i64 * 7919) % 100_000).collect();
    let expect = *inputs.iter().max().unwrap();
    let d_hat = graph.diameter_approx() + 2;
    let out = aggregate(
        &env,
        &structure,
        &algo,
        MaxAgg,
        &inputs,
        InterclusterMode::Flood,
        d_hat,
        seed ^ 0xA66,
    );
    let holders = out.values.iter().filter(|v| **v == Some(expect)).count();
    AggMeasurement {
        build_slots: structure.report.total_slots(),
        follower_slots: out.follower_slots,
        rest_slots: out.tree_slots + out.inter_slots,
        agg_slots: out.total_slots(),
        phi: structure.phi,
        delta: graph.max_degree(),
        diameter: graph.diameter_approx(),
        correct: out.values[0] == Some(expect),
        coverage: holders as f64 / n as f64,
        contention_peak: out.contention_peak,
        color_violations: audit.color_violations,
    }
}

fn med(xs: &[u64]) -> f64 {
    Summary::of_counts(xs.iter().copied()).median()
}

/// E1 — Theorem 22 headline: aggregation slots vs `F` (dense regime).
pub fn e1_speedup(trials: usize) -> Table {
    let mut t = Table::new(
        "E1 (Theorem 22): aggregation slots vs channels -- n=500, dense",
        [
            "F",
            "follower slots",
            "agg slots",
            "speedup",
            "contention peak",
        ],
    );
    let mut base: Option<f64> = None;
    for f in [1u16, 2, 4, 8, 16] {
        let out = run_trials(100 + f as u64, trials, |seed| {
            measure_aggregation(
                500,
                6.5,
                f,
                2.0,
                SubstrateMode::Oracle,
                Constants::practical(),
                seed,
            )
        });
        let fol: Vec<u64> = out.results.iter().map(|m| m.follower_slots).collect();
        let tot: Vec<u64> = out.results.iter().map(|m| m.agg_slots).collect();
        let peak = out.summarize(|m| m.contention_peak).median();
        let b = *base.get_or_insert(med(&fol));
        t.row([
            f.to_string(),
            format!("{:.0}", med(&fol)),
            format!("{:.0}", med(&tot)),
            format!("{:.2}x", b / med(&fol)),
            format!("{peak:.2}"),
        ]);
    }
    t
}

/// E2 — Theorem 22: slots vs `n` at fixed density, `F = 8`.
pub fn e2_scaling_n(trials: usize) -> Table {
    let mut t = Table::new(
        "E2 (Theorem 22): slots vs n at fixed density, F = 8",
        ["n", "delta", "D", "build slots", "agg slots"],
    );
    for n in [150usize, 300, 600, 1200] {
        let side = (n as f64 / 8.0).sqrt();
        let out = run_trials(200 + n as u64, trials, |seed| {
            measure_aggregation(
                n,
                side,
                8,
                1.5,
                SubstrateMode::Oracle,
                Constants::practical(),
                seed,
            )
        });
        t.row([
            n.to_string(),
            format!("{:.0}", out.summarize(|m| m.delta as f64).median()),
            format!("{:.0}", out.summarize(|m| m.diameter as f64).median()),
            format!("{:.0}", out.summarize(|m| m.build_slots as f64).median()),
            format!("{:.0}", out.summarize(|m| m.agg_slots as f64).median()),
        ]);
    }
    t
}

/// E3 — Theorem 22: slots vs `delta` at fixed `n`, `F` in {1, 8}.
pub fn e3_delta(trials: usize) -> Table {
    let mut t = Table::new(
        "E3 (Theorem 22): follower slots vs delta at n = 400 -- F=1 vs F=8",
        ["side", "delta", "F=1 slots", "F=8 slots", "ratio"],
    );
    for side in [11.0, 8.0, 6.0, 4.5] {
        let one = run_trials(300, trials, |seed| {
            measure_aggregation(
                400,
                side,
                1,
                2.0,
                SubstrateMode::Oracle,
                Constants::practical(),
                seed,
            )
        });
        let eight = run_trials(300, trials, |seed| {
            measure_aggregation(
                400,
                side,
                8,
                2.0,
                SubstrateMode::Oracle,
                Constants::practical(),
                seed,
            )
        });
        let f1 = one.summarize(|m| m.follower_slots as f64).median();
        let f8 = eight.summarize(|m| m.follower_slots as f64).median();
        t.row([
            format!("{side:.1}"),
            format!("{:.0}", one.summarize(|m| m.delta as f64).median()),
            format!("{f1:.0}"),
            format!("{f8:.0}"),
            format!("{:.2}x", f1 / f8),
        ]);
    }
    t
}

/// E4 — Theorem 24: coloring slots and palette vs `F`, with the
/// single-channel baseline.
pub fn e4_coloring(trials: usize) -> Table {
    let params = SinrParams::default();
    let mut t = Table::new(
        "E4 (Theorem 24): coloring -- n=300, dense",
        ["algorithm", "F", "slots", "colors / (delta+1)", "proper"],
    );
    for f in [1u16, 4, 16] {
        let out = run_trials(400 + f as u64, trials, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let deploy = Deployment::uniform(300, 6.0, &mut rng);
            let env = NetworkEnv::new(params, &deploy);
            let graph = env.comm_graph();
            let algo = AlgoConfig::practical(f, &params, 300);
            let mut cfg = StructureConfig::new(algo, seed);
            cfg.substrate = SubstrateMode::Oracle;
            // Coloring correctness requires the paper's r_c ≤ ε·R_T/4.
            cfg.cluster_radius = 1.0;
            let structure = build_structure(&env, &cfg);
            let col = color_nodes(&env, &structure, &algo, seed);
            let proper = col.uncolored == 0 && {
                let colors: Vec<u32> = col.colors.iter().map(|c| c.unwrap_or(u32::MAX)).collect();
                graph.coloring_violation(&colors).is_none()
            };
            (
                col.total_slots(),
                col.palette_size() as f64 / (graph.max_degree() + 1) as f64,
                proper,
            )
        });
        t.row([
            "structure coloring (paper s7)".to_string(),
            f.to_string(),
            format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
            format!("{:.2}", out.summarize(|r| r.1).median()),
            format!("{:.0}%", out.fraction(|r| r.2) * 100.0),
        ]);
    }
    let out = run_trials(444, trials, |seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(300, 6.0, &mut rng);
        let graph = mca_geom::CommGraph::build(deploy.points(), 4.0);
        let algo = AlgoConfig::practical(1, &params, 300);
        let b = baselines::run_single_coloring(&params, deploy.points(), &algo, 1024, seed);
        let colors: Vec<u32> = b.colors.iter().map(|c| c.unwrap()).collect();
        (
            b.slots,
            b.palette_size() as f64 / (graph.max_degree() + 1) as f64,
            graph.coloring_violation(&colors).is_none(),
        )
    });
    t.row([
        "single-channel ruling phases".to_string(),
        "1".to_string(),
        format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
        format!("{:.2}", out.summarize(|r| r.1).median()),
        format!("{:.0}%", out.fraction(|r| r.2) * 100.0),
    ]);
    t
}

/// E5 — Lemma 6: ruling-set rounds vs `n` on constant-density sets.
pub fn e5_ruling(trials: usize) -> Table {
    let params = SinrParams::default();
    let mut t = Table::new(
        "E5 (Lemma 6): ruling-set rounds vs n (constant-density inputs)",
        [
            "n (field)",
            "participants",
            "median halt round",
            "independent",
            "dominating",
        ],
    );
    for exp in [8u32, 10, 12] {
        let n = 1usize << exp;
        let out = run_trials(500 + n as u64, trials, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let side = (n as f64 / 2.0).sqrt();
            let d = Deployment::uniform(n, side, &mut rng);
            let dom = mca_core::dominate::oracle(d.points(), 1.5, seed);
            let positions: Vec<Point> = dom
                .dominators()
                .iter()
                .map(|id| d.points()[id.index()])
                .collect();
            let k = positions.len();
            let r = 3.0;
            let rcfg = RulingConfig {
                radius: r,
                prob: ProbPolicy::Adaptive {
                    start: 0.5 / k as f64,
                    busy_threshold: params.clear_threshold_for(r),
                },
                p_cap: 0.25,
                rounds: 60 * (exp as u64),
                channel: Channel::FIRST,
                group: None,
                tdma: Tdma::trivial(ruling::SLOTS_PER_ROUND),
                color: 0,
                params,
                timeout_join: TimeoutRule::Join, // the paper's §4 rule
            };
            let protocols: Vec<RulingSet> = (0..k)
                .map(|i| RulingSet::new(NodeId(i as u32), rcfg))
                .collect();
            let mut engine = Engine::new(params, positions.clone(), protocols, seed);
            engine.run_until_done(rcfg.tdma.slots_for_rounds(rcfg.rounds) + 3);
            let out = engine.into_protocols();
            let members: Vec<usize> = (0..k).filter(|&i| out[i].in_set()).collect();
            let mut independent = true;
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    if positions[i].dist(positions[j]) <= r {
                        independent = false;
                    }
                }
            }
            let dominated = out
                .iter()
                .all(|p| p.in_set() || matches!(p.outcome(), RulingOutcome::Dominated { .. }));
            let halt = Summary::of_counts(out.iter().filter_map(|p| p.halt_round()));
            (k, halt.median(), independent, dominated)
        });
        t.row([
            format!("{n}"),
            format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
            format!("{:.0}", out.summarize(|r| r.1).median()),
            format!("{:.0}%", out.fraction(|r| r.2) * 100.0),
            format!("{:.0}%", out.fraction(|r| r.3) * 100.0),
        ]);
    }
    t
}

/// E6 — Lemma 7: distributed dominating set, rounds and density vs `n`.
pub fn e6_dominate(trials: usize) -> Table {
    let mut t = Table::new(
        "E6 (Lemma 7): distributed dominating set (r_c = 1.5, fixed density)",
        ["n", "slots", "density", "coverage", "timeout joins"],
    );
    for n in [200usize, 400, 800, 1600] {
        let out = run_trials(600 + n as u64, trials, |seed| {
            let params = SinrParams::default();
            let mut rng = SmallRng::seed_from_u64(seed);
            let side = (n as f64 / 6.0).sqrt();
            let d = Deployment::uniform(n, side, &mut rng);
            let algo = AlgoConfig::practical(4, &params, n);
            let mut dc = mca_core::dominate::DominateConfig::from_algo(&algo);
            dc.radius = 1.5;
            dc.busy_threshold = params.received_power(3.0);
            let protocols: Vec<mca_core::dominate::DominateProtocol> = (0..n)
                .map(|i| mca_core::dominate::DominateProtocol::new(NodeId(i as u32), dc))
                .collect();
            let mut engine = Engine::new(params, d.points().to_vec(), protocols, seed);
            engine.run_until_done(dc.rounds * mca_core::dominate::SLOTS_PER_ROUND as u64 + 3);
            let slots = engine.slot();
            let out = mca_core::dominate::collect(engine.protocols(), slots);
            let doms: Vec<Point> = out
                .dominators()
                .iter()
                .map(|id| d.points()[id.index()])
                .collect();
            let density = if doms.is_empty() {
                0
            } else {
                mca_geom::SpatialGrid::build(&doms, 1.5).max_ball_occupancy(&doms, 1.5)
            };
            (
                slots,
                density,
                1.0 - out.uncovered() as f64 / n as f64,
                out.timeout_joins,
            )
        });
        t.row([
            n.to_string(),
            format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
            format!("{:.0}", out.summarize(|r| r.1 as f64).median()),
            format!("{:.1}%", out.summarize(|r| r.2).median() * 100.0),
            format!("{:.0}", out.summarize(|r| r.3 as f64).median()),
        ]);
    }
    t
}

/// E7 — Lemmas 12 vs 13: CSA variants across the crossover.
pub fn e7_csa(trials: usize) -> Table {
    let params = SinrParams::default();
    let mut t = Table::new(
        "E7 (Lemmas 12/13): CSA large vs small -- one cluster, F = 16",
        [
            "cluster size",
            "large slots",
            "small slots",
            "large est ratio",
            "small est ratio",
        ],
    );
    for m in [12usize, 24, 48, 96] {
        let out = run_trials(700 + m as u64, trials, |seed| {
            let mut positions = vec![Point::ORIGIN];
            let mut rng = SmallRng::seed_from_u64(seed);
            for i in 0..m {
                let theta = i as f64 / m as f64 * std::f64::consts::TAU;
                let rad = 0.2 + 0.75 * rand::Rng::gen::<f64>(&mut rng);
                positions.push(Point::unit(theta) * rad);
            }
            let algo = AlgoConfig::practical(16, &params, (m + 1).max(64));

            let csa_cfg = mca_core::csa::CsaConfig {
                delta_hat: (m as u64 * 4).max(8),
                lambda: 0.5,
                rounds_per_phase: algo.csa_rounds_per_phase(),
                settle_threshold: algo.csa_settle_threshold(),
                channel: Channel::FIRST,
                tdma: Tdma::new(1, 1),
                params,
            };
            let protocols: Vec<mca_core::csa::CsaProtocol> = (0..=m)
                .map(|i| {
                    let role = if i == 0 {
                        mca_core::csa::CsaRole::Coordinator
                    } else {
                        mca_core::csa::CsaRole::Member
                    };
                    mca_core::csa::CsaProtocol::new(role, NodeId(0), 0, csa_cfg)
                })
                .collect();
            let mut engine = Engine::new(params, positions.clone(), protocols, seed);
            let cap = csa_cfg.tdma.slots_for_rounds(csa_cfg.total_rounds()) + 1;
            engine.run_until(cap, |ps: &[mca_core::csa::CsaProtocol]| {
                ps.iter().all(|p| p.is_satisfied())
            });
            let large_slots = engine.slot();
            let large_est = engine.protocols()[0].coordinator_estimate().unwrap_or(0);

            let seats: Vec<Option<mca_core::csa_small::SmallSeat>> = (0..=m)
                .map(|i| {
                    Some(mca_core::csa_small::SmallSeat {
                        cluster: NodeId(0),
                        color: 0,
                        is_dominator: i == 0,
                    })
                })
                .collect();
            let small = mca_core::csa_small::run_csa_small(
                &params,
                &positions,
                &seats,
                &algo,
                1,
                1.0,
                (m as u64 * 4).max(8),
                seed,
            );
            let small_est = small.estimate[0].unwrap_or(0);
            (
                large_slots,
                small.total_slots(),
                large_est as f64 / (m + 1) as f64,
                small_est as f64 / (m + 1) as f64,
            )
        });
        t.row([
            (m + 1).to_string(),
            format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
            format!("{:.0}", out.summarize(|r| r.1 as f64).median()),
            format!("{:.2}", out.summarize(|r| r.2).median()),
            format!("{:.2}", out.summarize(|r| r.3).median()),
        ]);
    }
    t
}

/// E8 — Lemmas 15/16: reporter election quality and convergecast cost.
pub fn e8_reporters(trials: usize) -> Table {
    let params = SinrParams::default();
    let mut t = Table::new(
        "E8 (Lemmas 15/16): reporter election + tree -- n=400 dense, F sweep",
        [
            "F",
            "channel fill",
            "multi-reporter channels",
            "tree slots/phi",
            "Lemma-16 send slots",
        ],
    );
    for f in [2u16, 4, 8, 16] {
        let out = run_trials(800 + f as u64, trials, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let deploy = Deployment::uniform(400, 6.0, &mut rng);
            let env = NetworkEnv::new(params, &deploy);
            let algo = AlgoConfig::practical(f, &params, 400);
            let mut cfg = StructureConfig::new(algo, seed);
            cfg.substrate = SubstrateMode::Oracle;
            cfg.cluster_radius = 2.0;
            let structure = build_structure(&env, &cfg);
            let audit = audit_structure(&env, &structure, cfg.cluster_radius);
            let inputs = vec![1i64; 400];
            let agg = aggregate(
                &env,
                &structure,
                &algo,
                MaxAgg,
                &inputs,
                InterclusterMode::Flood,
                env.comm_graph().diameter_approx() + 2,
                seed,
            );
            (
                audit.channel_fill,
                audit.multi_reporter_channels,
                agg.tree_slots / structure.phi.max(1) as u64,
            )
        });
        let tree = mca_core::tree::HeapTree::new(f);
        t.row([
            f.to_string(),
            format!("{:.0}%", out.summarize(|r| r.0).median() * 100.0),
            format!("{:.1}", out.summarize(|r| r.1 as f64).mean()),
            format!("{:.0}", out.summarize(|r| r.2 as f64).median()),
            format!("{}", tree.lemma16_slots()),
        ]);
    }
    t
}

/// E10 — lower bounds: the exponential chain and the `D` term.
pub fn e10_lower_bounds(trials: usize) -> (Table, Table) {
    let params = SinrParams::default();
    let mut chain = Table::new(
        "E10a (lower bound): exponential chain -- max concurrent descending successes",
        ["n", "max successes (exhaustive)", "beta >= 2^(1/alpha)"],
    );
    for n in [6usize, 8, 10, 12] {
        let worst = baselines::max_concurrent_successes_exhaustive(&params, n);
        chain.row([
            n.to_string(),
            worst.to_string(),
            params.chain_lower_bound_applies().to_string(),
        ]);
    }
    let mut dterm = Table::new(
        "E10b (lower bound): inter-cluster slots vs D -- corridors, F = 4",
        ["length", "D", "inter rounds (slots/phi)", "follower slots"],
    );
    for len in [25.0, 50.0, 100.0] {
        let out = run_trials(1000 + len as u64, trials, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let deploy = Deployment::corridor(240, len, 4.0, &mut rng);
            let env = NetworkEnv::new(params, &deploy);
            let graph = env.comm_graph();
            let algo = AlgoConfig::practical(4, &params, 240);
            let mut cfg = StructureConfig::new(algo, seed);
            cfg.substrate = SubstrateMode::Oracle;
            let structure = build_structure(&env, &cfg);
            let inputs = vec![1i64; 240];
            let agg = aggregate(
                &env,
                &structure,
                &algo,
                MaxAgg,
                &inputs,
                InterclusterMode::Flood,
                graph.diameter_approx() + 2,
                seed,
            );
            (
                graph.diameter_approx(),
                agg.inter_slots / structure.phi.max(1) as u64,
                agg.follower_slots,
            )
        });
        dterm.row([
            format!("{len:.0}"),
            format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
            format!("{:.0}", out.summarize(|r| r.1 as f64).median()),
            format!("{:.0}", out.summarize(|r| r.2 as f64).median()),
        ]);
    }
    (chain, dterm)
}

/// E11 — Lemma 2: guaranteed reception radius under `r1`-separation.
pub fn e11_lemmas(trials: usize) -> Table {
    let params = SinrParams::default();
    let mut t = Table::new(
        "E11 (Lemma 2): reception at r2 = t*r1 under r1-separated transmitters",
        [
            "r1",
            "analytic r2",
            "reception rate at r2",
            "rate at min(2*r2, r1/2)",
        ],
    );
    for r1 in [3.0f64, 6.0, 12.0] {
        let r2 = mca_sinr::bounds::lemma2_max_r2(&params, r1);
        let out = run_trials(1100 + r1 as u64, trials.max(3), |seed| {
            let mut txs = Vec::new();
            for i in 0..12 {
                for j in 0..12 {
                    txs.push(Point::new(i as f64 * r1, j as f64 * r1));
                }
            }
            let mut ok_r2 = 0;
            let mut ok_far = 0;
            let total = txs.len();
            let mut rng = SmallRng::seed_from_u64(seed);
            for (k, &tx) in txs.iter().enumerate() {
                let theta = rand::Rng::gen::<f64>(&mut rng) * std::f64::consts::TAU;
                let l1 = tx + Point::unit(theta) * r2;
                let l2 = tx + Point::unit(theta) * (2.0 * r2).min(r1 * 0.49);
                let o1 = mca_sinr::resolve_listener(&params, &txs, l1);
                let o2 = mca_sinr::resolve_listener(&params, &txs, l2);
                if o1.decoded == Some(k) {
                    ok_r2 += 1;
                }
                if o2.decoded == Some(k) {
                    ok_far += 1;
                }
            }
            (ok_r2 as f64 / total as f64, ok_far as f64 / total as f64)
        });
        t.row([
            format!("{r1:.0}"),
            format!("{r2:.2}"),
            format!("{:.0}%", out.summarize(|r| r.0).median() * 100.0),
            format!("{:.0}%", out.summarize(|r| r.1).median() * 100.0),
        ]);
    }
    t
}

/// T1 — related-work comparison at one dense configuration.
pub fn t1_comparison(trials: usize) -> Table {
    let params = SinrParams::default();
    let n = 400;
    let side = 6.0;
    let mut t = Table::new(
        "T1: max-aggregation comparison -- n=400, dense, SINR unless noted",
        ["algorithm", "slots (median)", "correct"],
    );
    for f in [8u16, 1] {
        let out = run_trials(1200 + f as u64, trials, |seed| {
            let m = measure_aggregation(
                n,
                side,
                f,
                2.0,
                SubstrateMode::Oracle,
                Constants::practical(),
                seed,
            );
            (m.build_slots + m.agg_slots, m.correct)
        });
        t.row([
            format!("aggregation structure (F = {f}, incl. build)"),
            format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
            format!("{:.0}%", out.fraction(|r| r.1) * 100.0),
        ]);
    }
    let out = run_trials(1250, trials, |seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let graph = mca_geom::CommGraph::build(deploy.points(), 4.0);
        let inputs: Vec<i64> = (0..n).map(|i| (i as i64 * 7919) % 100_000).collect();
        let expect = *inputs.iter().max().unwrap();
        let b = baselines::run_single_channel(
            &params,
            deploy.points(),
            &inputs,
            NodeId(0),
            graph.diameter_approx() + 2,
            graph.max_degree() as u64,
            n,
            seed,
        );
        (b.slots, b.results[0] == Some(expect))
    });
    t.row([
        "single-channel decay tree ([24]-style)".to_string(),
        format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
        format!("{:.0}%", out.fraction(|r| r.1) * 100.0),
    ]);
    let out = run_trials(1260, trials, |seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let graph = mca_geom::CommGraph::build(deploy.points(), 4.0);
        let inputs: Vec<i64> = (0..n).map(|i| (i as i64 * 7919) % 100_000).collect();
        let expect = *inputs.iter().max().unwrap();
        let (values, slots) = baselines::run_naive_tdma(
            &params,
            deploy.points(),
            &inputs,
            graph.diameter_approx() + 2,
            seed,
        );
        (slots, values.iter().all(|&v| v == expect))
    });
    t.row([
        "naive deterministic TDMA".to_string(),
        format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
        format!("{:.0}%", out.fraction(|r| r.1) * 100.0),
    ]);
    let out = run_trials(1270, trials, |seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let inputs: Vec<i64> = (0..n).map(|i| (i as i64 * 7919) % 100_000).collect();
        let expect = *inputs.iter().max().unwrap();
        let g = baselines::run_graph_flood(deploy.points(), 4.0, &inputs, 8, 0.2, 400_000, seed);
        (g.slots, g.values.iter().all(|&v| v == expect))
    });
    t.row([
        "graph-model multichannel flood ([4]-style, F = 8)".to_string(),
        format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
        format!("{:.0}%", out.fraction(|r| r.1) * 100.0),
    ]);
    t
}

/// A1 — ablations: substrate, backoff, channel-allocation constant.
pub fn a1_ablations(trials: usize) -> Table {
    let mut t = Table::new(
        "A1: ablations -- n=400 dense, F=8",
        [
            "variant",
            "build slots",
            "agg slots",
            "contention peak",
            "correct",
        ],
    );
    let run_variant = |t: &mut Table, name: &str, substrate: SubstrateMode, consts: Constants| {
        let out = run_trials(1300 + name.len() as u64, trials, |seed| {
            measure_aggregation(400, 6.0, 8, 2.0, substrate, consts, seed)
        });
        t.row([
            name.to_string(),
            format!("{:.0}", out.summarize(|m| m.build_slots as f64).median()),
            format!("{:.0}", out.summarize(|m| m.agg_slots as f64).median()),
            format!("{:.2}", out.summarize(|m| m.contention_peak).median()),
            format!("{:.0}%", out.fraction(|m| m.correct) * 100.0),
        ]);
    };
    run_variant(
        &mut t,
        "baseline (oracle substrate)",
        SubstrateMode::Oracle,
        Constants::practical(),
    );
    run_variant(
        &mut t,
        "distributed substrate",
        SubstrateMode::Distributed,
        Constants::practical(),
    );
    let mut no_backoff = Constants::practical();
    no_backoff.omega2 = 1e6;
    run_variant(
        &mut t,
        "backoff disabled (omega2 huge)",
        SubstrateMode::Oracle,
        no_backoff,
    );
    let mut coarse = Constants::practical();
    coarse.c1 = 8.0;
    run_variant(
        &mut t,
        "coarse channel allocation (c1 = 8)",
        SubstrateMode::Oracle,
        coarse,
    );
    t
}

/// A2 — fault injection: jamming and crashes on the backbone flood.
pub fn a2_faults(trials: usize) -> Table {
    use mca_core::aggregate::intercluster::{FloodCfg, FloodCombine};
    use mca_radio::{FaultPlan, JamSpec};
    let params = SinrParams::default();
    let mut t = Table::new(
        "A2: flood-combine under faults -- 24-dominator backbone",
        ["scenario", "nodes with global max", "slots"],
    );
    for (name, jam, duty, crashes, hop) in [
        ("fault-free", 0.0f64, 1u16, 0usize, 0u16),
        ("25%-duty jammer (100x noise)", 100.0, 4, 0, 0),
        ("constant jammer (100x noise)", 100.0, 1, 0, 0),
        ("3 crashed dominators", 0.0, 1, 3, 0),
        ("constant jammer + 4-ch hopping", 100.0, 1, 0, 4),
    ] {
        let out = run_trials(
            1400 + crashes as u64 + jam as u64 + hop as u64,
            trials,
            |seed| {
                let k = 24;
                let mut rng = SmallRng::seed_from_u64(seed);
                let deploy = Deployment::uniform(k, 25.0, &mut rng);
                let cfg = FloodCfg {
                    q: 0.2,
                    flood_rounds: 600,
                    tail_rounds: 100,
                    tdma: Tdma::new(1, 1),
                    hop_channels: hop,
                };
                let protocols: Vec<FloodCombine<MaxAgg>> = (0..k)
                    .map(|i| FloodCombine::dominator(MaxAgg, cfg, 0, i as i64))
                    .collect();
                let mut faults = FaultPlan::none();
                if jam > 0.0 {
                    // The flood lives on channel 0; `duty` of 4 means the
                    // adversary hits it one slot in four.
                    faults.jam(JamSpec::Random {
                        t: 1,
                        total: duty,
                        power: jam,
                        seed: seed ^ 0xBAD,
                    });
                }
                for c in 0..crashes {
                    faults.crash_at(c as u32, 150);
                }
                let mut engine = Engine::new(params, deploy.points().to_vec(), protocols, seed)
                    .with_faults(faults);
                engine.run_until_done(cfg.flood_rounds + cfg.tail_rounds + 1);
                let expect = (k - 1) as i64;
                let holders = engine
                    .protocols()
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| *i >= crashes && *p.value() == expect)
                    .count();
                (holders, k - crashes, engine.slot())
            },
        );
        t.row([
            name.to_string(),
            format!(
                "{:.0}/{}",
                out.summarize(|r| r.0 as f64).median(),
                out.results[0].1
            ),
            format!("{:.0}", out.summarize(|r| r.2 as f64).median()),
        ]);
    }
    t
}

/// E12 — applications of the structure: leader election and single-source
/// broadcast inherit Theorem 22's cost and channel speedup.
pub fn e12_applications(trials: usize) -> Table {
    use mca_core::{broadcast, elect_leader};
    let mut t = Table::new(
        "E12: leader election + broadcast on the structure -- n=300, dense",
        ["F", "leader slots", "agreement", "bcast slots", "coverage"],
    );
    let params = SinrParams::default();
    for channels in [1u16, 4, 8] {
        let out = run_trials(1500 + channels as u64, trials, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let deploy = Deployment::uniform(300, 6.0, &mut rng);
            let env = NetworkEnv::new(params, &deploy);
            let algo = AlgoConfig::practical(channels, &params, 300);
            let mut cfg = StructureConfig::new(algo, seed);
            cfg.substrate = SubstrateMode::Oracle;
            cfg.cluster_radius = 2.0;
            let s = build_structure(&env, &cfg);
            let d_hat = env.comm_graph().diameter_approx() + 2;
            let lead = elect_leader(&env, &s, &algo, d_hat, seed ^ 0x1EAD);
            let bc = broadcast(&env, &s, &algo, NodeId(1), 0xCAFE, d_hat, seed ^ 0xBC);
            (
                lead.total_slots(),
                lead.agreement as f64 / 300.0,
                bc.total_slots(),
                bc.coverage as f64 / 300.0,
            )
        });
        t.row([
            format!("{channels}"),
            format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
            format!("{:.0}%", out.summarize(|r| r.1).median() * 100.0),
            format!("{:.0}", out.summarize(|r| r.2 as f64).median()),
            format!("{:.0}%", out.summarize(|r| r.3).median() * 100.0),
        ]);
    }
    t
}

/// E13 — multiple-message broadcast: the gossip phase grows linearly in
/// `k` (each node must *receive* `k` distinct packets — incompressible).
pub fn e13_multimessage(trials: usize) -> Table {
    use mca_core::broadcast_many;
    let mut t = Table::new(
        "E13: k-message broadcast (hoist + backbone gossip) -- n=150, F=4",
        [
            "k",
            "hoist slots",
            "gossip slots",
            "gossip slots/k",
            "full coverage",
        ],
    );
    let params = SinrParams::default();
    for k in [1usize, 2, 4, 8, 16] {
        let out = run_trials(1600 + k as u64, trials, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let deploy = Deployment::uniform(150, 10.0, &mut rng);
            let env = NetworkEnv::new(params, &deploy);
            let algo = AlgoConfig::practical(4, &params, 150);
            let mut cfg = StructureConfig::new(algo, seed);
            cfg.substrate = SubstrateMode::Oracle;
            let s = build_structure(&env, &cfg);
            let d_hat = env.comm_graph().diameter_approx() + 2;
            let messages: Vec<(NodeId, u64)> = (0..k)
                .map(|i| (NodeId((i * 150 / k) as u32), i as u64))
                .collect();
            let out = broadcast_many(&env, &s, &algo, &messages, d_hat, seed ^ 0x60551);
            (
                out.hoist_slots,
                out.gossip_slots,
                out.full_coverage as f64 / 150.0,
            )
        });
        let gossip = out.summarize(|r| r.1 as f64).median();
        t.row([
            format!("{k}"),
            format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
            format!("{gossip:.0}"),
            format!("{:.0}", gossip / k as f64),
            format!("{:.0}%", out.summarize(|r| r.2).median() * 100.0),
        ]);
    }
    t
}

/// E14 — the compressibility limit (paper's contrast with its reference
/// \[37\]): on the same single-hop instance, aggregation speeds up
/// linearly with `F` while local information exchange is flat — a
/// listener decodes one packet per slot no matter how many channels exist.
pub fn e14_compressibility(trials: usize) -> Table {
    use baselines::{run_info_exchange, ExchangeConfig};
    let mut t = Table::new(
        "E14: exchange vs aggregation on a 100-node clique (Delta = 99)",
        [
            "F",
            "exchange slots",
            "exchange speedup",
            "agg follower slots",
            "agg speedup",
        ],
    );
    let params = SinrParams::default();
    let n = 100usize;
    let mut ex_base = 0.0f64;
    let mut agg_base = 0.0f64;
    for channels in [1u16, 2, 4, 8, 16] {
        let out = run_trials(1700 + channels as u64, trials, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let deploy = Deployment::disk(n, params.r_eps() / 4.0, &mut rng);
            // Exchange on the clique.
            let ex = run_info_exchange(
                &params,
                deploy.points(),
                ExchangeConfig::new(channels, n),
                seed ^ 0xE8,
            );
            let ex_slots = ex
                .median_completion()
                .unwrap_or(ExchangeConfig::new(channels, n).max_slots);
            // Aggregation on the same instance.
            let env = NetworkEnv::new(params, &deploy);
            let algo = AlgoConfig::practical(channels, &params, n);
            let mut cfg = StructureConfig::new(algo, seed);
            cfg.substrate = SubstrateMode::Oracle;
            let s = build_structure(&env, &cfg);
            let inputs: Vec<i64> = (0..n as i64).collect();
            let agg = aggregate(
                &env,
                &s,
                &algo,
                MaxAgg,
                &inputs,
                InterclusterMode::Flood,
                3,
                seed ^ 0xA6,
            );
            (ex_slots, agg.follower_slots)
        });
        let ex_med = out.summarize(|r| r.0 as f64).median();
        let agg_med = out.summarize(|r| r.1 as f64).median();
        if channels == 1 {
            ex_base = ex_med;
            agg_base = agg_med;
        }
        t.row([
            format!("{channels}"),
            format!("{ex_med:.0}"),
            format!("{:.2}x", ex_base / ex_med),
            format!("{agg_med:.0}"),
            format!("{:.2}x", agg_base / agg_med),
        ]);
    }
    t
}

/// E15 — ruling sets and MIS via §4 network-wide (the \[4\] comparison):
/// the two-phase pipeline stays sound at every density; the direct
/// (phase-two-only) MIS is sound while the input density is moderate and
/// shows why the paper runs the dominating set first.
pub fn e15_mis(trials: usize) -> Table {
    use mca_core::{maximal_independent_set, ruling_set, MisConfig};
    let mut t = Table::new(
        "E15: (r,2r)-ruling set vs direct MIS (Sec. 4, r = R_T/4)",
        [
            "n",
            "2-phase members",
            "2-phase viol/holes",
            "slots",
            "direct-MIS viol/holes",
        ],
    );
    let params = SinrParams::default();
    for n in [128usize, 512, 2048] {
        let out = run_trials(1800 + n as u64, trials, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let side = (n as f64 / 2.0).sqrt();
            let deploy = Deployment::uniform(n, side, &mut rng);
            let env = NetworkEnv::new(params, &deploy);
            let algo = AlgoConfig::practical(4, &params, n);
            let r = params.transmission_range() / 4.0;
            let two = ruling_set(&env, &algo, MisConfig::new(r), seed ^ 0x315);
            let direct = maximal_independent_set(&env, &algo, MisConfig::new(r), seed ^ 0x316);
            (
                two.members().len(),
                two.independence_violations(&env.positions),
                two.domination_holes(&env.positions),
                two.total_slots(),
                direct.independence_violations(&env.positions),
                direct.domination_holes(&env.positions),
            )
        });
        t.row([
            format!("{n}"),
            format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
            format!(
                "{:.1} / {:.1}",
                out.summarize(|r| r.1 as f64).mean(),
                out.summarize(|r| r.2 as f64).mean()
            ),
            format!("{:.0}", out.summarize(|r| r.3 as f64).median()),
            format!(
                "{:.1} / {:.1}",
                out.summarize(|r| r.4 as f64).mean(),
                out.summarize(|r| r.5 as f64).mean()
            ),
        ]);
    }
    t
}

/// E16 — dynamic environments: aggregation success vs node speed.
///
/// The flood-combine max-aggregation backbone runs end-to-end inside
/// `mca-scenario` worlds whose nodes roam by random waypoint at increasing
/// speeds, plus one Gilbert–Elliot fading world as a channel-dynamics
/// reference point. All (scenario × seed) trials execute in parallel via
/// `ScenarioRunner`; results are identical to a sequential run.
pub fn e16_mobility(trials: usize) -> Table {
    use mca_core::aggregate::intercluster::{FloodCfg, FloodCombine};
    use mca_scenario::{
        DeploymentSpec, FadingSpec, MobilitySpec, Scenario, ScenarioRunner, ScenarioSim,
    };
    let n = 60usize;
    let channels = 4u16;
    let slots = 400u64;
    let base = |name: &str| {
        let mut b = Scenario::builder(name)
            .deployment(DeploymentSpec::Uniform { n, side: 30.0 })
            .channels(channels)
            .max_slots(slots);
        b = b.sinr(SinrParams::default());
        b
    };
    let mut scenarios = vec![base("static").build()];
    for speed in [0.05f64, 0.15, 0.4, 1.0] {
        scenarios.push(
            base(&format!("waypoint v={speed}"))
                .mobility(MobilitySpec::RandomWaypoint {
                    speed_min: speed / 2.0,
                    speed_max: speed,
                    pause: 5,
                })
                .build(),
        );
    }
    scenarios.push(
        base("GE fading (25% bad)")
            .fading(FadingSpec::interference(0.05, 0.15, 500.0))
            .build(),
    );

    let cfg = FloodCfg {
        q: 0.2,
        flood_rounds: slots - 100,
        tail_rounds: 100,
        tdma: Tdma::new(1, 1),
        hop_channels: channels,
    };
    let expect = (n - 1) as i64;
    let results = ScenarioRunner::sweep(scenarios)
        .trials(trials.max(2))
        .master_seed(1600)
        .run(move |scenario, seed| {
            let mut sim = ScenarioSim::new(scenario, seed, |i, _| {
                FloodCombine::dominator(MaxAgg, cfg, 0, i as i64)
            });
            sim.run_until_done(scenario.max_slots);
            let holders = sim
                .protocols()
                .iter()
                .filter(|p| *p.value() == expect)
                .count();
            (holders as f64 / n as f64, sim.metrics().reception_rate())
        });

    let mut t = Table::new(
        "E16: flood aggregation in dynamic environments -- n=60, F=4",
        ["scenario", "coverage (median)", "full coverage", "rx rate"],
    );
    for st in &results {
        t.row([
            st.name.clone(),
            format!("{:.0}%", st.outcome.summarize(|r| r.0).median() * 100.0),
            format!("{:.0}%", st.outcome.fraction(|r| r.0 >= 1.0) * 100.0),
            format!("{:.3}", st.outcome.summarize(|r| r.1).median()),
        ]);
    }
    t
}

/// A3 — ablation of the multi-message gossip: the backbone transmission
/// probability `q` (the paper's "constant probability" sketch) trades
/// collision losses against idle slots; completion is measured because the
/// harness stops the run the moment every node holds every message.
pub fn a3_gossip(trials: usize) -> Table {
    use mca_core::broadcast_many;
    let mut t = Table::new(
        "A3: gossip probability ablation -- n=120, F=4, k=8",
        ["q", "gossip slots", "hoist slots", "full coverage"],
    );
    let params = SinrParams::default();
    for q in [0.05f64, 0.2, 0.35, 0.5] {
        let out = run_trials(1900 + (q * 100.0) as u64, trials, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let deploy = Deployment::uniform(120, 9.0, &mut rng);
            let env = NetworkEnv::new(params, &deploy);
            let mut consts = Constants::practical();
            consts.flood_prob = q;
            let algo = AlgoConfig::new(4, mca_sinr::NodeKnowledge::exact(&params, 120), consts);
            let mut cfg = StructureConfig::new(algo, seed);
            cfg.substrate = SubstrateMode::Oracle;
            cfg.cluster_radius = 2.0;
            let s = build_structure(&env, &cfg);
            let d_hat = env.comm_graph().diameter_approx() + 2;
            let messages: Vec<(NodeId, u64)> = (0..8).map(|i| (NodeId(i * 14), i as u64)).collect();
            let out = broadcast_many(&env, &s, &algo, &messages, d_hat, seed ^ 0xA3);
            (
                out.gossip_slots,
                out.hoist_slots,
                out.full_coverage as f64 / 120.0,
            )
        });
        t.row([
            format!("{q:.2}"),
            format!("{:.0}", out.summarize(|r| r.0 as f64).median()),
            format!("{:.0}", out.summarize(|r| r.1 as f64).median()),
            format!("{:.0}%", out.summarize(|r| r.2).median() * 100.0),
        ]);
    }
    t
}
