//! Regenerates every experiment of `EXPERIMENTS.md`.
//!
//! Usage: `experiments [e1|...|e8|e10|...|e16|t1|a1|a2|all|quick] [trials]`
//!
//! `experiments bench-sinr [repeats]` measures the batched SINR resolver
//! against the seed per-listener scan and writes the `BENCH_sinr.json`
//! baseline (explicit-only: not part of `all`/`quick`).

use std::env;
use std::time::Instant;

fn main() {
    let args: Vec<String> = env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("quick");
    let trials: usize = args
        .get(2)
        .and_then(|t| t.parse().ok())
        .unwrap_or(if which == "quick" { 2 } else { 3 });

    let all = which == "all" || which == "quick";
    let want = |id: &str| all || which == id;
    let t0 = Instant::now();

    if want("e1") {
        println!("{}", mca_bench::e1_speedup(trials));
    }
    if want("e2") {
        println!("{}", mca_bench::e2_scaling_n(trials));
    }
    if want("e3") {
        println!("{}", mca_bench::e3_delta(trials));
    }
    if want("e4") {
        println!("{}", mca_bench::e4_coloring(trials));
    }
    if want("e5") {
        println!("{}", mca_bench::e5_ruling(trials));
    }
    if want("e6") {
        println!("{}", mca_bench::e6_dominate(trials));
    }
    if want("e7") {
        println!("{}", mca_bench::e7_csa(trials));
    }
    if want("e8") {
        println!("{}", mca_bench::e8_reporters(trials));
    }
    if want("e10") {
        let (a, b) = mca_bench::e10_lower_bounds(trials);
        println!("{a}");
        println!("{b}");
    }
    if want("e11") {
        println!("{}", mca_bench::e11_lemmas(trials));
    }
    if want("e12") {
        println!("{}", mca_bench::e12_applications(trials));
    }
    if want("e13") {
        println!("{}", mca_bench::e13_multimessage(trials));
    }
    if want("e14") {
        println!("{}", mca_bench::e14_compressibility(trials));
    }
    if want("e15") {
        println!("{}", mca_bench::e15_mis(trials));
    }
    if want("e16") {
        println!("{}", mca_bench::e16_mobility(trials));
    }
    if want("t1") {
        println!("{}", mca_bench::t1_comparison(trials));
    }
    if want("a1") {
        println!("{}", mca_bench::a1_ablations(trials));
    }
    if want("a2") {
        println!("{}", mca_bench::a2_faults(trials));
    }
    if want("a3") {
        println!("{}", mca_bench::a3_gossip(trials));
    }
    if which == "bench-sinr" {
        let json = mca_bench::sinr_bench::bench_sinr_json(trials.max(3));
        std::fs::write("BENCH_sinr.json", &json).expect("write BENCH_sinr.json");
        print!("{json}");
        eprintln!("[wrote BENCH_sinr.json]");
    }
    eprintln!("[experiments done in {:.1}s]", t0.elapsed().as_secs_f64());
}
