//! Regenerates every experiment of `EXPERIMENTS.md`, runs scenario files,
//! and serves matrix sweeps.
//!
//! The binary is a declarative subcommand table ([`COMMANDS`]): each entry
//! carries its name, argument synopsis, summary, extended help, and
//! handler, so the overview usage, per-subcommand `--help`, and dispatch
//! all read from one place. Experiment-table ids (`e1`..`quick`) are the
//! default command and dispatch through the same main loop.
//!
//! Every form accepts a global `--threads N` flag pinning the worker
//! count of all parallel paths (0 = one per core) — CI smoke jobs and
//! local benchmarking use it for reproducible wall-clock numbers.
//! Reconfiguration is explicit and immediate (`rayon::set_num_threads`):
//! if the persistent pool is already running at a different size it is
//! retired on the spot and the next parallel operation spawns a fresh
//! pool at the new count, so the flag is honored even after the pool has
//! been used — not only before first use. There is also a
//! global `--log-level {off,summary,verbose}` flag controlling the
//! progress stream on stderr (results on stdout are unaffected).
//!
//! `profile` runs the flood workload with the `mca-obs` recorder attached
//! and prints the per-phase time breakdown; it needs the `obs` cargo
//! feature and exits with status 2 without it. On the default world it
//! writes `BENCH_profile.json`; the run fails unless the phase spans
//! cover ≥ 95% of slot wall time (`PROFILE_SMOKE=1` profiles the small
//! catalog world instead — the CI configuration).
//!
//! `--scenario` runs any TOML world (see `docs/SCENARIO_FORMAT.md`)
//! through the flood max-aggregation workload; `sweep` expands a
//! `[matrix]` file into a keyed trial set and streams one JSONL record
//! per trial with checkpoint/resume (see `docs/TRIAL_SERVICE.md`);
//! `serve` polls a queue directory of such files; `export-scenarios`
//! writes the built-in catalog; `check-scenarios` parse-validates a
//! directory of scenario/matrix files (the CI gate for `scenarios/`);
//! `golden-trials` checks (or `--write`s) the committed golden trial
//! metrics the CI determinism job pins `MCA_FORCE_PAR=1` runs against.
//! Unknown subcommands print usage and exit non-zero.

use mca_bench::{LogLevel, ServeConfig, SweepConfig};
use mca_scenario::{builtin_scenarios, Scenario, SweepFile};
use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// Whether the progress stream (stderr) is at least `level` verbose.
fn logs(level: LogLevel) -> bool {
    mca_bench::log_level() >= level
}

/// One subcommand: everything the overview usage, `--help`, and dispatch
/// need, in one row.
struct Cmd {
    /// The word on the command line.
    name: &'static str,
    /// Argument synopsis shown after the name.
    args: &'static str,
    /// One-or-few-line summary for the usage overview (indented there).
    summary: &'static str,
    /// Extended help for `experiments <name> --help` (empty = summary only).
    help: &'static str,
    /// The handler, given the arguments after the subcommand name.
    run: fn(&[String]) -> ExitCode,
}

/// The subcommand table. Experiment-table ids (`e1`..`quick`, the default)
/// dispatch through [`run_tables`] instead of a row here.
const COMMANDS: &[Cmd] = &[
    Cmd {
        name: "bench-sinr",
        args: "[repeats]",
        summary: "SINR resolver benchmark -> BENCH_sinr.json",
        help: "",
        run: cmd_bench_sinr,
    },
    Cmd {
        name: "bench-shards",
        args: "[repeats]",
        summary: "sharded engine benchmark -> BENCH_shard.json\n\
                  (arms incl. the SIMD lanes-vs-scalar pair and\n\
                   a reduced 1M-node dense case;\n\
                   SHARD_BENCH_SMOKE=1 for the reduced CI gate;\n\
                   exits non-zero if sharded resolution regresses\n\
                   below the sequential baseline, the lanes arm\n\
                   loses to scalar on a dense 10k+ world, or any\n\
                   bit-identity audit fails)",
        help: "",
        run: cmd_bench_shards,
    },
    Cmd {
        name: "repair-bench",
        args: "[seeds]",
        summary: "incremental repair vs rebuild -> BENCH_repair.json\n\
                  (REPAIR_BENCH_SMOKE=1 for the reduced CI gate;\n\
                   exits non-zero if any world fails its gate)",
        help: "",
        run: cmd_repair_bench,
    },
    Cmd {
        name: "adversary-bench",
        args: "[seeds]",
        summary: "reactive vs proactive repair under adversaries\n\
                  -> BENCH_adversary.json\n\
                  (ADVERSARY_BENCH_SMOKE=1 for the reduced CI gate;\n\
                   exits non-zero on audit regressions or if the\n\
                   proactive arm fails to beat the censored\n\
                   reactive time-to-repair)",
        help: "",
        run: cmd_adversary_bench,
    },
    Cmd {
        name: "profile",
        args: "[--scenario <file.toml>] [--slots N] [--jsonl <path>]",
        summary: "per-phase time breakdown via the mca-obs recorder\n\
                  (needs --features obs; default world writes\n\
                   BENCH_profile.json; PROFILE_SMOKE=1 profiles the\n\
                   small catalog world instead; exits non-zero if\n\
                   phase spans cover < 95% of slot wall time)",
        help: "",
        run: run_profile,
    },
    Cmd {
        name: "golden-trials",
        args: "[--write] [path]",
        summary: "check (default) or rewrite the committed golden\n\
                  trial metrics (default: scenarios/GOLDEN_trials.json);\n\
                  check exits non-zero on any metric divergence",
        help: "",
        run: golden_trials,
    },
    Cmd {
        name: "sweep",
        args: "<matrix.toml> [--out F] [--journal F] [--limit N] [--fresh] [--sequential]",
        summary: "expand a [matrix] file into a keyed trial set and\n\
                  stream one JSONL trial record per trial, journaling\n\
                  completed keys; rerunning resumes after the journal\n\
                  (exit 3 when --limit leaves the sweep incomplete)",
        help: "Runs every (scenario, seed) trial of the matrix file through the\n\
               flood max-aggregation workload, appending one mca-obs JSONL-v1\n\
               `trial` record per trial to the out file (default:\n\
               <stem>.trials.jsonl beside the input) and each completed key to\n\
               the journal (default: <stem>.journal). A rerun verifies the\n\
               journal against the matrix, truncates any torn tail, and resumes\n\
               exactly where the previous run stopped — the resulting stream is\n\
               byte-identical to an uninterrupted run.\n\
               \n\
               \x20 --out F        record stream path\n\
               \x20 --journal F    checkpoint journal path\n\
               \x20 --limit N      stop after executing N trials (exit 3 if the\n\
               \x20                sweep is then incomplete — the test interrupt)\n\
               \x20 --fresh        discard any existing journal and records\n\
               \x20 --sequential   resolve trials on one worker",
        run: cmd_sweep,
    },
    Cmd {
        name: "serve",
        args: "<queue-dir> [--out-dir D] [--once] [--poll-ms N] [--sequential]",
        summary: "poll a queue directory for matrix/scenario TOML files\n\
                  and sweep each to completion, resumably",
        help: "Scans <queue-dir> for *.toml files without <stem>.done markers\n\
               (sorted by name), sweeps each to completion — journals and record\n\
               streams land in --out-dir (default: the queue directory) and\n\
               resume across restarts — then writes the <stem>.done marker.\n\
               \n\
               \x20 --out-dir D    where records, journals, and done markers land\n\
               \x20 --once         one scan-and-drain pass, then exit\n\
               \x20 --poll-ms N    milliseconds between scans (default 1000)\n\
               \x20 --sequential   resolve trials on one worker",
        run: cmd_serve,
    },
    Cmd {
        name: "export-scenarios",
        args: "[dir]",
        summary: "write the built-in catalog (default: scenarios)",
        help: "",
        run: cmd_export_scenarios,
    },
    Cmd {
        name: "check-scenarios",
        args: "[dir]",
        summary: "parse-validate every .toml in a directory\n\
                  (matrix files report their expanded trial count)",
        help: "",
        run: cmd_check_scenarios,
    },
];

const TABLE_IDS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "t1", "a1", "a2", "a3", "all", "quick",
];

const GLOBAL_FLAGS: &str = "\
Global flags:
  --threads N       pin the parallel worker count (0 = one per core); takes
                    effect immediately — a live pool at a different size is
                    retired and relaunched on next use
  --log-level L     progress-stream verbosity: off, summary (default), verbose
";

/// The overview usage, composed from [`COMMANDS`].
fn usage() -> String {
    let mut s = String::from(
        "Usage:\n  experiments [SUBCOMMAND] [trials]   run experiment tables (default: quick)\n",
    );
    for cmd in COMMANDS {
        let invocation = format!("  experiments {} {}", cmd.name, cmd.args);
        let mut lines = cmd.summary.lines();
        if invocation.len() <= 37 {
            let first = lines.next().unwrap_or("");
            s.push_str(&format!("{invocation:<38}{first}\n"));
        } else {
            s.push_str(&invocation);
            s.push('\n');
        }
        for line in lines {
            s.push_str(&format!("{:38}{}\n", "", line.trim_start()));
        }
    }
    s.push_str(
        "  experiments --scenario <file.toml> [--seeds N]\n\
         \u{20}                                     run a scenario file end-to-end\n\n",
    );
    s.push_str(GLOBAL_FLAGS);
    s.push_str(
        "\nSubcommands:\n\
         \u{20} e1..e8, e10..e16  individual experiment tables (see EXPERIMENTS.md)\n\
         \u{20} t1                related-work comparison table\n\
         \u{20} a1, a2, a3        ablation tables\n\
         \u{20} all               every table, 3 trials by default\n\
         \u{20} quick             every table, 2 trials by default\n\n\
         `experiments <subcommand> --help` prints the subcommand's details.\n",
    );
    s
}

/// The per-subcommand help text for `experiments <name> --help`.
fn cmd_help(cmd: &Cmd) -> String {
    let mut s = format!("Usage: experiments {} {}\n\n", cmd.name, cmd.args);
    let body = if cmd.help.is_empty() {
        cmd.summary
    } else {
        cmd.help
    };
    for line in body.lines() {
        s.push_str(line);
        s.push('\n');
    }
    s.push('\n');
    s.push_str(GLOBAL_FLAGS);
    s
}

/// Extracts the global `--threads` / `--log-level` flags (any position),
/// applying them process-wide. Shared by every subcommand because it runs
/// before dispatch.
fn extract_global_flags(args: &mut Vec<String>) -> Result<(), ExitCode> {
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let Some(n) = args.get(i + 1).and_then(|n| n.parse::<usize>().ok()) else {
            eprintln!(
                "error: --threads needs a worker count (0 = one per core)\n{}",
                usage()
            );
            return Err(ExitCode::from(2));
        };
        rayon::set_num_threads(n);
        args.drain(i..=i + 1);
    }
    if let Some(i) = args.iter().position(|a| a == "--log-level") {
        let Some(level) = args.get(i + 1).and_then(|l| LogLevel::parse(l)) else {
            eprintln!(
                "error: --log-level needs one of off, summary, verbose\n{}",
                usage()
            );
            return Err(ExitCode::from(2));
        };
        mca_bench::set_log_level(level);
        args.drain(i..=i + 1);
    }
    Ok(())
}

fn wants_help(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    if let Err(code) = extract_global_flags(&mut args) {
        return code;
    }

    // Flag form: run a scenario file.
    if args.iter().any(|a| a == "--scenario") {
        return run_scenario_file(&args);
    }
    if let Some(first) = args.first() {
        if first == "--help" || first == "-h" || first == "help" {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        if first.starts_with('-') {
            eprintln!("error: unknown option `{first}`\n{}", usage());
            return ExitCode::from(2);
        }
    }

    let which = args.first().map(String::as_str).unwrap_or("quick");
    if let Some(cmd) = COMMANDS.iter().find(|c| c.name == which) {
        let rest = &args[1..];
        if wants_help(rest) {
            print!("{}", cmd_help(cmd));
            return ExitCode::SUCCESS;
        }
        return (cmd.run)(rest);
    }
    if TABLE_IDS.contains(&which) {
        if wants_help(&args[1..]) {
            println!(
                "Usage: experiments {which} [trials]\n\n\
                 Prints the `{which}` experiment table(s); see EXPERIMENTS.md.\n"
            );
            print!("{GLOBAL_FLAGS}");
            return ExitCode::SUCCESS;
        }
        return run_tables(which, &args[1..]);
    }
    eprintln!("error: unknown subcommand `{which}`\n{}", usage());
    ExitCode::from(2)
}

/// Parses the optional positional run count (trials/repeats/seeds) shared
/// by the table and bench subcommands.
fn parse_runs(args: &[String], default: usize) -> Result<usize, ExitCode> {
    match args.first() {
        Some(t) => match t.parse() {
            Ok(t) => Ok(t),
            Err(_) => {
                eprintln!("error: trial count `{t}` is not a number\n{}", usage());
                Err(ExitCode::from(2))
            }
        },
        None => Ok(default),
    }
}

/// `experiments [e1|...|quick] [trials]` — the experiment tables.
fn run_tables(which: &str, rest: &[String]) -> ExitCode {
    let default = if which == "quick" { 2 } else { 3 };
    let trials = match parse_runs(rest, default) {
        Ok(t) => t,
        Err(code) => return code,
    };

    let all = which == "all" || which == "quick";
    let want = |id: &str| all || which == id;
    let t0 = Instant::now();

    // Each table section is timed so `--log-level verbose` can report
    // per-table wall clock on the progress stream.
    let section = |id: &str, print: &mut dyn FnMut()| {
        if !want(id) {
            return;
        }
        let t = Instant::now();
        print();
        if logs(LogLevel::Verbose) {
            eprintln!("[{id} in {:.1}s]", t.elapsed().as_secs_f64());
        }
    };
    section("e1", &mut || println!("{}", mca_bench::e1_speedup(trials)));
    section("e2", &mut || {
        println!("{}", mca_bench::e2_scaling_n(trials))
    });
    section("e3", &mut || println!("{}", mca_bench::e3_delta(trials)));
    section("e4", &mut || println!("{}", mca_bench::e4_coloring(trials)));
    section("e5", &mut || println!("{}", mca_bench::e5_ruling(trials)));
    section("e6", &mut || println!("{}", mca_bench::e6_dominate(trials)));
    section("e7", &mut || println!("{}", mca_bench::e7_csa(trials)));
    section("e8", &mut || {
        println!("{}", mca_bench::e8_reporters(trials))
    });
    section("e10", &mut || {
        let (a, b) = mca_bench::e10_lower_bounds(trials);
        println!("{a}");
        println!("{b}");
    });
    section("e11", &mut || println!("{}", mca_bench::e11_lemmas(trials)));
    section("e12", &mut || {
        println!("{}", mca_bench::e12_applications(trials))
    });
    section("e13", &mut || {
        println!("{}", mca_bench::e13_multimessage(trials))
    });
    section("e14", &mut || {
        println!("{}", mca_bench::e14_compressibility(trials))
    });
    section("e15", &mut || println!("{}", mca_bench::e15_mis(trials)));
    section("e16", &mut || {
        println!("{}", mca_bench::e16_mobility(trials))
    });
    section("t1", &mut || {
        println!("{}", mca_bench::t1_comparison(trials))
    });
    section("a1", &mut || {
        println!("{}", mca_bench::a1_ablations(trials))
    });
    section("a2", &mut || println!("{}", mca_bench::a2_faults(trials)));
    section("a3", &mut || println!("{}", mca_bench::a3_gossip(trials)));
    if logs(LogLevel::Summary) {
        eprintln!("[experiments done in {:.1}s]", t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

/// `experiments bench-sinr [repeats]`
fn cmd_bench_sinr(args: &[String]) -> ExitCode {
    let repeats = match parse_runs(args, 3) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let json = mca_bench::sinr_bench::bench_sinr_json(repeats.max(3));
    std::fs::write("BENCH_sinr.json", &json).expect("write BENCH_sinr.json");
    print!("{json}");
    if logs(LogLevel::Summary) {
        eprintln!("[wrote BENCH_sinr.json]");
    }
    ExitCode::SUCCESS
}

/// Shared body of the three gated bench subcommands: run, print the JSON,
/// write the committed artifact (or log the smoke gate), fail on a gate
/// violation. The `<env>=1` smoke mode (CI) shrinks the run count but
/// still runs every arm and enforces the full gate.
fn run_gated_bench(
    args: &[String],
    label: &str,
    smoke_env: &str,
    smoke_runs: usize,
    artifact: &str,
    gate_msg: &str,
    json: impl Fn(usize, bool) -> (String, bool),
) -> ExitCode {
    let requested = match parse_runs(args, 3) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let smoke = env::var(smoke_env).is_ok_and(|v| v == "1");
    let runs = if smoke { smoke_runs } else { requested.max(3) };
    let (json, ok) = json(runs, smoke);
    print!("{json}");
    if smoke {
        if logs(LogLevel::Summary) {
            eprintln!(
                "[{label} smoke: gate {}]",
                if ok { "held" } else { "FAILED" }
            );
        }
    } else {
        std::fs::write(artifact, &json).unwrap_or_else(|_| panic!("write {artifact}"));
        if logs(LogLevel::Summary) {
            eprintln!("[wrote {artifact}]");
        }
    }
    if !ok {
        eprintln!("error: {gate_msg} (see JSON above)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `experiments bench-shards [repeats]`
fn cmd_bench_shards(args: &[String]) -> ExitCode {
    run_gated_bench(
        args,
        "bench-shards",
        "SHARD_BENCH_SMOKE",
        3,
        "BENCH_shard.json",
        "a bench-shards case failed its gate",
        mca_bench::shard_bench_json,
    )
}

/// `experiments repair-bench [seeds]`
fn cmd_repair_bench(args: &[String]) -> ExitCode {
    run_gated_bench(
        args,
        "repair-bench",
        "REPAIR_BENCH_SMOKE",
        1,
        "BENCH_repair.json",
        "a repair-bench world failed its acceptance gate",
        |seeds, _smoke| mca_bench::repair_bench_json(seeds),
    )
}

/// `experiments adversary-bench [seeds]`
fn cmd_adversary_bench(args: &[String]) -> ExitCode {
    run_gated_bench(
        args,
        "adversary-bench",
        "ADVERSARY_BENCH_SMOKE",
        1,
        "BENCH_adversary.json",
        "an adversary-bench world failed its acceptance gate",
        |seeds, _smoke| mca_bench::adversary_bench_json(seeds),
    )
}

/// `experiments sweep <matrix.toml> [--out F] [--journal F] [--limit N]
/// [--fresh] [--sequential]`
fn cmd_sweep(args: &[String]) -> ExitCode {
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut limit: Option<usize> = None;
    let mut fresh = false;
    let mut parallel = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return flag_needs("--out", "a file path"),
            },
            "--journal" => match it.next() {
                Some(p) => journal = Some(PathBuf::from(p)),
                None => return flag_needs("--journal", "a file path"),
            },
            "--limit" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => limit = Some(n),
                None => return flag_needs("--limit", "a trial count"),
            },
            "--fresh" => fresh = true,
            "--sequential" => parallel = false,
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("error: unexpected argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("error: sweep needs a matrix file\n{}", usage());
        return ExitCode::from(2);
    };
    let mut cfg = SweepConfig::for_input(&input);
    if let Some(p) = out {
        cfg.out_path = p;
    }
    if let Some(p) = journal {
        cfg.journal_path = p;
    }
    cfg.limit = limit;
    cfg.fresh = fresh;
    cfg.parallel = parallel;

    let t0 = Instant::now();
    let summary = match mca_bench::run_sweep_file(&input, &cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", summary.line());
    if logs(LogLevel::Summary) {
        eprintln!(
            "[sweep `{}` in {:.1}s: {} -> {}]",
            input.display(),
            t0.elapsed().as_secs_f64(),
            cfg.out_path.display(),
            cfg.journal_path.display()
        );
    }
    if summary.complete {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}

/// `experiments serve <queue-dir> [--out-dir D] [--once] [--poll-ms N]
/// [--sequential]`
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut queue: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut once = false;
    let mut poll_ms: u64 = 1000;
    let mut parallel = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out-dir" => match it.next() {
                Some(p) => out_dir = Some(PathBuf::from(p)),
                None => return flag_needs("--out-dir", "a directory"),
            },
            "--poll-ms" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => poll_ms = n,
                None => return flag_needs("--poll-ms", "a millisecond count"),
            },
            "--once" => once = true,
            "--sequential" => parallel = false,
            other if !other.starts_with('-') && queue.is_none() => {
                queue = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("error: unexpected argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let Some(queue) = queue else {
        eprintln!("error: serve needs a queue directory\n{}", usage());
        return ExitCode::from(2);
    };
    let mut cfg = ServeConfig::new(queue);
    if let Some(d) = out_dir {
        cfg.out_dir = d;
    }
    cfg.poll_ms = poll_ms;
    cfg.parallel = parallel;

    let report = |input: &Path, summary: &mca_bench::SweepSummary| {
        println!("served {}: {}", input.display(), summary.line());
    };
    let err = if once {
        match mca_bench::serve_once(&cfg) {
            Ok(served) => {
                for (input, summary) in &served {
                    report(input, summary);
                }
                if logs(LogLevel::Summary) {
                    eprintln!("[serve --once: {} input(s) drained]", served.len());
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => e,
        }
    } else {
        match mca_bench::serve(&cfg, |input, summary| report(input, summary)) {
            Ok(never) => match never {},
            Err(e) => e,
        }
    };
    eprintln!("error: {err}");
    ExitCode::FAILURE
}

fn flag_needs(flag: &str, what: &str) -> ExitCode {
    eprintln!("error: {flag} needs {what}\n{}", usage());
    ExitCode::from(2)
}

/// `experiments profile [--scenario <file.toml>] [--slots N] [--jsonl <path>]`
fn run_profile(args: &[String]) -> ExitCode {
    if !mca_bench::profile_supported() {
        eprintln!(
            "error: the observability layer is compiled out; rebuild with \
             `--features obs` to run `experiments profile`"
        );
        return ExitCode::from(2);
    }
    let mut scenario_path: Option<&str> = None;
    let mut slots: Option<u64> = None;
    let mut jsonl_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" => match it.next() {
                Some(p) => scenario_path = Some(p),
                None => return flag_needs("--scenario", "a file path"),
            },
            "--slots" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => slots = Some(n),
                _ => return flag_needs("--slots", "a positive number"),
            },
            "--jsonl" => match it.next() {
                Some(p) => jsonl_path = Some(p),
                None => return flag_needs("--jsonl", "a file path"),
            },
            other => {
                eprintln!("error: unexpected argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    // Which world: an explicit file, the small catalog world (CI smoke),
    // or the default 100k dense deployment. Only the default run writes
    // the committed artifact — a custom or shrunk world must not
    // masquerade as the reference profile.
    let smoke = env::var("PROFILE_SMOKE").is_ok_and(|v| v == "1");
    let (scenario, write_artifact) = if let Some(path) = scenario_path {
        let mut s = match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(n) = slots {
            s.max_slots = n;
        }
        (s, false)
    } else if smoke {
        let mut s = builtin_scenarios()
            .iter()
            .find(|e| e.scenario.name == "sharded-dense")
            .expect("catalog has sharded-dense")
            .scenario
            .clone();
        s.max_slots = slots.unwrap_or(40);
        (s, false)
    } else {
        let s = mca_bench::default_profile_scenario(slots.unwrap_or(30));
        (s, true)
    };
    let t0 = Instant::now();
    let run = mca_bench::profile_scenario(&scenario, mca_bench::PROFILE_SEED);
    // The recorder's export must satisfy the documented v1 schema before
    // anything is printed or written.
    let jsonl = run.recorder.to_jsonl();
    for (i, line) in jsonl.lines().enumerate() {
        if let Err(e) = mca_obs::validate_jsonl_line(line) {
            eprintln!("error: JSONL line {} violates the v1 schema: {e}", i + 1);
            return ExitCode::FAILURE;
        }
    }
    println!("{}", mca_bench::profile_table(&scenario, &run));
    if logs(LogLevel::Verbose) {
        eprint!("{}", run.report.to_folded());
    }
    if let Some(path) = jsonl_path {
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if logs(LogLevel::Summary) {
            eprintln!("[wrote {path}]");
        }
    }
    if write_artifact {
        let json = mca_bench::profile_json(&scenario, &run);
        std::fs::write("BENCH_profile.json", &json).expect("write BENCH_profile.json");
        if logs(LogLevel::Summary) {
            eprintln!("[wrote BENCH_profile.json]");
        }
    }
    if logs(LogLevel::Summary) {
        eprintln!(
            "[profile `{}` in {:.1}s: phase spans cover {:.1}% of slot time]",
            scenario.name,
            t0.elapsed().as_secs_f64(),
            run.slot_coverage() * 100.0
        );
    }
    if !run.gate_ok() {
        eprintln!(
            "error: phase spans cover {:.1}% of slot wall time, below the {:.0}% gate",
            run.slot_coverage() * 100.0,
            mca_bench::COVERAGE_GATE * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `experiments --scenario <file.toml> [--seeds N]`
fn run_scenario_file(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut seeds: usize = 3;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" => match it.next() {
                Some(p) => path = Some(p),
                None => return flag_needs("--scenario", "a file path"),
            },
            "--seeds" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => seeds = n,
                _ => return flag_needs("--seeds", "a positive number"),
            },
            other => {
                eprintln!("error: unexpected argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let path = path.expect("--scenario presence checked by caller");
    let scenario = match Scenario::load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t0 = Instant::now();
    println!("{}", mca_bench::run_scenario(&scenario, seeds));
    if logs(LogLevel::Summary) {
        eprintln!(
            "[scenario `{}` x {seeds} seeds in {:.1}s]",
            scenario.name,
            t0.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}

/// `experiments golden-trials [--write] [path]`
fn golden_trials(args: &[String]) -> ExitCode {
    let mut write = false;
    let mut path = "scenarios/GOLDEN_trials.json";
    for arg in args {
        match arg.as_str() {
            "--write" => write = true,
            other if !other.starts_with('-') => path = other,
            other => {
                eprintln!("error: unexpected argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if write {
        let json = mca_bench::golden_trials_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return ExitCode::SUCCESS;
    }
    match mca_bench::check_golden_trials(path) {
        Ok(()) => {
            println!("golden trial metrics match {path} (bit-identical)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `experiments export-scenarios [dir]`
fn cmd_export_scenarios(args: &[String]) -> ExitCode {
    let dir = Path::new(args.first().map_or("scenarios", |s| s.as_str()));
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for entry in builtin_scenarios() {
        let path = dir.join(entry.file_name());
        if let Err(e) = std::fs::write(&path, entry.file_contents()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// `experiments check-scenarios [dir]`
///
/// Loads every file through [`SweepFile`], so plain scenarios and
/// `[matrix]` sweep files both validate; sweep files additionally expand
/// and report their trial count.
fn cmd_check_scenarios(args: &[String]) -> ExitCode {
    let dir = args.first().map_or("scenarios", |s| s.as_str());
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut files: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("error: no .toml files under {dir}");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for path in &files {
        match SweepFile::load(path) {
            Ok(f) if f.is_sweep() => {
                let s = &f.base;
                println!(
                    "ok   {} (n={}, F={}, {} slots; matrix -> {} scenarios x {} seeds)",
                    path.display(),
                    s.len(),
                    s.channels,
                    s.max_slots,
                    f.scenarios().len(),
                    f.matrix.seeds().len()
                );
            }
            Ok(f) => {
                let s = &f.base;
                println!(
                    "ok   {} (n={}, F={}, {} slots)",
                    path.display(),
                    s.len(),
                    s.channels,
                    s.max_slots
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {e}");
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures}/{} scenario files failed to parse", files.len());
        ExitCode::FAILURE
    } else {
        println!("{} scenario files parsed cleanly", files.len());
        ExitCode::SUCCESS
    }
}
