//! Regenerates every experiment of `EXPERIMENTS.md` and runs scenario
//! files.
//!
//! Usage:
//!
//! ```text
//! experiments [e1|...|e16|t1|a1|a2|a3|all|quick] [trials]
//! experiments bench-sinr [repeats]
//! experiments bench-shards [repeats]
//! experiments repair-bench [seeds]
//! experiments adversary-bench [seeds]
//! experiments profile [--scenario <file.toml>] [--slots N] [--jsonl <path>]
//! experiments golden-trials [--write] [path]
//! experiments --scenario <file.toml> [--seeds N]
//! experiments export-scenarios [dir]
//! experiments check-scenarios [dir]
//! ```
//!
//! Every form accepts a global `--threads N` flag pinning the worker
//! count of all parallel paths (0 = one per core) — CI smoke jobs and
//! local benchmarking use it for reproducible wall-clock numbers.
//! Reconfiguration is explicit and immediate (`rayon::set_num_threads`):
//! if the persistent pool is already running at a different size it is
//! retired on the spot and the next parallel operation spawns a fresh
//! pool at the new count, so the flag is honored even after the pool has
//! been used — not only before first use. There is also a
//! global `--log-level {off,summary,verbose}` flag controlling the
//! progress stream on stderr (results on stdout are unaffected).
//!
//! `profile` runs the flood workload with the `mca-obs` recorder attached
//! and prints the per-phase time breakdown; it needs the `obs` cargo
//! feature and exits with status 2 without it. On the default world it
//! writes `BENCH_profile.json`; the run fails unless the phase spans
//! cover ≥ 95% of slot wall time (`PROFILE_SMOKE=1` profiles the small
//! catalog world instead — the CI configuration).
//!
//! `--scenario` runs any TOML world (see `docs/SCENARIO_FORMAT.md`)
//! through the flood max-aggregation workload; `export-scenarios` writes
//! the built-in catalog; `check-scenarios` parse-validates a directory of
//! scenario files (the CI gate for `scenarios/`); `golden-trials` checks
//! (or `--write`s) the committed golden trial metrics the CI determinism
//! job pins `MCA_FORCE_PAR=1` runs against. Unknown subcommands print
//! usage and exit non-zero.

use mca_bench::LogLevel;
use mca_scenario::{builtin_scenarios, Scenario};
use std::env;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Whether the progress stream (stderr) is at least `level` verbose.
fn logs(level: LogLevel) -> bool {
    mca_bench::log_level() >= level
}

const USAGE: &str = "\
Usage:
  experiments [SUBCOMMAND] [trials]   run experiment tables (default: quick)
  experiments bench-sinr [repeats]    SINR resolver benchmark -> BENCH_sinr.json
  experiments bench-shards [repeats]  sharded engine benchmark -> BENCH_shard.json
                                      (arms incl. the SIMD lanes-vs-scalar pair and
                                       a reduced 1M-node dense case;
                                       SHARD_BENCH_SMOKE=1 for the reduced CI gate;
                                       exits non-zero if sharded resolution regresses
                                       below the sequential baseline, the lanes arm
                                       loses to scalar on a dense 10k+ world, or any
                                       bit-identity audit fails)
  experiments repair-bench [seeds]    incremental repair vs rebuild -> BENCH_repair.json
                                      (REPAIR_BENCH_SMOKE=1 for the reduced CI gate;
                                       exits non-zero if any world fails its gate)
  experiments adversary-bench [seeds] reactive vs proactive repair under adversaries
                                      -> BENCH_adversary.json
                                      (ADVERSARY_BENCH_SMOKE=1 for the reduced CI gate;
                                       exits non-zero on audit regressions or if the
                                       proactive arm fails to beat the censored
                                       reactive time-to-repair)
  experiments profile [--scenario <file.toml>] [--slots N] [--jsonl <path>]
                                      per-phase time breakdown via the mca-obs recorder
                                      (needs --features obs; default world writes
                                       BENCH_profile.json; PROFILE_SMOKE=1 profiles the
                                       small catalog world instead; exits non-zero if
                                       phase spans cover < 95% of slot wall time)
  experiments golden-trials [--write] [path]
                                      check (default) or rewrite the committed golden
                                      trial metrics (default: scenarios/GOLDEN_trials.json);
                                      check exits non-zero on any metric divergence
  experiments --scenario <file.toml> [--seeds N]
                                      run a scenario file end-to-end
  experiments export-scenarios [dir]  write the built-in catalog (default: scenarios)
  experiments check-scenarios [dir]   parse-validate every .toml in a directory

Global flags:
  --threads N       pin the parallel worker count (0 = one per core); takes
                    effect immediately — a live pool at a different size is
                    retired and relaunched on next use
  --log-level L     progress-stream verbosity: off, summary (default), verbose

Subcommands:
  e1..e8, e10..e16  individual experiment tables (see EXPERIMENTS.md)
  t1                related-work comparison table
  a1, a2, a3        ablation tables
  all               every table, 3 trials by default
  quick             every table, 2 trials by default
";

const TABLE_IDS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "t1", "a1", "a2", "a3", "all", "quick",
];

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();

    // Global flag: pin the parallel worker count before anything runs.
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let Some(n) = args.get(i + 1).and_then(|n| n.parse::<usize>().ok()) else {
            eprintln!("error: --threads needs a worker count (0 = one per core)\n{USAGE}");
            return ExitCode::from(2);
        };
        rayon::set_num_threads(n);
        args.drain(i..=i + 1);
    }

    // Global flag: pin the progress-stream verbosity.
    if let Some(i) = args.iter().position(|a| a == "--log-level") {
        let Some(level) = args.get(i + 1).and_then(|l| LogLevel::parse(l)) else {
            eprintln!("error: --log-level needs one of off, summary, verbose\n{USAGE}");
            return ExitCode::from(2);
        };
        mca_bench::set_log_level(level);
        args.drain(i..=i + 1);
    }

    // Flag form: run a scenario file.
    if args.iter().any(|a| a == "--scenario") {
        return run_scenario_file(&args);
    }
    if let Some(first) = args.first() {
        if first == "--help" || first == "-h" || first == "help" {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        if first.starts_with('-') {
            eprintln!("error: unknown option `{first}`\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let which = args.first().map(String::as_str).unwrap_or("quick");
    match which {
        "export-scenarios" => return export_scenarios(args.get(1).map_or("scenarios", |s| s)),
        "check-scenarios" => return check_scenarios(args.get(1).map_or("scenarios", |s| s)),
        "golden-trials" => return golden_trials(&args[1..]),
        "profile" => return run_profile(&args[1..]),
        "bench-sinr" | "bench-shards" | "repair-bench" | "adversary-bench" => {}
        id if TABLE_IDS.contains(&id) => {}
        other => {
            eprintln!("error: unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let trials: usize = match args.get(1) {
        Some(t) => match t.parse() {
            Ok(t) => t,
            Err(_) => {
                eprintln!("error: trial count `{t}` is not a number\n{USAGE}");
                return ExitCode::from(2);
            }
        },
        None => {
            if which == "quick" {
                2
            } else {
                3
            }
        }
    };

    let all = which == "all" || which == "quick";
    let want = |id: &str| all || which == id;
    let t0 = Instant::now();

    // Each table section is timed so `--log-level verbose` can report
    // per-table wall clock on the progress stream.
    let section = |id: &str, print: &mut dyn FnMut()| {
        if !want(id) {
            return;
        }
        let t = Instant::now();
        print();
        if logs(LogLevel::Verbose) {
            eprintln!("[{id} in {:.1}s]", t.elapsed().as_secs_f64());
        }
    };
    section("e1", &mut || println!("{}", mca_bench::e1_speedup(trials)));
    section("e2", &mut || {
        println!("{}", mca_bench::e2_scaling_n(trials))
    });
    section("e3", &mut || println!("{}", mca_bench::e3_delta(trials)));
    section("e4", &mut || println!("{}", mca_bench::e4_coloring(trials)));
    section("e5", &mut || println!("{}", mca_bench::e5_ruling(trials)));
    section("e6", &mut || println!("{}", mca_bench::e6_dominate(trials)));
    section("e7", &mut || println!("{}", mca_bench::e7_csa(trials)));
    section("e8", &mut || {
        println!("{}", mca_bench::e8_reporters(trials))
    });
    section("e10", &mut || {
        let (a, b) = mca_bench::e10_lower_bounds(trials);
        println!("{a}");
        println!("{b}");
    });
    section("e11", &mut || println!("{}", mca_bench::e11_lemmas(trials)));
    section("e12", &mut || {
        println!("{}", mca_bench::e12_applications(trials))
    });
    section("e13", &mut || {
        println!("{}", mca_bench::e13_multimessage(trials))
    });
    section("e14", &mut || {
        println!("{}", mca_bench::e14_compressibility(trials))
    });
    section("e15", &mut || println!("{}", mca_bench::e15_mis(trials)));
    section("e16", &mut || {
        println!("{}", mca_bench::e16_mobility(trials))
    });
    section("t1", &mut || {
        println!("{}", mca_bench::t1_comparison(trials))
    });
    section("a1", &mut || {
        println!("{}", mca_bench::a1_ablations(trials))
    });
    section("a2", &mut || println!("{}", mca_bench::a2_faults(trials)));
    section("a3", &mut || println!("{}", mca_bench::a3_gossip(trials)));
    if which == "bench-sinr" {
        let json = mca_bench::sinr_bench::bench_sinr_json(trials.max(3));
        std::fs::write("BENCH_sinr.json", &json).expect("write BENCH_sinr.json");
        print!("{json}");
        if logs(LogLevel::Summary) {
            eprintln!("[wrote BENCH_sinr.json]");
        }
    }
    if which == "bench-shards" {
        // Smoke mode (CI): the ≤ 10k-node cases with 3 timing repeats
        // still run every arm and enforce the full gate — bit-identity
        // audits clean, sharded no slower than the sequential baseline,
        // and faster than the frozen PR 2 flat-grid path.
        let smoke = env::var("SHARD_BENCH_SMOKE").is_ok_and(|v| v == "1");
        let repeats = if smoke { 3 } else { trials.max(3) };
        let (json, ok) = mca_bench::shard_bench_json(repeats, smoke);
        print!("{json}");
        if smoke {
            if logs(LogLevel::Summary) {
                eprintln!(
                    "[bench-shards smoke: gate {}]",
                    if ok { "held" } else { "FAILED" }
                );
            }
        } else {
            std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
            if logs(LogLevel::Summary) {
                eprintln!("[wrote BENCH_shard.json]");
            }
        }
        if !ok {
            eprintln!("error: a bench-shards case failed its gate (see JSON above)");
            return ExitCode::FAILURE;
        }
    }
    if which == "repair-bench" {
        // Smoke mode (CI): one seed still runs every world and enforces the
        // acceptance gate — audits clean at every maintenance epoch and
        // repair strictly cheaper than rebuild.
        let smoke = env::var("REPAIR_BENCH_SMOKE").is_ok_and(|v| v == "1");
        let seeds = if smoke { 1 } else { trials.max(3) };
        let (json, ok) = mca_bench::repair_bench_json(seeds);
        print!("{json}");
        if smoke {
            if logs(LogLevel::Summary) {
                eprintln!(
                    "[repair-bench smoke: gate {}]",
                    if ok { "held" } else { "FAILED" }
                );
            }
        } else {
            std::fs::write("BENCH_repair.json", &json).expect("write BENCH_repair.json");
            if logs(LogLevel::Summary) {
                eprintln!("[wrote BENCH_repair.json]");
            }
        }
        if !ok {
            eprintln!("error: a repair-bench world failed its acceptance gate (see JSON above)");
            return ExitCode::FAILURE;
        }
    }
    if which == "adversary-bench" {
        // Smoke mode (CI): one seed still runs every adversary world and
        // enforces the acceptance gate — both arms audit clean, worlds
        // bit-identical, and the proactive arm detects, acts, and beats
        // the censored reactive time-to-repair strictly.
        let smoke = env::var("ADVERSARY_BENCH_SMOKE").is_ok_and(|v| v == "1");
        let seeds = if smoke { 1 } else { trials.max(3) };
        let (json, ok) = mca_bench::adversary_bench_json(seeds);
        print!("{json}");
        if smoke {
            if logs(LogLevel::Summary) {
                eprintln!(
                    "[adversary-bench smoke: gate {}]",
                    if ok { "held" } else { "FAILED" }
                );
            }
        } else {
            std::fs::write("BENCH_adversary.json", &json).expect("write BENCH_adversary.json");
            if logs(LogLevel::Summary) {
                eprintln!("[wrote BENCH_adversary.json]");
            }
        }
        if !ok {
            eprintln!(
                "error: an adversary-bench world failed its acceptance gate (see JSON above)"
            );
            return ExitCode::FAILURE;
        }
    }
    if logs(LogLevel::Summary) {
        eprintln!("[experiments done in {:.1}s]", t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

/// `experiments profile [--scenario <file.toml>] [--slots N] [--jsonl <path>]`
fn run_profile(args: &[String]) -> ExitCode {
    if !mca_bench::profile_supported() {
        eprintln!(
            "error: the observability layer is compiled out; rebuild with \
             `--features obs` to run `experiments profile`"
        );
        return ExitCode::from(2);
    }
    let mut scenario_path: Option<&str> = None;
    let mut slots: Option<u64> = None;
    let mut jsonl_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" => match it.next() {
                Some(p) => scenario_path = Some(p),
                None => {
                    eprintln!("error: --scenario needs a file path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--slots" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => slots = Some(n),
                _ => {
                    eprintln!("error: --slots needs a positive number\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--jsonl" => match it.next() {
                Some(p) => jsonl_path = Some(p),
                None => {
                    eprintln!("error: --jsonl needs a file path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // Which world: an explicit file, the small catalog world (CI smoke),
    // or the default 100k dense deployment. Only the default run writes
    // the committed artifact — a custom or shrunk world must not
    // masquerade as the reference profile.
    let smoke = env::var("PROFILE_SMOKE").is_ok_and(|v| v == "1");
    let (scenario, write_artifact) = if let Some(path) = scenario_path {
        let mut s = match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(n) = slots {
            s.max_slots = n;
        }
        (s, false)
    } else if smoke {
        let mut s = builtin_scenarios()
            .iter()
            .find(|e| e.scenario.name == "sharded-dense")
            .expect("catalog has sharded-dense")
            .scenario
            .clone();
        s.max_slots = slots.unwrap_or(40);
        (s, false)
    } else {
        let s = mca_bench::default_profile_scenario(slots.unwrap_or(30));
        (s, true)
    };
    let t0 = Instant::now();
    let run = mca_bench::profile_scenario(&scenario, mca_bench::PROFILE_SEED);
    // The recorder's export must satisfy the documented v1 schema before
    // anything is printed or written.
    let jsonl = run.recorder.to_jsonl();
    for (i, line) in jsonl.lines().enumerate() {
        if let Err(e) = mca_obs::validate_jsonl_line(line) {
            eprintln!("error: JSONL line {} violates the v1 schema: {e}", i + 1);
            return ExitCode::FAILURE;
        }
    }
    println!("{}", mca_bench::profile_table(&scenario, &run));
    if logs(LogLevel::Verbose) {
        eprint!("{}", run.report.to_folded());
    }
    if let Some(path) = jsonl_path {
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if logs(LogLevel::Summary) {
            eprintln!("[wrote {path}]");
        }
    }
    if write_artifact {
        let json = mca_bench::profile_json(&scenario, &run);
        std::fs::write("BENCH_profile.json", &json).expect("write BENCH_profile.json");
        if logs(LogLevel::Summary) {
            eprintln!("[wrote BENCH_profile.json]");
        }
    }
    if logs(LogLevel::Summary) {
        eprintln!(
            "[profile `{}` in {:.1}s: phase spans cover {:.1}% of slot time]",
            scenario.name,
            t0.elapsed().as_secs_f64(),
            run.slot_coverage() * 100.0
        );
    }
    if !run.gate_ok() {
        eprintln!(
            "error: phase spans cover {:.1}% of slot wall time, below the {:.0}% gate",
            run.slot_coverage() * 100.0,
            mca_bench::COVERAGE_GATE * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `experiments --scenario <file.toml> [--seeds N]`
fn run_scenario_file(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut seeds: usize = 3;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" => match it.next() {
                Some(p) => path = Some(p),
                None => {
                    eprintln!("error: --scenario needs a file path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--seeds" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => seeds = n,
                _ => {
                    eprintln!("error: --seeds needs a positive number\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let path = path.expect("--scenario presence checked by caller");
    let scenario = match Scenario::load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t0 = Instant::now();
    println!("{}", mca_bench::run_scenario(&scenario, seeds));
    if logs(LogLevel::Summary) {
        eprintln!(
            "[scenario `{}` x {seeds} seeds in {:.1}s]",
            scenario.name,
            t0.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}

/// `experiments golden-trials [--write] [path]`
fn golden_trials(args: &[String]) -> ExitCode {
    let mut write = false;
    let mut path = "scenarios/GOLDEN_trials.json";
    for arg in args {
        match arg.as_str() {
            "--write" => write = true,
            other if !other.starts_with('-') => path = other,
            other => {
                eprintln!("error: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if write {
        let json = mca_bench::golden_trials_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return ExitCode::SUCCESS;
    }
    match mca_bench::check_golden_trials(path) {
        Ok(()) => {
            println!("golden trial metrics match {path} (bit-identical)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `experiments export-scenarios [dir]`
fn export_scenarios(dir: &str) -> ExitCode {
    let dir = Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for entry in builtin_scenarios() {
        let path = dir.join(entry.file_name());
        if let Err(e) = std::fs::write(&path, entry.file_contents()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// `experiments check-scenarios [dir]`
fn check_scenarios(dir: &str) -> ExitCode {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut files: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("error: no .toml files under {dir}");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for path in &files {
        match Scenario::load(path) {
            Ok(s) => println!(
                "ok   {} (n={}, F={}, {} slots)",
                path.display(),
                s.len(),
                s.channels,
                s.max_slots
            ),
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {e}");
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures}/{} scenario files failed to parse", files.len());
        ExitCode::FAILURE
    } else {
        println!("{} scenario files parsed cleanly", files.len());
        ExitCode::SUCCESS
    }
}
