//! `experiments serve` — a resumable trial service over a queue directory.
//!
//! The service watches a queue directory for scenario/matrix TOML files
//! and runs each through [`crate::sweep::run_sweep_file`], streaming the
//! per-trial JSONL records and checkpoint journal into an output
//! directory. A `<stem>.done` marker (holding the final summary line)
//! records completion; files with markers are never re-run, and files
//! whose journals are partial resume exactly where they stopped — the
//! service can be killed at any point and restarted without losing or
//! duplicating work.
//!
//! File discovery is sorted by name, so service order is deterministic
//! for a fixed queue. [`serve_once`] performs one scan-and-drain pass
//! (the `--once` mode and the unit of testing); [`serve`] polls forever.

use crate::sweep::{run_sweep_file, SweepConfig, SweepError, SweepSummary};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// How the service runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory scanned for `*.toml` sweep inputs.
    pub queue_dir: PathBuf,
    /// Where record streams, journals, and done markers land. Defaults to
    /// the queue directory itself.
    pub out_dir: PathBuf,
    /// Milliseconds between queue scans when polling.
    pub poll_ms: u64,
    /// Resolve trial batches across the worker pool.
    pub parallel: bool,
}

impl ServeConfig {
    /// The default service configuration over `queue_dir`: outputs land
    /// beside the inputs and the queue is scanned once a second.
    pub fn new(queue_dir: PathBuf) -> ServeConfig {
        ServeConfig {
            out_dir: queue_dir.clone(),
            queue_dir,
            poll_ms: 1000,
            parallel: true,
        }
    }

    /// The sweep configuration for the queue input at `input`.
    pub fn sweep_config(&self, input: &Path) -> SweepConfig {
        let stem = stem_of(input);
        SweepConfig {
            out_path: self.out_dir.join(format!("{stem}.trials.jsonl")),
            journal_path: self.out_dir.join(format!("{stem}.journal")),
            limit: None,
            fresh: false,
            parallel: self.parallel,
        }
    }

    /// The completion-marker path for the queue input at `input`.
    pub fn done_path(&self, input: &Path) -> PathBuf {
        self.out_dir.join(format!("{}.done", stem_of(input)))
    }
}

fn stem_of(input: &Path) -> String {
    input
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "sweep".to_string())
}

/// What one queue pass did: each input served, with its summary.
pub type ServeReport = Vec<(PathBuf, SweepSummary)>;

fn io_err(path: &Path, error: std::io::Error) -> SweepError {
    SweepError::Io {
        path: path.to_path_buf(),
        error,
    }
}

/// The queue's pending inputs: `*.toml` files without done markers,
/// sorted by name.
pub fn pending_inputs(cfg: &ServeConfig) -> Result<Vec<PathBuf>, SweepError> {
    let entries = std::fs::read_dir(&cfg.queue_dir).map_err(|e| io_err(&cfg.queue_dir, e))?;
    let mut inputs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(&cfg.queue_dir, e))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        if cfg.done_path(&path).exists() {
            continue;
        }
        inputs.push(path);
    }
    inputs.sort();
    Ok(inputs)
}

/// Scans the queue once and drains every pending input to completion,
/// resuming partial journals. Returns what was served.
pub fn serve_once(cfg: &ServeConfig) -> Result<ServeReport, SweepError> {
    let mut report = Vec::new();
    for input in pending_inputs(cfg)? {
        let summary = run_sweep_file(&input, &cfg.sweep_config(&input))?;
        debug_assert!(summary.complete, "unlimited sweep must complete");
        let done = cfg.done_path(&input);
        std::fs::write(&done, format!("{}\n", summary.line())).map_err(|e| io_err(&done, e))?;
        report.push((input, summary));
    }
    Ok(report)
}

/// Polls the queue forever, draining pending inputs each pass and
/// reporting each served input through `on_served`. Only returns on
/// error.
pub fn serve(
    cfg: &ServeConfig,
    mut on_served: impl FnMut(&Path, &SweepSummary),
) -> Result<std::convert::Infallible, SweepError> {
    loop {
        for (input, summary) in serve_once(cfg)? {
            on_served(&input, &summary);
        }
        std::thread::sleep(Duration::from_millis(cfg.poll_ms));
    }
}
