//! Workloads, measurement, and the CI gate for the sharded engine
//! benchmark (`experiments bench-shards` → `BENCH_shard.json`).
//!
//! One "slot" is what the engine's Phase 2 does per slot for every
//! channel: index the channel's transmitter set, then resolve all of its
//! listeners. Five arms resolve exactly the same worlds:
//!
//! * **`pr2`** — a frozen copy of the PR 2 resolver's flat-grid Fast path
//!   (exact near field inside the cutoff, one aggregated term per far
//!   *cell*, every occupied cell visited per listener). This is the
//!   baseline the sharded engine is measured against; freezing it here
//!   keeps the recorded speedups anchored even as the live resolver
//!   evolves (the same trick `sinr_bench` plays with the seed scan).
//! * **`seq`** — the live hierarchical resolver
//!   ([`ChannelResolver`]), one whole-channel unit at a time, no
//!   parallelism. The per-listener far field visits blocks, descending
//!   only inside the halo neighborhood — the algorithmic win.
//! * **`par_channels`** — the live resolver with channels fanned out
//!   across threads (the PR 2 engine's parallel axis; equal to `seq` on a
//!   single-core host).
//! * **`sharded`** — the sharded engine's schedule: listeners partitioned
//!   by a [`ShardMap`], (channel × shard) units resolved through
//!   per-task halo views ([`ChannelResolver::task`]), outcomes merged
//!   shard-major.
//! * **`pooled`** — the same (channel × shard) units submitted to the
//!   persistent work-stealing pool as individually stealable tasks
//!   writing into pre-indexed slots, the submitting thread helping until
//!   the scope drains — the schedule `Engine::step` now runs. Measured
//!   at a pinned worker count (8, or 2 under `SHARD_BENCH_SMOKE=1`); the
//!   JSON records the host's core count so the speedup figures read
//!   honestly on small machines, and the gate scales with it.
//! * **`scalar` / `lanes`** — the sharded schedule with the SIMD lane
//!   kernels pinned off / on per resolver
//!   ([`ChannelResolver::with_lanes`]), regardless of the process-wide
//!   `MCA_LANES` default. `scalar` *is* the PR 8 `sharded` arm (the lane
//!   rework left the scalar code path byte-for-byte in place), so
//!   `lanes_speedup_vs_scalar` measures exactly what the SoA lane kernels
//!   buy — and since lane resolution is bit-identical to scalar, the pair
//!   is also audited listener-for-listener
//!   ([`audit_lanes_bit_identity`]).
//!
//! The matrix additionally carries a **1M-node dense world** in reduced
//! form: only the `scalar`/`lanes` pair runs (the frozen PR 2 baseline
//! would take minutes per slot there), with both audits still enforced.
//! Under `SHARD_BENCH_SMOKE=1` this row shrinks to 32k nodes — sized for
//! CI, but still driving the lane path end to end.
//!
//! Every arm's outcomes are audited bit-identical to `seq` before timing
//! counts — the determinism contract, enforced (`SHARD_BENCH_SMOKE=1`
//! exits non-zero) alongside the throughput gates: sharded resolution must
//! not regress below the sequential baseline, must beat the frozen
//! PR 2 path, and the `lanes` arm must not lose to `scalar` on any dense
//! single-channel world of 10k+ nodes (with a ≥ 2× bar on the 100k world
//! when the binary was compiled with ≥ 4-wide f64 SIMD).

use crate::sinr_bench::{build_world, SinrWorld};
use mca_geom::{BoundingBox, Point, SpatialGrid};
use mca_radio::ShardMap;
use mca_sinr::{ChannelResolver, ListenOutcome, ResolveMode, SinrParams};
use rayon::prelude::*;
use std::hint::black_box;
use std::time::Instant;

// ---------------------------------------------------------------------------
// The frozen PR 2 flat-grid resolver
// ---------------------------------------------------------------------------

/// Frozen copy of the PR 2 Fast-mode constants (`resolve_batch.rs` as of
/// the batched-SINR PR).
const PR2_FAST_MIN_TX: usize = 16;
const PR2_MAX_CELLS_PER_AXIS: f64 = 192.0;

/// `(rect, start, end)` per occupied cell, row-major, plus the flat
/// transmitter-index store the ranges point into.
type Pr2Cells = (Vec<(BoundingBox, u32, u32)>, Vec<u32>);

/// Frozen copy of the PR 2 Fast-mode resolver: a single-level cell grid,
/// every occupied cell visited per listener.
struct Pr2FlatResolver<'a> {
    params: &'a SinrParams,
    tx: &'a [Point],
    /// `None` when the PR 2 heuristics refused the grid (exact scan
    /// fallback).
    cells: Option<Pr2Cells>,
    cutoff_sq: f64,
}

impl<'a> Pr2FlatResolver<'a> {
    fn new(params: &'a SinrParams, tx: &'a [Point]) -> Self {
        let mut cutoff_sq = f64::INFINITY;
        let cells = match params.resolve {
            ResolveMode::Fast { cutoff_factor } if tx.len() >= PR2_FAST_MIN_TX => {
                let rt = params.transmission_range();
                let cutoff = cutoff_factor * rt;
                cutoff_sq = cutoff * cutoff;
                let bb = BoundingBox::from_points(tx.iter().copied()).expect("non-empty tx");
                let extent = bb.width().max(bb.height());
                let occupancy_side = (bb.area() * 4.0 / tx.len() as f64).sqrt();
                let side = (rt / 4.0)
                    .max(occupancy_side)
                    .max(extent / PR2_MAX_CELLS_PER_AXIS);
                let diag_sq = bb.min().dist_sq(bb.max());
                let ncells =
                    ((bb.width() / side) as usize + 1) * ((bb.height() / side) as usize + 1);
                if diag_sq <= cutoff_sq || ncells * 2 > tx.len() {
                    None
                } else {
                    let grid = SpatialGrid::build(tx, side);
                    let mut cells = Vec::new();
                    let mut items = Vec::with_capacity(tx.len());
                    grid.for_each_cell(|cell| {
                        let start = items.len() as u32;
                        items.extend_from_slice(cell.items);
                        cells.push((cell.rect, start, items.len() as u32));
                    });
                    Some((cells, items))
                }
            }
            _ => None,
        };
        Pr2FlatResolver {
            params,
            tx,
            cells,
            cutoff_sq,
        }
    }

    fn resolve(&self, listener: Point, extra: f64) -> ListenOutcome {
        let Some((cells, items)) = &self.cells else {
            return mca_sinr::resolve_listener_ext(self.params, self.tx, listener, extra);
        };
        let params = self.params;
        let mut total = extra;
        let mut best = 0usize;
        let mut best_pow = f64::NEG_INFINITY;
        let mut far_est = 0.0;
        for &(rect, start, end) in cells {
            if rect.dist_sq_to(listener) <= self.cutoff_sq {
                for &i in &items[start as usize..end as usize] {
                    let p = params.received_power_sq(self.tx[i as usize].dist_sq(listener));
                    total += p;
                    if p > best_pow || (p == best_pow && (i as usize) < best) {
                        best_pow = p;
                        best = i as usize;
                    }
                }
            } else {
                far_est += f64::from(end - start)
                    * params.received_power_sq(rect.center().dist_sq(listener));
            }
        }
        total += far_est;
        if best_pow == f64::NEG_INFINITY {
            return ListenOutcome {
                decoded: None,
                signal: 0.0,
                sinr: 0.0,
                total_power: total,
            };
        }
        let interference = total - best_pow;
        let sinr = best_pow / (params.noise + interference);
        if sinr >= params.beta {
            ListenOutcome {
                decoded: Some(best),
                signal: best_pow,
                sinr,
                total_power: total,
            }
        } else {
            ListenOutcome {
                decoded: None,
                signal: 0.0,
                sinr: 0.0,
                total_power: total,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The four arms
// ---------------------------------------------------------------------------

/// One slot under the frozen PR 2 flat-grid path — which, true to PR 2's
/// engine, rebuilds its grid from scratch every slot.
pub fn pr2_flat_slot(params: &SinrParams, world: &SinrWorld) -> f64 {
    let mut acc = 0.0;
    for (tx, rx) in world.tx.iter().zip(&world.rx) {
        let resolver = Pr2FlatResolver::new(params, tx);
        for &l in rx {
            let o = resolver.resolve(l, 0.0);
            acc += o.total_power + f64::from(u8::from(o.decoded.is_some()));
        }
    }
    black_box(acc)
}

/// Per-channel persistent state for the live arms: the resolver caches
/// (as the engine's channel groups hold) and the shard maps (as the
/// engine maintains incrementally). Built once per world, like the
/// engine; what stays in the timed slot is exactly what the engine pays
/// per slot — the cache validation pass, listener bucketing, and
/// resolution.
pub struct LiveArmState {
    caches: Vec<mca_sinr::ResolverCache>,
    maps: Vec<ShardMap>,
}

impl LiveArmState {
    /// Prepares caches and shard maps for `world` (caches cold; the first
    /// timed or warm-up slot fills them, then they only re-validate).
    pub fn new(world: &SinrWorld, s: u16) -> Self {
        LiveArmState {
            caches: world
                .tx
                .iter()
                .map(|_| mca_sinr::ResolverCache::new())
                .collect(),
            maps: world.rx.iter().map(|rx| ShardMap::new(s, rx)).collect(),
        }
    }
}

/// One slot through the live hierarchical resolver, strictly sequential.
pub fn seq_slot(params: &SinrParams, world: &SinrWorld, state: &mut LiveArmState) -> f64 {
    let mut acc = 0.0;
    for (ci, rx) in world.rx.iter().enumerate() {
        let resolver = ChannelResolver::cached(params, &world.tx[ci], &mut state.caches[ci]);
        for &l in rx {
            let o = resolver.resolve(l, 0.0);
            acc += o.total_power + f64::from(u8::from(o.decoded.is_some()));
        }
    }
    black_box(acc)
}

/// One slot with channels fanned out across threads (PR 2's parallel
/// axis): a sequential cache-validation pass (as the engine's Phase 2
/// does), then one parallel pass over channels.
pub fn par_channels_slot(params: &SinrParams, world: &SinrWorld, state: &mut LiveArmState) -> f64 {
    for (ci, cache) in state.caches.iter_mut().enumerate() {
        let _ = ChannelResolver::cached(params, &world.tx[ci], cache);
    }
    let caches = &state.caches;
    let sums: Vec<f64> = (0..world.tx.len())
        .into_par_iter()
        .map(|ci| {
            let resolver = caches[ci]
                .resolver_for(params, &world.tx[ci])
                .expect("cache warmed by the ensure pass");
            let mut acc = 0.0;
            for &l in &world.rx[ci] {
                let o = resolver.resolve(l, 0.0);
                acc += o.total_power + f64::from(u8::from(o.decoded.is_some()));
            }
            acc
        })
        .collect();
    black_box(sums.iter().sum())
}

/// One slot under the sharded schedule: a sequential ensure pass, per-slot
/// listener bucketing against the maintained [`ShardMap`]s, then one flat
/// parallel pass over all (channel × shard) units resolved through
/// per-task halo views.
pub fn sharded_slot(params: &SinrParams, world: &SinrWorld, state: &mut LiveArmState) -> f64 {
    sharded_slot_with(params, world, state, None)
}

/// [`sharded_slot`] with the lane kernels pinned **on** per resolver —
/// the `lanes` arm.
pub fn lanes_slot(params: &SinrParams, world: &SinrWorld, state: &mut LiveArmState) -> f64 {
    sharded_slot_with(params, world, state, Some(true))
}

/// [`sharded_slot`] with the lane kernels pinned **off** per resolver —
/// the `scalar` arm, byte-for-byte the PR 8 `sharded` schedule.
pub fn scalar_slot(params: &SinrParams, world: &SinrWorld, state: &mut LiveArmState) -> f64 {
    sharded_slot_with(params, world, state, Some(false))
}

/// Sharded-schedule core: `lanes` pins the per-resolver lane toggle
/// (`None` follows the process default). Outcomes are identical for every
/// value — the toggle only selects which bit-identical kernel runs.
fn sharded_slot_with(
    params: &SinrParams,
    world: &SinrWorld,
    state: &mut LiveArmState,
    lanes: Option<bool>,
) -> f64 {
    for (ci, cache) in state.caches.iter_mut().enumerate() {
        let _ = ChannelResolver::cached(params, &world.tx[ci], cache);
    }
    let caches = &state.caches;
    let mut units: Vec<(usize, Vec<usize>)> = Vec::new();
    for (ci, rx) in world.rx.iter().enumerate() {
        for ks in shard_units(rx, &state.maps[ci]) {
            units.push((ci, ks));
        }
    }
    let sums: Vec<f64> = units
        .par_iter()
        .map(|(ci, ks)| {
            let rx = &world.rx[*ci];
            let resolver = caches[*ci]
                .resolver_for(params, &world.tx[*ci])
                .expect("cache warmed by the ensure pass");
            let resolver = match lanes {
                Some(v) => resolver.with_lanes(v),
                None => resolver,
            };
            // Resolve the unit through the batched walk into a buffer,
            // then fold the accumulator in the unit's own listener order —
            // the same fold sequence as the per-listener loop, so the arm
            // sum stays bitwise stable under batching.
            let mut out = Vec::new();
            if ks.len() == rx.len() {
                // Whole-channel unit (below the engagement threshold, or a
                // single occupied shard): resolve directly, as the engine's
                // unsharded channel path does.
                resolver.resolve_batch_into(rx, 0.0, &mut out);
            } else {
                let pts: Vec<Point> = ks.iter().map(|&k| rx[k]).collect();
                let bbox = BoundingBox::from_points(pts.iter().copied()).expect("non-empty unit");
                resolver.task(bbox).resolve_batch_into(&pts, 0.0, &mut out);
            }
            let mut acc = 0.0;
            for o in &out {
                acc += o.total_power + f64::from(u8::from(o.decoded.is_some()));
            }
            acc
        })
        .collect();
    black_box(sums.iter().sum())
}

/// One slot under the pooled pipeline schedule the engine now runs: the
/// same (channel × shard) units as [`sharded_slot`], but submitted to
/// the persistent work-stealing pool as individually stealable tasks,
/// each writing its partial sum into a pre-indexed slot while the
/// submitting thread helps drain the scope. Scheduling is greedy
/// (stealable, no barrier between units); determinism comes from the
/// pre-indexed slots, exactly as the engine's scatter merge.
pub fn pooled_slot(params: &SinrParams, world: &SinrWorld, state: &mut LiveArmState) -> f64 {
    for (ci, cache) in state.caches.iter_mut().enumerate() {
        let _ = ChannelResolver::cached(params, &world.tx[ci], cache);
    }
    let caches = &state.caches;
    let mut units: Vec<(usize, Vec<usize>)> = Vec::new();
    for (ci, rx) in world.rx.iter().enumerate() {
        for ks in shard_units(rx, &state.maps[ci]) {
            units.push((ci, ks));
        }
    }
    let mut sums = vec![0.0f64; units.len()];
    rayon::scope(|s| {
        for (out, (ci, ks)) in sums.iter_mut().zip(&units) {
            s.spawn(move || {
                let rx = &world.rx[*ci];
                let resolver = caches[*ci]
                    .resolver_for(params, &world.tx[*ci])
                    .expect("cache warmed by the ensure pass");
                let mut outcomes = Vec::new();
                if ks.len() == rx.len() {
                    resolver.resolve_batch_into(rx, 0.0, &mut outcomes);
                } else {
                    let pts: Vec<Point> = ks.iter().map(|&k| rx[k]).collect();
                    let bbox =
                        BoundingBox::from_points(pts.iter().copied()).expect("non-empty unit");
                    resolver
                        .task(bbox)
                        .resolve_batch_into(&pts, 0.0, &mut outcomes);
                }
                let mut acc = 0.0;
                for o in &outcomes {
                    acc += o.total_power + f64::from(u8::from(o.decoded.is_some()));
                }
                *out = acc;
            });
        }
    });
    black_box(sums.iter().sum())
}

/// Shard-major listener partition of one channel's listeners (the bench
/// mirror of the engine's counting-sort bucketing, including its
/// minimum-listener engagement threshold).
fn shard_units(rx: &[Point], map: &ShardMap) -> Vec<Vec<usize>> {
    if rx.is_empty() {
        return Vec::new();
    }
    let s_eff = mca_radio::shard::effective_shards(map.shards(), rx.len());
    if s_eff < 2 {
        return vec![(0..rx.len()).collect()];
    }
    let mut units: Vec<Vec<usize>> = vec![Vec::new(); usize::from(s_eff) * usize::from(s_eff)];
    for k in 0..rx.len() {
        units[usize::from(map.coarse_shard_of(k as u32, s_eff))].push(k);
    }
    units.retain(|u| !u.is_empty());
    units
}

/// Audits that the sharded schedule produces bit-identical outcomes to
/// the plain sequential resolver on `world` — the determinism contract
/// the smoke gate enforces. Returns the number of mismatching listeners.
pub fn audit_sharded_bit_identity(params: &SinrParams, world: &SinrWorld, s: u16) -> usize {
    let mut mismatches = 0;
    for (tx, rx) in world.tx.iter().zip(&world.rx) {
        let resolver = ChannelResolver::new(params, tx);
        let map = ShardMap::new(s, rx);
        for ks in shard_units(rx, &map) {
            let bbox = BoundingBox::from_points(ks.iter().map(|&k| rx[k])).expect("non-empty unit");
            let task = resolver.task(bbox);
            for k in ks {
                if task.resolve(rx[k], 0.0) != resolver.resolve(rx[k], 0.0) {
                    mismatches += 1;
                }
            }
        }
    }
    mismatches
}

/// Audits that lane-kernel resolution is **bitwise** identical to scalar
/// resolution on `world` — the lane determinism contract (stricter than
/// `PartialEq`: every f64 field compared by bits). Returns the number of
/// mismatching listeners.
pub fn audit_lanes_bit_identity(params: &SinrParams, world: &SinrWorld) -> usize {
    let mut mismatches = 0;
    for (tx, rx) in world.tx.iter().zip(&world.rx) {
        let on = ChannelResolver::new(params, tx).with_lanes(true);
        let off = ChannelResolver::new(params, tx).with_lanes(false);
        for &l in rx {
            let a = on.resolve(l, 0.0);
            let b = off.resolve(l, 0.0);
            if a.decoded != b.decoded
                || a.signal.to_bits() != b.signal.to_bits()
                || a.sinr.to_bits() != b.sinr.to_bits()
                || a.total_power.to_bits() != b.total_power.to_bits()
            {
                mismatches += 1;
            }
        }
    }
    mismatches
}

// ---------------------------------------------------------------------------
// Measurement, JSON, and the gate
// ---------------------------------------------------------------------------

/// `(median, min)` wall time of `repeats` runs of `f`, in nanoseconds.
/// The median is the honest throughput figure the JSON reports; the min
/// is what the gate compares — it is far less sensitive to unrelated
/// machine load, so the regression gate does not flap in CI.
fn measure_ns<F: FnMut() -> f64>(repeats: usize, mut f: F) -> (u128, u128) {
    black_box(f()); // warm-up, untimed
    let mut samples: Vec<u128> = (0..repeats.max(1))
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    (samples[samples.len() / 2], samples[0])
}

/// The benchmark matrix: node count × channel count (dense deployments —
/// the regime the sharded engine targets).
pub const SHARD_BENCH_CASES: [(usize, u16); 6] = [
    (1_000, 1),
    (1_000, 16),
    (10_000, 1),
    (10_000, 16),
    (100_000, 1),
    (100_000, 16),
];

/// Shards per axis used for a world of `n` nodes.
pub fn shards_for(n: usize) -> u16 {
    if n >= 50_000 {
        8
    } else {
        4
    }
}

/// Runs the matrix and renders `BENCH_shard.json`; the returned flag is
/// the combined gate verdict: every case's outcomes bit-identical, no
/// case's sharded throughput below the sequential baseline (10%
/// timing-noise allowance), on the largest world of the run the sharded
/// schedule strictly faster than the frozen PR 2 path, and the pooled
/// pipeline clearing its core-scaled speedup bar (see below). `smoke`
/// restricts the matrix to ≤ 10k nodes — the CI configuration — and
/// additionally requires the pooled arm to have recorded at least one
/// steal (the work-stealing sanity gate: with ≥ 2 workers plus a helping
/// submitter, a run that never steals means the pool is not actually
/// distributing work).
pub fn shard_bench_json(repeats: usize, smoke: bool) -> (String, bool) {
    let params = SinrParams::default().with_resolve(ResolveMode::fast());
    let mut cases = Vec::new();
    let mut ok = true;
    let largest = if smoke { 10_000 } else { 100_000 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The pooled arm pins its worker count so the committed row always
    // reports the same schedule (8 workers; 2 in smoke, where CI machines
    // are small and the point is the steal gate, not throughput).
    let pooled_threads = if smoke { 2 } else { 8 };
    // What speedup over `seq` the pooled pipeline must deliver on the
    // largest world, given the machine it actually ran on: ≥ 2× with 8+
    // cores, ≥ 1.2× with 2+; on a single core a pinned multi-worker pool
    // only timeslices, so the bar is "no regression" (with a wider 25%
    // allowance than the sharded arm's — OS-thread contention is real).
    let pooled_bar = if cores >= 8 {
        2.0
    } else if cores >= 2 {
        1.2
    } else {
        1.0 / 1.25
    };
    let mut pooled_steals_total: u64 = 0;
    // The matrix: the full-arm cases, then the 1M-node dense world in
    // reduced form (only the scalar/lanes pair — the frozen PR 2 baseline
    // would take minutes per slot at that scale). Smoke shrinks the
    // reduced row to 32k nodes, still driving the lane path end to end.
    let mut matrix: Vec<(usize, u16, bool)> = SHARD_BENCH_CASES
        .iter()
        .filter(|&&(n, _)| !smoke || n <= 10_000)
        .map(|&(n, c)| (n, c, false))
        .collect();
    matrix.push(if smoke {
        (32_000, 1, true)
    } else {
        (1_000_000, 1, true)
    });
    for (n, channels, reduced) in matrix {
        let world = build_world(n, channels, true, 7);
        let s = shards_for(n);
        let engaged = world
            .rx
            .iter()
            .any(|rx| mca_radio::shard::effective_shards(s, rx.len()) >= 2);
        // The reduced row caps its repeats: one 1M slot is seconds of
        // wall time, and the row's claims (completion + audits + the
        // lanes-vs-scalar comparison) don't need a deep sample.
        let case_repeats = if reduced {
            repeats.clamp(1, 2)
        } else {
            repeats
        };
        let mismatches = audit_sharded_bit_identity(&params, &world, s);
        let lane_mismatches = audit_lanes_bit_identity(&params, &world);
        let mut state = LiveArmState::new(&world, s);
        // Full arms (skipped on the reduced row).
        let mut full = None;
        if !reduced {
            let (pr2_ns, pr2_min) = measure_ns(repeats, || pr2_flat_slot(&params, &world));
            let (seq_ns, seq_min) = measure_ns(repeats, || seq_slot(&params, &world, &mut state));
            let (par_ns, _) =
                measure_ns(repeats, || par_channels_slot(&params, &world, &mut state));
            let (sharded_ns, sharded_min) =
                measure_ns(repeats, || sharded_slot(&params, &world, &mut state));
            let prev_threads = rayon::current_num_threads();
            rayon::set_num_threads(pooled_threads);
            let steals_before = rayon::pool_stats().steals;
            let (pooled_ns, pooled_min) =
                measure_ns(repeats, || pooled_slot(&params, &world, &mut state));
            let pooled_steals = rayon::pool_stats().steals - steals_before;
            rayon::set_num_threads(prev_threads);
            pooled_steals_total += pooled_steals;
            full = Some((
                pr2_ns,
                pr2_min,
                seq_ns,
                seq_min,
                par_ns,
                sharded_ns,
                sharded_min,
                pooled_ns,
                pooled_min,
                pooled_steals,
            ));
        }
        // The lane pair runs on every row, reduced or not.
        let (scalar_ns, scalar_min) =
            measure_ns(case_repeats, || scalar_slot(&params, &world, &mut state));
        let (lanes_ns, lanes_min) =
            measure_ns(case_repeats, || lanes_slot(&params, &world, &mut state));
        let lanes_vs_scalar = scalar_ns as f64 / lanes_ns.max(1) as f64;

        let audits_ok = mismatches == 0 && lane_mismatches == 0;
        // Lane gates: on dense single-channel worlds of 10k+ nodes the
        // lane arm must not lose to scalar (5% timing-noise allowance),
        // and on the full 100k single-channel case a ≥ 2× speedup is
        // required when the binary was compiled with ≥ 4-wide f64 SIMD
        // (an SSE2-baseline build cannot be expected to double a
        // sqrt-bound kernel, so the bar disengages honestly there).
        let lanes_ok =
            !(channels == 1 && n >= 10_000) || lanes_min as f64 <= scalar_min as f64 * 1.05;
        let lanes_bar_engaged =
            !smoke && !reduced && n == 100_000 && channels == 1 && mca_sinr::lanes::simd_capable();
        let lanes_bar_ok = !lanes_bar_engaged || scalar_min as f64 >= 2.0 * lanes_min as f64;
        // The gate compares best-of-N times (robust to unrelated machine
        // load). Below the engagement threshold the sharded arm *is* the
        // sequential schedule, so the throughput comparison would only
        // measure harness noise — the audit still applies. The same logic
        // scopes the pooled gate: on sub-threshold worlds a slot is a few
        // hundred µs of whole-channel units, so the comparison measures
        // scope/wake overhead, not the pipeline. The speedup bar applies
        // on the largest single-channel world (the dense regime the
        // pipeline targets); other engaged cases only must not regress
        // (25% allowance — OS-thread contention under pinned workers).
        let full_ok = match full {
            None => true,
            Some((_, pr2_min, _, seq_min, _, _, sharded_min, _, pooled_min, _)) => {
                let pooled_ok = if n >= largest && channels == 1 {
                    seq_min as f64 >= pooled_min as f64 * pooled_bar
                } else {
                    !engaged || pooled_min as f64 <= seq_min as f64 * 1.25
                };
                (!engaged || sharded_min as f64 <= seq_min as f64 * 1.10)
                    && (n < largest || sharded_min < pr2_min)
                    && pooled_ok
            }
        };
        let case_ok = audits_ok && lanes_ok && lanes_bar_ok && full_ok;
        ok &= case_ok;

        let mut row = format!(
            concat!(
                "    {{\"n\": {}, \"channels\": {}, \"shards\": {}, \"sharding_engaged\": {}, ",
                "\"million_node_reduced\": {}, "
            ),
            n, channels, s, engaged, reduced,
        );
        if let Some((pr2_ns, _, seq_ns, _, par_ns, sharded_ns, _, pooled_ns, _, pooled_steals)) =
            full
        {
            row.push_str(&format!(
                concat!(
                    "\"pr2_ns_per_slot\": {}, \"seq_ns_per_slot\": {}, ",
                    "\"par_channels_ns_per_slot\": {}, \"sharded_ns_per_slot\": {}, ",
                    "\"pooled_ns_per_slot\": {}, ",
                    "\"sharded_speedup_vs_pr2\": {:.2}, \"sharded_speedup_vs_seq\": {:.2}, ",
                    "\"pooled_speedup_vs_seq\": {:.2}, \"pooled_steals\": {}, "
                ),
                pr2_ns,
                seq_ns,
                par_ns,
                sharded_ns,
                pooled_ns,
                pr2_ns as f64 / sharded_ns.max(1) as f64,
                seq_ns as f64 / sharded_ns.max(1) as f64,
                seq_ns as f64 / pooled_ns.max(1) as f64,
                pooled_steals,
            ));
        }
        row.push_str(&format!(
            concat!(
                "\"scalar_ns_per_slot\": {}, \"lanes_ns_per_slot\": {}, ",
                "\"lanes_speedup_vs_scalar\": {:.2}, \"lanes_gate_engaged\": {}, ",
                "\"audit_bit_identical\": {}, \"gate_ok\": {}}}"
            ),
            scalar_ns, lanes_ns, lanes_vs_scalar, lanes_bar_engaged, audits_ok, case_ok,
        ));
        cases.push(row);
    }
    // Work-stealing sanity: in smoke (≥ 2 pinned workers, thousands of
    // stealable unit tasks, plus the submitter helping via steal-path
    // dequeues) a steal count of zero means the pool never distributed
    // work — fail loudly rather than silently benchmarking a sequential
    // schedule.
    let steal_gate_ok = !smoke || pooled_threads < 2 || pooled_steals_total > 0;
    ok &= steal_gate_ok;
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"shard_engine\",\n",
            "  \"scope\": \"one slot of Phase-2 channel resolution (index + all listeners), dense worlds\",\n",
            "  \"baseline\": \"frozen PR 2 flat-grid Fast resolver (every occupied cell per listener)\",\n",
            "  \"threads\": {},\n  \"pooled_threads\": {},\n  \"cores\": {},\n",
            "  \"simd\": \"{}\",\n  \"lanes_default_on\": {},\n",
            "  \"repeats\": {},\n  \"smoke\": {},\n  \"steal_gate_ok\": {},\n  \"cases\": [\n{}\n  ]\n}}\n"
        ),
        rayon::current_num_threads(),
        pooled_threads,
        cores,
        mca_sinr::lanes::simd_level(),
        mca_sinr::lanes::enabled(),
        repeats,
        smoke,
        steal_gate_ok,
        cases.join(",\n")
    );
    (json, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_pr2_agrees_with_live_resolver_on_decisions() {
        // The frozen baseline and the live hierarchical resolver share the
        // exact near field, so decodes agree wherever the (bounded) far
        // fields do not straddle the threshold; on a modest world they
        // should agree everywhere that matters. This guards the frozen
        // copy against drift-by-typo.
        let params = SinrParams::default().with_resolve(ResolveMode::fast());
        let world = build_world(2_000, 2, true, 3);
        let mut disagreements = 0usize;
        let mut listeners = 0usize;
        for (tx, rx) in world.tx.iter().zip(&world.rx) {
            let frozen = Pr2FlatResolver::new(&params, tx);
            let live = ChannelResolver::new(&params, tx);
            for &l in rx {
                listeners += 1;
                if frozen.resolve(l, 0.0).decoded != live.resolve(l, 0.0).decoded {
                    disagreements += 1;
                }
            }
        }
        assert!(
            disagreements * 20 <= listeners,
            "frozen and live resolvers disagree on {disagreements}/{listeners} decodes"
        );
    }

    #[test]
    fn sharded_schedule_is_bit_identical() {
        let params = SinrParams::default().with_resolve(ResolveMode::fast());
        let world = build_world(2_000, 2, true, 5);
        assert_eq!(audit_sharded_bit_identity(&params, &world, 4), 0);
    }

    #[test]
    fn lane_and_scalar_arms_are_bit_identical_and_audited() {
        let params = SinrParams::default().with_resolve(ResolveMode::fast());
        let world = build_world(2_000, 2, true, 11);
        assert_eq!(audit_lanes_bit_identity(&params, &world), 0);
        let s = shards_for(2_000);
        let mut state = LiveArmState::new(&world, s);
        // The arm pair runs the same schedule over bit-identical kernels,
        // so even the checksums match exactly (identical sum order).
        let a = scalar_slot(&params, &world, &mut state);
        let b = lanes_slot(&params, &world, &mut state);
        let c = sharded_slot(&params, &world, &mut state);
        assert_eq!(a.to_bits(), b.to_bits(), "lane arm diverged from scalar");
        assert_eq!(
            a.to_bits(),
            c.to_bits(),
            "default arm diverged from pinned arms"
        );
    }

    #[test]
    fn live_arms_agree_with_each_other_and_sub_threshold_channels_stay_single_unit() {
        let params = SinrParams::default().with_resolve(ResolveMode::fast());
        let world = build_world(1_000, 4, true, 9);
        let s = shards_for(1_000);
        let mut state = LiveArmState::new(&world, s);
        let a = seq_slot(&params, &world, &mut state);
        let b = par_channels_slot(&params, &world, &mut state);
        let c = sharded_slot(&params, &world, &mut state);
        // Exercise the pooled arm on an actual multi-worker pool with the
        // steal funnel engaged (results must not care; the other tests in
        // this binary are thread-count agnostic, so pinning is safe).
        rayon::set_num_threads(4);
        rayon::set_test_deque_capacity(1);
        let d = pooled_slot(&params, &world, &mut state);
        rayon::set_test_deque_capacity(0);
        rayon::set_num_threads(0);
        // Per-listener outcomes are bitwise identical across arms (the
        // audit test pins that); the checksums only reassociate the same
        // terms (per-channel / per-unit partial sums), so they agree to
        // rounding — and the pooled schedule's pre-indexed slots make its
        // sum order identical to the sharded arm's exactly.
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        assert!((a - c).abs() <= 1e-9 * a.abs().max(1.0));
        assert_eq!(c.to_bits(), d.to_bits(), "pooled merge must match sharded");
        // Channels too small for a 2×2 effective grid resolve as one unit.
        let tiny: Vec<Point> = (0..4 * mca_radio::shard::MIN_UNIT_RX - 1)
            .map(|i| Point::new(i as f64, 0.0))
            .collect();
        let map = ShardMap::new(4, &tiny);
        assert_eq!(shard_units(&tiny, &map).len(), 1);
        assert!(shard_units(&[], &map).is_empty());
        // And one past the threshold shards into multiple units.
        let big: Vec<Point> = (0..4 * mca_radio::shard::MIN_UNIT_RX)
            .map(|i| Point::new((i % 23) as f64, (i / 23) as f64))
            .collect();
        let map = ShardMap::new(4, &big);
        assert!(shard_units(&big, &map).len() > 1);
    }
}
