//! Adversarial environments: reactive vs proactive repair — the
//! `experiments adversary-bench` harness behind `BENCH_adversary.json`.
//!
//! Three adversaries damage the network *below* the lifecycle event
//! stream: the tracking jammer destroys decodes around the densest
//! cluster, correlated fading blacks out channel neighborhoods, and
//! duty-cycled sleep darkens beacons on a schedule. None of them crashes
//! a node, so a maintainer subscribed only to crash/join/motion events
//! (`reactive` arm) never hears about the damage — its structure stays
//! geometrically valid while real delivery rates rot. The `proactive` arm
//! additionally attaches a [`DegradationDetector`] to the engine and
//! feeds its [`DetectionEvent`]s into
//! [`StructureMaintainer::observe_detection`], so flagged members re-home
//! and flagged dominators step down *before* any audit could notice.
//!
//! Both arms drive the **same** `(scenario, seed)` world: repair is
//! maintainer-side bookkeeping and detection is observation-only, so the
//! two engine runs must be bit-identical — each trial asserts it
//! ([`AdversaryTrial::world_identical`]) by comparing engine metrics.
//!
//! The workload is a beacon mesh: `2F` nodes spread across the id space
//! transmit every slot (two per channel, phase-staggered under duty
//! cycling so every channel stays contested), and every other node
//! listens on the channel of its nearest beacon. A listener's per-slot
//! decode outcome is exactly the per-link SINR evidence the detector
//! consumes, so adversary damage surfaces as EWMA decay within slots.
//!
//! Headline numbers per adversary: **time-to-detect** (degradation onset
//! to detector flag) and **time-to-repair** (onset to the first repair
//! epoch that acts on a flag), against the reactive arm whose
//! time-to-repair is censored at the horizon — the damage is never
//! repaired. The acceptance gate requires every proactive arm to detect,
//! act, audit clean at every epoch, and beat the censored reactive
//! time-to-repair strictly; `experiments adversary-bench` exits non-zero
//! otherwise (`ADVERSARY_BENCH_SMOKE=1` is the reduced CI leg).

use mca_core::{
    AlgoConfig, MaintainConfig, NetworkEnv, RepairKind, StructureConfig, StructureMaintainer,
};
use mca_geom::Point;
use mca_radio::rng::derive_seed;
use mca_radio::{
    Action, Channel, ChannelCondition, DegradationDetector, DetectionEvent, DetectorConfig,
    Observation, Protocol,
};
use mca_scenario::{
    builtin_scenarios, AdversarySpec, DeploymentSpec, KeyedTrial, MaintenanceSpec, Scenario,
    ScenarioSim, TrialSet,
};
use rand::rngs::SmallRng;

/// The adversary worlds the bench runs, in order: two catalog worlds and
/// the in-code correlated-fading world ([`correlated_fading_world`]).
pub const ADVERSARY_BENCH_WORLDS: [&str; 3] =
    ["tracking-jammer", "duty-cycle", "correlated-fading"];

/// The correlated-fading bench world: the catalog adversary base (120
/// nodes, 12 × 12, 4 channels, maintenance every 50 slots) under a
/// Gilbert–Elliot chain whose bad state bleeds into adjacent channels
/// and deep-fades everything on a bad channel.
pub fn correlated_fading_world() -> Scenario {
    Scenario::builder("correlated-fading")
        .deployment(DeploymentSpec::Uniform { n: 120, side: 12.0 })
        .adversary(AdversarySpec::CorrelatedFading {
            p_degrade: 0.02,
            p_recover: 0.08,
            correlation: 0.75,
            bad: ChannelCondition::dropped(120.0),
        })
        .channels(4)
        .max_slots(400)
        .maintenance(MaintenanceSpec::every(50))
        .build()
}

/// A beacon-mesh node: beacons transmit every slot on their assigned
/// channel; everyone else listens on the channel of its nearest beacon.
struct BeaconMesh {
    /// `Some(channel)` for a beacon; `None` for a listener.
    tx: Option<Channel>,
    /// The listening channel (nearest beacon's channel).
    listen: Channel,
}

impl Protocol for BeaconMesh {
    type Msg = u32;
    fn act(&mut self, _slot: u64, _rng: &mut SmallRng) -> Action<u32> {
        match self.tx {
            Some(channel) => Action::Transmit { channel, msg: 0 },
            None => Action::Listen {
                channel: self.listen,
            },
        }
    }
    fn observe(&mut self, _slot: u64, _obs: Observation<u32>, _rng: &mut SmallRng) {}
}

/// The beacon layout for a world of `n` nodes and `channels` channels:
/// `2 · channels` beacon ids spread evenly over the id space, beacon `j`
/// on channel `j % channels`. Co-channel beacon pairs land half the id
/// space apart, which under the catalog duty-cycle stride keeps their
/// sleep windows disjoint — every channel always has an awake beacon, so
/// every listen stays contested and keeps feeding the detector.
fn beacon_layout(n: usize, channels: u16) -> Vec<(usize, u16)> {
    let b = (2 * channels as usize).min(n.max(1));
    let stride = (n / b).max(1);
    (0..b).map(|j| (j * stride, j as u16 % channels)).collect()
}

/// Builds the per-node [`BeaconMesh`] roles from the deployment.
fn mesh_roles(positions: &[Point], channels: u16) -> Vec<BeaconMesh> {
    let beacons = beacon_layout(positions.len(), channels);
    positions
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if let Some(&(_, ch)) = beacons.iter().find(|&&(id, _)| id == i) {
                return BeaconMesh {
                    tx: Some(Channel(ch)),
                    listen: Channel(ch),
                };
            }
            let nearest = beacons
                .iter()
                .min_by(|&&(a, _), &&(b, _)| {
                    let da = p.dist_sq(positions[a]);
                    let db = p.dist_sq(positions[b]);
                    da.partial_cmp(&db).unwrap().then(a.cmp(&b))
                })
                .map(|&(_, ch)| ch)
                .unwrap_or(0);
            BeaconMesh {
                tx: None,
                listen: Channel(nearest),
            }
        })
        .collect()
}

/// One arm's outcome over a single `(scenario, seed)` trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmOutcome {
    /// Maintenance epochs executed.
    pub epochs: u64,
    /// Epochs whose post-repair masked audit was clean.
    pub clean_epochs: u64,
    /// Degradation flags raised by the detector (proactive arm only).
    pub detections: u64,
    /// Detector recoveries consumed (proactive arm only).
    pub recoveries: u64,
    /// Flagged members pre-emptively re-homed.
    pub proactive_rehomes: u64,
    /// Flagged dominators pre-emptively demoted.
    pub proactive_demotions: u64,
    /// Flag actions deferred by per-node backoff.
    pub deferred: u64,
    /// Epochs that fell back to a full rebuild.
    pub fallback_rebuilds: u64,
    /// Onset-to-flag latency (slots) at the first acting epoch;
    /// `horizon` when censored (no epoch ever acted).
    pub time_to_detect: u64,
    /// Onset-to-repair latency (slots) at the first acting epoch;
    /// `horizon` when censored.
    pub time_to_repair: u64,
    /// Whether the latencies are censored at the horizon.
    pub censored: bool,
}

/// Both arms of one `(scenario, seed)` trial.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryTrial {
    /// Events-only maintenance: blind to SINR-level damage.
    pub reactive: ArmOutcome,
    /// Detector-fed maintenance: flags drive pre-emptive repair.
    pub proactive: ArmOutcome,
    /// Whether the two arms' engine metrics matched bit-for-bit — the
    /// detection-never-perturbs-outcomes contract, checked per trial.
    pub world_identical: bool,
    /// First audit violation from either arm, if any.
    pub first_violation: Option<String>,
}

fn structure_config(scenario: &Scenario, seed: u64) -> StructureConfig {
    let algo = AlgoConfig::practical(scenario.channels, &scenario.params, scenario.len().max(2));
    StructureConfig::new(algo, derive_seed(seed, 0xB01D))
}

/// Runs one arm. `proactive` toggles the detector attachment and the
/// detection-fed repair path; everything else is shared, so the world
/// evolution is bit-identical between arms.
fn run_arm(
    scenario: &Scenario,
    seed: u64,
    proactive: bool,
    violation: &mut Option<String>,
) -> (ArmOutcome, (u64, u64, u64)) {
    let n = scenario.len();
    let horizon = scenario.max_slots;
    let maintenance = scenario.maintenance.unwrap_or(MaintenanceSpec::every(50));
    let cfg = structure_config(scenario, seed);
    let mcfg = MaintainConfig {
        handover_hysteresis: maintenance.handover_hysteresis,
        rebuild_threshold: maintenance.rebuild_threshold,
        ..MaintainConfig::default()
    };
    let faults = scenario.faults_for(seed);
    // Sleepers are alive — duty cycling is not crash-stop, so the
    // structure keeps covering them (lifecycle absence only).
    let alive0: Vec<bool> = (0..n as u32)
        .map(|i| !faults.is_lifecycle_absent(i, 0))
        .collect();
    let deploy = scenario.deployment_for(seed);
    let positions = deploy.points().to_vec();
    let env0 = NetworkEnv {
        params: scenario.params,
        positions: positions.clone(),
    };
    let mut maintainer = StructureMaintainer::build(&env0, cfg, mcfg, Some(&alive0));
    let move_threshold = maintainer.move_threshold();
    let tolerances = maintainer.tolerances();
    let mut roles = mesh_roles(&positions, scenario.channels);
    let mut sim = ScenarioSim::new(scenario, seed, |i, _| {
        std::mem::replace(
            &mut roles[i],
            BeaconMesh {
                tx: None,
                listen: Channel::FIRST,
            },
        )
    });
    sim.engine_mut().watch_events(move_threshold);
    if proactive {
        sim.engine_mut()
            .attach_detector(DegradationDetector::new(n, DetectorConfig::default()));
    }
    let mut arm = ArmOutcome {
        epochs: 0,
        clean_epochs: 0,
        detections: 0,
        recoveries: 0,
        proactive_rehomes: 0,
        proactive_demotions: 0,
        deferred: 0,
        fallback_rebuilds: 0,
        time_to_detect: horizon,
        time_to_repair: horizon,
        censored: true,
    };
    arm.epochs = sim.run_epochs(horizon, |sim, epoch| {
        for event in sim.engine_mut().drain_events() {
            maintainer.observe(&event);
        }
        if proactive {
            for event in sim.engine_mut().drain_detections() {
                if matches!(event, DetectionEvent::Degraded { .. }) {
                    arm.detections += 1;
                } else {
                    arm.recoveries += 1;
                }
                maintainer.observe_detection(&event);
            }
        }
        let env_now = NetworkEnv {
            params: scenario.params,
            positions: sim.positions().to_vec(),
        };
        let now = sim.slot();
        let repair_seed = derive_seed(seed, 0xE70C ^ epoch);
        let report = if proactive {
            maintainer.repair_at(&env_now, repair_seed, now)
        } else {
            maintainer.repair(&env_now, repair_seed)
        };
        let acted = (report.proactive_rehomes + report.proactive_demotions) as u64;
        arm.proactive_rehomes += report.proactive_rehomes as u64;
        arm.proactive_demotions += report.proactive_demotions as u64;
        arm.deferred += report.deferred_flags as u64;
        if report.kind == RepairKind::Rebuilt {
            arm.fallback_rebuilds += 1;
        }
        // First-response latency: the first epoch that acted on a flag
        // pins the headline onset→flag / onset→repair numbers.
        if acted > 0 && arm.censored {
            arm.time_to_detect = report.time_to_detect;
            arm.time_to_repair = report.time_to_repair;
            arm.censored = false;
        }
        match maintainer.audit(&env_now).check(&tolerances) {
            Ok(()) => arm.clean_epochs += 1,
            Err(msg) => {
                if violation.is_none() {
                    let arm_name = if proactive { "proactive" } else { "reactive" };
                    *violation = Some(format!("{arm_name} arm, epoch {epoch}: {msg}"));
                }
            }
        }
    });
    let m = sim.metrics();
    (arm, (m.receptions, m.busy_failures, m.env_drops))
}

/// Runs both arms of one `(scenario, seed)` trial over the same world.
pub fn adversary_trial(scenario: &Scenario, seed: u64) -> AdversaryTrial {
    let mut first_violation = None;
    let (reactive, world_r) = run_arm(scenario, seed, false, &mut first_violation);
    let (proactive, world_p) = run_arm(scenario, seed, true, &mut first_violation);
    AdversaryTrial {
        reactive,
        proactive,
        world_identical: world_r == world_p,
        first_violation,
    }
}

/// One adversary's aggregate over all seeds.
#[derive(Debug, Clone)]
pub struct AdversaryBenchCase {
    /// The world name.
    pub scenario: String,
    /// Seeds run.
    pub seeds: usize,
    /// Slot horizon the reactive arm's latencies are censored at.
    pub horizon: u64,
    /// Reactive-arm aggregate (counters summed, latencies worst-case).
    pub reactive: ArmOutcome,
    /// Proactive-arm aggregate.
    pub proactive: ArmOutcome,
    /// Whether every epoch of every seed audited clean in both arms.
    pub audits_clean: bool,
    /// Whether both arms saw bit-identical engine metrics in every trial.
    pub worlds_identical: bool,
    /// First audit violation seen, if any.
    pub first_violation: Option<String>,
}

fn fold(acc: &mut ArmOutcome, t: &ArmOutcome) {
    acc.epochs += t.epochs;
    acc.clean_epochs += t.clean_epochs;
    acc.detections += t.detections;
    acc.recoveries += t.recoveries;
    acc.proactive_rehomes += t.proactive_rehomes;
    acc.proactive_demotions += t.proactive_demotions;
    acc.deferred += t.deferred;
    acc.fallback_rebuilds += t.fallback_rebuilds;
    // Worst case across seeds; a censored seed censors the aggregate.
    acc.time_to_detect = acc.time_to_detect.max(t.time_to_detect);
    acc.time_to_repair = acc.time_to_repair.max(t.time_to_repair);
    acc.censored |= t.censored;
}

impl AdversaryBenchCase {
    /// The acceptance gate: both arms audit clean everywhere, the worlds
    /// matched bit-for-bit, the proactive arm detected *and acted*, and
    /// its worst-case time-to-repair strictly undercuts the reactive
    /// arm's (censored at the horizon — reactive never repairs this
    /// damage at all).
    pub fn holds_gate(&self) -> bool {
        self.audits_clean
            && self.worlds_identical
            && self.proactive.detections > 0
            && !self.proactive.censored
            && self.proactive.time_to_repair < self.reactive.time_to_repair
    }
}

/// The bench worlds: the two catalog adversary worlds plus the in-code
/// correlated-fading world.
pub fn adversary_bench_worlds() -> Vec<Scenario> {
    let catalog = builtin_scenarios();
    ADVERSARY_BENCH_WORLDS
        .iter()
        .map(|&name| {
            catalog
                .iter()
                .find(|e| e.scenario.name == name)
                .map(|e| e.scenario.clone())
                .unwrap_or_else(correlated_fading_world)
        })
        .collect()
}

/// Runs `seeds` seeded trials of every adversary world.
///
/// Trials execute through the keyed runner ([`TrialSet::run_streaming`])
/// — seeds of one world resolve in parallel but fold in enumeration
/// (seed) order, so the aggregate is identical to the historical
/// sequential loop and `BENCH_adversary.json` stays byte-compatible.
pub fn run_adversary_bench(seeds: usize) -> Vec<AdversaryBenchCase> {
    adversary_bench_worlds()
        .into_iter()
        .map(|scenario| {
            let empty = ArmOutcome {
                epochs: 0,
                clean_epochs: 0,
                detections: 0,
                recoveries: 0,
                proactive_rehomes: 0,
                proactive_demotions: 0,
                deferred: 0,
                fallback_rebuilds: 0,
                time_to_detect: 0,
                time_to_repair: 0,
                censored: false,
            };
            let mut case = AdversaryBenchCase {
                scenario: scenario.name.clone(),
                seeds,
                horizon: scenario.max_slots,
                reactive: empty,
                proactive: empty,
                audits_clean: true,
                worlds_identical: true,
                first_violation: None,
            };
            let set = TrialSet::new(vec![scenario], (1..=seeds as u64).collect())
                .expect("one scenario cannot collide with itself");
            set.run_streaming(true, adversary_trial, &mut |trial: KeyedTrial<
                AdversaryTrial,
            >| {
                let (seed, t) = (trial.key.seed, trial.result);
                fold(&mut case.reactive, &t.reactive);
                fold(&mut case.proactive, &t.proactive);
                case.worlds_identical &= t.world_identical;
                if t.reactive.clean_epochs != t.reactive.epochs
                    || t.proactive.clean_epochs != t.proactive.epochs
                {
                    case.audits_clean = false;
                }
                if case.first_violation.is_none() {
                    case.first_violation = t.first_violation.map(|v| format!("seed {seed}, {v}"));
                }
            });
            case
        })
        .collect()
}

fn arm_json(arm: &ArmOutcome) -> String {
    format!(
        concat!(
            "{{\"epochs\": {}, \"clean_epochs\": {}, \"detections\": {}, ",
            "\"recoveries\": {}, \"proactive_rehomes\": {}, ",
            "\"proactive_demotions\": {}, \"deferred\": {}, ",
            "\"fallback_rebuilds\": {}, \"time_to_detect\": {}, ",
            "\"time_to_repair\": {}, \"censored\": {}}}"
        ),
        arm.epochs,
        arm.clean_epochs,
        arm.detections,
        arm.recoveries,
        arm.proactive_rehomes,
        arm.proactive_demotions,
        arm.deferred,
        arm.fallback_rebuilds,
        arm.time_to_detect,
        arm.time_to_repair,
        arm.censored,
    )
}

/// Renders `BENCH_adversary.json` and returns `(json, all_gates_hold)`.
pub fn adversary_bench_json(seeds: usize) -> (String, bool) {
    let cases = run_adversary_bench(seeds);
    let ok = cases.iter().all(AdversaryBenchCase::holds_gate);
    let rows: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{\"scenario\": \"{}\", \"seeds\": {}, \"horizon\": {}, ",
                    "\"audits_clean\": {}, \"worlds_identical\": {},\n",
                    "     \"reactive\": {},\n",
                    "     \"proactive\": {}}}"
                ),
                c.scenario,
                c.seeds,
                c.horizon,
                c.audits_clean,
                c.worlds_identical,
                arm_json(&c.reactive),
                arm_json(&c.proactive),
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"adversary_repair\",\n",
            "  \"baseline\": \"reactive-only maintenance (lifecycle events), blind to SINR damage\",\n",
            "  \"unit\": \"simulated protocol slots (latencies censored at the horizon)\",\n",
            "  \"seeds\": {},\n  \"cases\": [\n{}\n  ]\n}}\n"
        ),
        seeds,
        rows.join(",\n")
    );
    (json, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(name: &str) -> Scenario {
        adversary_bench_worlds()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap()
    }

    #[test]
    fn tracking_jammer_is_detected_and_repaired_before_the_horizon() {
        let t = adversary_trial(&world("tracking-jammer"), 1);
        assert!(t.world_identical, "detection perturbed the world: {t:?}");
        assert!(t.proactive.detections > 0, "{t:?}");
        assert!(!t.proactive.censored, "no epoch acted on a flag: {t:?}");
        assert!(
            t.proactive.time_to_repair < t.reactive.time_to_repair,
            "{t:?}"
        );
        assert!(t.reactive.censored, "reactive arm cannot see jamming");
        assert_eq!(
            t.proactive.clean_epochs, t.proactive.epochs,
            "audit violation: {:?}",
            t.first_violation
        );
        assert_eq!(t.reactive.clean_epochs, t.reactive.epochs);
    }

    #[test]
    fn duty_cycle_sleep_is_invisible_to_the_reactive_arm() {
        let t = adversary_trial(&world("duty-cycle"), 1);
        // No crash/join events exist, so the reactive arm never acts and
        // both latencies stay censored; the proactive arm flags the
        // listeners dark beacons strand and repairs inside the horizon.
        assert!(t.reactive.censored, "{t:?}");
        assert!(t.proactive.detections > 0, "{t:?}");
        assert!(!t.proactive.censored, "{t:?}");
        assert_eq!(
            t.proactive.clean_epochs, t.proactive.epochs,
            "audit violation: {:?}",
            t.first_violation
        );
    }

    #[test]
    fn correlated_fading_flags_recover_when_channels_heal() {
        let t = adversary_trial(&world("correlated-fading"), 1);
        assert!(t.proactive.detections > 0, "{t:?}");
        assert!(
            t.proactive.recoveries > 0,
            "fade episodes end, so flags must clear: {t:?}"
        );
        assert!(!t.proactive.censored, "{t:?}");
        assert_eq!(
            t.proactive.clean_epochs, t.proactive.epochs,
            "audit violation: {:?}",
            t.first_violation
        );
    }

    #[test]
    fn trials_are_deterministic() {
        let s = world("tracking-jammer");
        assert_eq!(adversary_trial(&s, 2), adversary_trial(&s, 2));
    }

    #[test]
    fn json_shape_smoke() {
        // One seed over the full matrix is the CI smoke path.
        let (json, ok) = adversary_bench_json(1);
        assert!(json.contains("\"bench\": \"adversary_repair\""), "{json}");
        assert!(json.contains("correlated-fading"), "{json}");
        assert!(json.contains("\"censored\": true"), "{json}");
        assert!(ok, "acceptance gate failed:\n{json}");
    }
}
