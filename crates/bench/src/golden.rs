//! Golden trial metrics for the scenario catalog — the CI determinism
//! gate's ground truth.
//!
//! `experiments golden-trials --write` runs every catalog scenario through
//! the flood max-aggregation workload ([`crate::scenario_flood_trial`])
//! for a fixed set of seeds and commits the resulting metrics to
//! `scenarios/GOLDEN_trials.json`. The CI determinism job re-runs the same
//! trials under `MCA_FORCE_PAR=1` — which forces `par_channels`,
//! `par_shards`, and a shard grid onto every engine — and
//! `experiments golden-trials` (check mode) exits non-zero unless the
//! regenerated metrics match the committed bytes exactly. Floats are
//! rendered with shortest-round-trip formatting, so byte equality is bit
//! equality: any parallel or sharded path that flips a single ULP anywhere
//! in a trial fails the gate.

use crate::scenario_run::{scenario_flood_trial, scenario_flood_trial_observed, ScenarioTrial};
use mca_scenario::builtin_scenarios;

/// Seeds every catalog scenario is pinned at.
pub const GOLDEN_SEEDS: [u64; 2] = [1, 2];

/// Renders the golden trial metrics for the whole catalog.
pub fn golden_trials_json() -> String {
    render_golden(scenario_flood_trial)
}

/// Renders the same golden metrics with an `mca-obs` recorder attached to
/// every trial. Must be byte-identical to [`golden_trials_json`] whatever
/// features are compiled in — the obs determinism test pins this against
/// the committed file under `MCA_FORCE_PAR=1`.
pub fn golden_trials_json_observed() -> String {
    render_golden(|scenario, seed| scenario_flood_trial_observed(scenario, seed).0)
}

fn render_golden(trial: impl Fn(&mca_scenario::Scenario, u64) -> ScenarioTrial) -> String {
    let mut entries = Vec::new();
    for entry in builtin_scenarios() {
        for seed in GOLDEN_SEEDS {
            entries.push(golden_trial_entry(
                &entry.scenario.name,
                seed,
                &trial(&entry.scenario, seed),
            ));
        }
    }
    format!(
        concat!(
            "{{\n  \"golden\": \"scenario flood trials\",\n",
            "  \"contract\": \"bit-identical under MCA_FORCE_PAR=1 (par_channels + par_shards + forced shard grid)\",\n",
            "  \"trials\": [\n{}\n  ]\n}}\n"
        ),
        entries.join(",\n")
    )
}

/// One golden line: the bit-comparable metrics of `(scenario, seed)`.
fn golden_trial_entry(name: &str, seed: u64, t: &ScenarioTrial) -> String {
    format!(
        concat!(
            "    {{\"scenario\": \"{}\", \"seed\": {}, \"coverage\": {:?}, ",
            "\"full_coverage\": {}, \"receptions\": {}, \"busy_failures\": {}, ",
            "\"env_drops\": {}, \"slots\": {}}}"
        ),
        name,
        seed,
        t.coverage,
        t.full_coverage,
        t.receptions,
        t.busy_failures,
        t.env_drops,
        t.slots,
    )
}

/// Checks the committed golden file at `path` against freshly computed
/// metrics. Returns `Ok(())` on an exact byte match, or a description of
/// the first divergence.
pub fn check_golden_trials(path: &str) -> Result<(), String> {
    let committed = std::fs::read_to_string(path).map_err(|e| {
        format!("cannot read {path}: {e} (run `experiments golden-trials --write`?)")
    })?;
    let fresh = golden_trials_json();
    if committed == fresh {
        return Ok(());
    }
    for (i, (a, b)) in committed.lines().zip(fresh.lines()).enumerate() {
        if a != b {
            return Err(format!(
                "{path}:{}: committed metrics diverge\n  committed: {a}\n  computed:  {b}",
                i + 1
            ));
        }
    }
    Err(format!(
        "{path}: committed metrics diverge in length ({} vs {} bytes)",
        committed.len(),
        fresh.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_entries_are_byte_stable() {
        // One cheap scenario, regenerated twice: the byte-for-byte replay
        // property that check mode (and the CI determinism gate) rests on.
        // Full-catalog coverage runs in CI via `experiments golden-trials`.
        let entry = &builtin_scenarios()[0];
        let name = &entry.scenario.name;
        let a = golden_trial_entry(
            name,
            GOLDEN_SEEDS[0],
            &scenario_flood_trial(&entry.scenario, GOLDEN_SEEDS[0]),
        );
        let b = golden_trial_entry(
            name,
            GOLDEN_SEEDS[0],
            &scenario_flood_trial(&entry.scenario, GOLDEN_SEEDS[0]),
        );
        assert_eq!(a, b);
        assert!(a.contains("\"scenario\": \"static-uniform\""), "{a}");
        assert!(a.contains("\"receptions\": "), "{a}");
    }
}
