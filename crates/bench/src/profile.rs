//! The profiling harness: `experiments profile` → `BENCH_profile.json`.
//!
//! Runs the flood max-aggregation workload (the same one behind
//! `--scenario`) with an `mca-obs` recorder attached, then renders where
//! the engine's slot time goes: one row per span kind with wall, self,
//! and p50/p95/max durations, the engine's resolver-cache counters, and
//! the per-phase slot coverage.
//!
//! The coverage figure is also the harness's acceptance gate: the phase
//! spans (event drain, gather, stage, resolve, deliver) must account for
//! at least [`COVERAGE_GATE`] of measured slot wall time, or the
//! instrumentation has a hole — `experiments profile` exits non-zero.
//! The default world is the 100k-node dense deployment of
//! `SHARD_BENCH_CASES`' largest case (16 channels, 8×8 shards, fast
//! resolve) so the committed `BENCH_profile.json` profiles the same
//! regime the shard benchmark gates.
//!
//! Everything here requires the `obs` cargo feature; without it the
//! recorder is the no-op kind, [`profile_supported`] reports `false`,
//! and the binary refuses to run rather than print an empty table.

use crate::scenario_run::{scenario_flood_trial_observed, ScenarioTrial};
use mca_analysis::Table;
use mca_obs::{Recorder, Report};
use mca_scenario::{DeploymentSpec, Scenario};
use mca_sinr::{ResolveMode, SinrParams};

/// Minimum fraction of slot wall time the phase spans must cover.
pub const COVERAGE_GATE: f64 = 0.95;

/// Trial seed of the committed profile (fixed so `BENCH_profile.json`
/// regenerates against the same world).
pub const PROFILE_SEED: u64 = 7;

/// Whether the profiling harness can run (the `obs` feature compiled the
/// recorder in).
pub const fn profile_supported() -> bool {
    mca_obs::enabled()
}

/// The default profile world: the shard benchmark's largest dense case
/// as a scenario — 100k nodes at 4 nodes per unit², 16 channels, 8×8
/// shards resolved in parallel, Fast-mode reception.
pub fn default_profile_scenario(slots: u64) -> Scenario {
    let n = 100_000;
    Scenario::builder("profile-dense-100k")
        .deployment(DeploymentSpec::Uniform {
            n,
            side: (n as f64 / 4.0).sqrt(),
        })
        .sinr(SinrParams::default().with_resolve(ResolveMode::fast()))
        .channels(16)
        .max_slots(slots)
        .par_channels(true)
        .shards(crate::shard_bench::shards_for(n))
        .par_shards(true)
        .build()
}

/// One profiled run: the trial outcome, the raw recorder (for JSONL
/// export), and its aggregated report.
pub struct ProfileRun {
    /// The workload's outcome (bit-identical to an unobserved run).
    pub trial: ScenarioTrial,
    /// The raw record streams.
    pub recorder: Recorder,
    /// Per-kind statistics derived from `recorder`.
    pub report: Report,
}

impl ProfileRun {
    /// Fraction of slot wall time covered by the phase spans (0 when no
    /// slot spans were recorded).
    pub fn slot_coverage(&self) -> f64 {
        self.report.slot_coverage().unwrap_or(0.0)
    }

    /// Whether the coverage gate holds.
    pub fn gate_ok(&self) -> bool {
        self.slot_coverage() >= COVERAGE_GATE
    }
}

/// Profiles `scenario` for trial `seed`: the flood workload with a
/// recorder attached for the whole run.
pub fn profile_scenario(scenario: &Scenario, seed: u64) -> ProfileRun {
    let (trial, recorder) = scenario_flood_trial_observed(scenario, seed);
    let report = recorder.report();
    ProfileRun {
        trial,
        recorder,
        report,
    }
}

/// Renders the per-phase breakdown as a table (one row per span kind, in
/// the report's fixed kind order).
pub fn profile_table(scenario: &Scenario, run: &ProfileRun) -> Table {
    let mut t = Table::new(
        format!(
            "profile `{}`: n={}, F={}, {} slots -- phase spans cover {:.1}% of slot time",
            scenario.name,
            scenario.len(),
            scenario.channels,
            run.trial.slots,
            run.slot_coverage() * 100.0
        ),
        [
            "span", "count", "wall ms", "self ms", "p50 us", "p95 us", "max us",
        ],
    );
    for k in &run.report.kinds {
        t.row([
            k.kind.name().to_string(),
            k.count.to_string(),
            format!("{:.2}", k.total_ns as f64 / 1e6),
            format!("{:.2}", k.self_ns as f64 / 1e6),
            format!("{:.1}", k.p50_ns as f64 / 1e3),
            format!("{:.1}", k.p95_ns as f64 / 1e3),
            format!("{:.1}", k.max_ns as f64 / 1e3),
        ]);
    }
    t
}

/// Renders `BENCH_profile.json`: the per-phase breakdown plus counters
/// and the gate verdict, in the same hand-formatted style as the other
/// committed benchmark artifacts.
pub fn profile_json(scenario: &Scenario, run: &ProfileRun) -> String {
    let mut phases = Vec::new();
    for k in &run.report.kinds {
        phases.push(format!(
            concat!(
                "    {{\"span\": \"{}\", \"count\": {}, \"total_ns\": {}, \"self_ns\": {}, ",
                "\"p50_ns\": {}, \"p95_ns\": {}, \"max_ns\": {}}}"
            ),
            k.kind.name(),
            k.count,
            k.total_ns,
            k.self_ns,
            k.p50_ns,
            k.p95_ns,
            k.max_ns,
        ));
    }
    let mut counters = Vec::new();
    for (name, value) in &run.report.counters {
        counters.push(format!("    {{\"name\": \"{name}\", \"value\": {value}}}"));
    }
    format!(
        concat!(
            "{{\n  \"bench\": \"profile\",\n",
            "  \"scope\": \"flood max-aggregation workload with mca-obs spans on every engine phase\",\n",
            "  \"scenario\": \"{}\",\n  \"n\": {},\n  \"channels\": {},\n  \"shards\": {},\n",
            "  \"slots\": {},\n  \"seed\": {},\n  \"threads\": {},\n",
            "  \"slot_coverage\": {:.4},\n  \"coverage_gate\": {:.2},\n  \"gate_ok\": {},\n",
            "  \"records_dropped\": {},\n",
            "  \"phases\": [\n{}\n  ],\n  \"counters\": [\n{}\n  ]\n}}\n"
        ),
        scenario.name,
        scenario.len(),
        scenario.channels,
        scenario.shards,
        run.trial.slots,
        PROFILE_SEED,
        rayon::current_num_threads(),
        run.slot_coverage(),
        COVERAGE_GATE,
        run.gate_ok(),
        run.report.dropped,
        phases.join(",\n"),
        counters.join(",\n"),
    )
}

#[cfg(test)]
#[cfg(feature = "obs")]
mod tests {
    use super::*;
    use mca_obs::SpanKind;
    use mca_scenario::builtin_scenarios;

    fn small_run() -> (Scenario, ProfileRun) {
        // The catalog's sharded world, shrunk via the slot budget so the
        // test stays fast while still exercising the sharded span path.
        let mut s = builtin_scenarios()
            .iter()
            .find(|e| e.scenario.name == "sharded-dense")
            .expect("catalog has sharded-dense")
            .scenario
            .clone();
        s.max_slots = 40;
        let run = profile_scenario(&s, PROFILE_SEED);
        (s, run)
    }

    #[test]
    fn profile_covers_slot_time_and_renders() {
        let (s, run) = small_run();
        assert!(run.trial.slots > 0);
        assert!(
            run.gate_ok(),
            "phase spans cover only {:.1}% of slot time",
            run.slot_coverage() * 100.0
        );
        let slot = run.report.kind(SpanKind::Slot).expect("slot spans");
        assert_eq!(slot.count, run.trial.slots);
        let table = format!("{}", profile_table(&s, &run));
        assert!(table.contains("resolve"), "{table}");
        let json = profile_json(&s, &run);
        assert!(json.contains("\"gate_ok\": true"), "{json}");
        assert!(json.contains("\"span\": \"unit\""), "{json}");
    }

    #[test]
    fn jsonl_export_of_a_profiled_run_validates() {
        let (_, run) = small_run();
        let jsonl = run.recorder.to_jsonl();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            mca_obs::validate_jsonl_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
    }

    #[test]
    fn default_profile_world_matches_the_shard_bench_case() {
        let s = default_profile_scenario(30);
        assert_eq!(s.len(), 100_000);
        assert_eq!(s.channels, 16);
        assert_eq!(s.shards, crate::shard_bench::shards_for(100_000));
        assert!(s.par_shards);
        assert_eq!(s.max_slots, 30);
    }
}
