//! Incremental structure repair vs full rebuild, across the churn/mobility
//! catalog worlds — the `experiments repair-bench` harness behind
//! `BENCH_repair.json`.
//!
//! For each (scenario, seed) the harness builds the §5 aggregation
//! structure over the initial live set, then drives the scenario in
//! maintenance epochs ([`ScenarioSim::run_epochs`]) twice over the same
//! bit-identical world evolution:
//!
//! * **maintained arm** — a [`StructureMaintainer`] subscribes to the
//!   engine's crash/join/motion events and repairs incrementally each
//!   epoch; the structure must pass the masked audit (attachment certified
//!   against the handover hysteresis) at *every* epoch;
//! * **rebuild arm** — the structure is rebuilt from scratch over the
//!   current live set each epoch, the cost any maintenance-free driver
//!   would pay to stay fresh.
//!
//! Both costs are simulated protocol slots — the same currency as
//! [`BuildReport`](mca_core::BuildReport) — so the headline number,
//! `repair_fraction = repair_slots / rebuild_slots`, is
//! implementation-independent. [`repair_bench_json`] renders the JSON and
//! reports whether every world held its acceptance gate (audits clean,
//! repair strictly cheaper than rebuild); `experiments repair-bench` exits
//! non-zero otherwise, which is what the CI smoke mode enforces.

use mca_core::{
    AlgoConfig, MaintainConfig, NetworkEnv, RepairKind, StructureConfig, StructureMaintainer,
};
use mca_radio::rng::derive_seed;
use mca_radio::{Action, NodeEvent, Observation, Protocol};
use mca_scenario::{builtin_scenarios, MaintenanceSpec, Scenario, ScenarioSim, TrialSet};
use rand::rngs::SmallRng;

/// The catalog worlds the bench runs, in order. `churn` and
/// `waypoint-mobility` have no committed `[maintenance]` table, so the
/// bench applies [`DEFAULT_MAINTENANCE`]; the maintenance-enabled worlds
/// (`churn-maintained`, `mobile-churn`) run under their committed policy.
pub const REPAIR_BENCH_WORLDS: [&str; 4] = [
    "churn",
    "churn-maintained",
    "waypoint-mobility",
    "mobile-churn",
];

/// Policy applied to worlds without a committed `[maintenance]` table.
pub const DEFAULT_MAINTENANCE: MaintenanceSpec = MaintenanceSpec::every(100);

/// A protocol that does nothing: the world-clock payload for maintenance
/// runs, where the interesting traffic happens inside the repair phases.
struct Idle;

impl Protocol for Idle {
    type Msg = ();
    fn act(&mut self, _slot: u64, _rng: &mut SmallRng) -> Action<()> {
        Action::Idle
    }
    fn observe(&mut self, _slot: u64, _obs: Observation<()>, _rng: &mut SmallRng) {}
}

/// One (scenario, seed) trial of both arms.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairTrial {
    /// Maintenance epochs executed.
    pub epochs: u64,
    /// Slots of the shared initial build (identical in both arms).
    pub initial_build_slots: u64,
    /// Total repair slots across epochs (maintained arm).
    pub repair_slots: u64,
    /// Total rebuild slots across epochs (rebuild arm).
    pub rebuild_slots: u64,
    /// Epochs whose post-repair masked audit was clean / total epochs.
    pub clean_epochs: u64,
    /// Epochs where the maintainer fell back to a full rebuild.
    pub fallback_rebuilds: u64,
    /// Seekers re-homed onto surviving dominators, across epochs.
    pub rehomed: usize,
    /// Hysteresis handovers, across epochs.
    pub handovers: usize,
    /// Fresh dominators from MIS patches, across epochs.
    pub new_dominators: usize,
    /// Clusters retired by dominator crashes, across epochs.
    pub retired_clusters: usize,
    /// First audit violation, if any epoch was not clean.
    pub first_violation: Option<String>,
}

/// The per-epoch cadence the bench uses for `scenario` (committed policy,
/// or the default).
pub fn maintenance_for(scenario: &Scenario) -> MaintenanceSpec {
    scenario.maintenance.unwrap_or(DEFAULT_MAINTENANCE)
}

fn structure_config(scenario: &Scenario, seed: u64) -> StructureConfig {
    let algo = AlgoConfig::practical(scenario.channels, &scenario.params, scenario.len().max(2));
    StructureConfig::new(algo, derive_seed(seed, 0xB01D))
}

/// Runs one (scenario, seed) trial: both arms over the same world.
pub fn repair_trial(scenario: &Scenario, seed: u64) -> RepairTrial {
    let mut scenario = scenario.clone();
    let maintenance = maintenance_for(&scenario);
    scenario.maintenance = Some(maintenance);
    let n = scenario.len();
    let cfg = structure_config(&scenario, seed);
    let mcfg = MaintainConfig {
        handover_hysteresis: maintenance.handover_hysteresis,
        rebuild_threshold: maintenance.rebuild_threshold,
        ..MaintainConfig::default()
    };
    let faults = scenario.faults_for(seed);
    let alive0: Vec<bool> = (0..n as u32).map(|i| !faults.is_absent(i, 0)).collect();
    let deploy = scenario.deployment_for(seed);
    let env0 = NetworkEnv {
        params: scenario.params,
        positions: deploy.points().to_vec(),
    };
    // --- Maintained arm. ---
    let mut maintainer = StructureMaintainer::build(&env0, cfg, mcfg, Some(&alive0));
    let move_threshold = maintainer.move_threshold();
    let initial_build_slots = maintainer.structure().report.total_slots();
    let tolerances = maintainer.tolerances();
    let mut trial = RepairTrial {
        epochs: 0,
        initial_build_slots,
        repair_slots: 0,
        rebuild_slots: 0,
        clean_epochs: 0,
        fallback_rebuilds: 0,
        rehomed: 0,
        handovers: 0,
        new_dominators: 0,
        retired_clusters: 0,
        first_violation: None,
    };
    let mut sim = ScenarioSim::new(&scenario, seed, |_, _| Idle);
    sim.engine_mut().watch_events(move_threshold);
    let max_slots = scenario.max_slots;
    trial.epochs = sim.run_epochs(max_slots, |sim, epoch| {
        for event in sim.engine_mut().drain_events() {
            maintainer.observe(&event);
        }
        let env_now = NetworkEnv {
            params: scenario.params,
            positions: sim.positions().to_vec(),
        };
        let report = maintainer.repair(&env_now, derive_seed(seed, 0xE70C ^ epoch));
        trial.repair_slots += report.total_slots();
        trial.rehomed += report.rehomed;
        trial.handovers += report.handovers;
        trial.new_dominators += report.new_dominators;
        trial.retired_clusters += report.retired_clusters;
        if report.kind == RepairKind::Rebuilt {
            trial.fallback_rebuilds += 1;
        }
        match maintainer.audit(&env_now).check(&tolerances) {
            Ok(()) => trial.clean_epochs += 1,
            Err(msg) => {
                if trial.first_violation.is_none() {
                    trial.first_violation = Some(format!("epoch {epoch}: {msg}"));
                }
            }
        }
    });

    // --- Rebuild arm: the same world, rebuilt from scratch each epoch. ---
    let mut sim = ScenarioSim::new(&scenario, seed, |_, _| Idle);
    sim.engine_mut().watch_events(move_threshold);
    let mut alive = alive0.clone();
    sim.run_epochs(max_slots, |sim, epoch| {
        for event in sim.engine_mut().drain_events() {
            match event {
                NodeEvent::Joined { node, .. } => alive[node.index()] = true,
                NodeEvent::Crashed { node, .. } => alive[node.index()] = false,
                NodeEvent::Moved { .. } => {}
            }
        }
        if alive.iter().any(|&a| a) {
            let env_now = NetworkEnv {
                params: scenario.params,
                positions: sim.positions().to_vec(),
            };
            let mut cfg_epoch = cfg;
            cfg_epoch.seed = derive_seed(seed, 0x4EB0 ^ epoch);
            let rebuilt = mca_core::build_structure_masked(&env_now, &cfg_epoch, Some(&alive));
            trial.rebuild_slots += rebuilt.report.total_slots();
        }
    });
    trial
}

/// One scenario's aggregate over all seeds.
#[derive(Debug, Clone)]
pub struct RepairBenchCase {
    /// The scenario name.
    pub scenario: String,
    /// Seeds run.
    pub seeds: usize,
    /// Epochs across all seeds.
    pub epochs: u64,
    /// Summed slot costs across seeds.
    pub initial_build_slots: u64,
    /// Repair slots across seeds (maintained arm).
    pub repair_slots: u64,
    /// Rebuild slots across seeds (rebuild arm).
    pub rebuild_slots: u64,
    /// `repair_slots / rebuild_slots`.
    pub repair_fraction: f64,
    /// Whether every epoch of every seed audited clean after repair.
    pub audits_clean: bool,
    /// Repair-op counters across seeds.
    pub rehomed: usize,
    /// Hysteresis handovers across seeds.
    pub handovers: usize,
    /// Fresh dominators across seeds.
    pub new_dominators: usize,
    /// Retired clusters across seeds.
    pub retired_clusters: usize,
    /// Threshold fallbacks across seeds.
    pub fallback_rebuilds: u64,
    /// First audit violation seen, if any.
    pub first_violation: Option<String>,
}

impl RepairBenchCase {
    /// Whether this world holds the acceptance gate: audit-clean at every
    /// epoch and repair strictly cheaper than rebuild.
    pub fn holds_gate(&self) -> bool {
        self.audits_clean && self.repair_slots < self.rebuild_slots
    }
}

/// Runs `seeds` seeded trials of every bench world.
///
/// Trials execute through the keyed runner ([`TrialSet::run_streaming`])
/// — seeds of one world resolve in parallel but fold in enumeration
/// (seed) order, so the aggregate is identical to the historical
/// sequential loop and `BENCH_repair.json` stays byte-compatible.
pub fn run_repair_bench(seeds: usize) -> Vec<RepairBenchCase> {
    let catalog = builtin_scenarios();
    REPAIR_BENCH_WORLDS
        .iter()
        .map(|&name| {
            let scenario = catalog
                .iter()
                .find(|e| e.scenario.name == name)
                .unwrap_or_else(|| panic!("catalog world `{name}` missing"))
                .scenario
                .clone();
            let mut case = RepairBenchCase {
                scenario: name.to_string(),
                seeds,
                epochs: 0,
                initial_build_slots: 0,
                repair_slots: 0,
                rebuild_slots: 0,
                repair_fraction: 0.0,
                audits_clean: true,
                rehomed: 0,
                handovers: 0,
                new_dominators: 0,
                retired_clusters: 0,
                fallback_rebuilds: 0,
                first_violation: None,
            };
            let set = TrialSet::new(vec![scenario], (1..=seeds as u64).collect())
                .expect("one scenario cannot collide with itself");
            set.run_streaming(
                true,
                repair_trial,
                &mut |trial: mca_scenario::KeyedTrial<RepairTrial>| {
                    let (seed, t) = (trial.key.seed, trial.result);
                    case.epochs += t.epochs;
                    case.initial_build_slots += t.initial_build_slots;
                    case.repair_slots += t.repair_slots;
                    case.rebuild_slots += t.rebuild_slots;
                    case.rehomed += t.rehomed;
                    case.handovers += t.handovers;
                    case.new_dominators += t.new_dominators;
                    case.retired_clusters += t.retired_clusters;
                    case.fallback_rebuilds += t.fallback_rebuilds;
                    if t.clean_epochs != t.epochs {
                        case.audits_clean = false;
                        if case.first_violation.is_none() {
                            case.first_violation =
                                t.first_violation.map(|v| format!("seed {seed}, {v}"));
                        }
                    }
                },
            );
            case.repair_fraction = case.repair_slots as f64 / case.rebuild_slots.max(1) as f64;
            case
        })
        .collect()
}

/// Renders `BENCH_repair.json` and returns `(json, all_gates_hold)`.
pub fn repair_bench_json(seeds: usize) -> (String, bool) {
    let cases = run_repair_bench(seeds);
    let ok = cases.iter().all(RepairBenchCase::holds_gate);
    let rows: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{\"scenario\": \"{}\", \"seeds\": {}, \"epochs\": {}, ",
                    "\"initial_build_slots\": {}, \"repair_slots\": {}, ",
                    "\"rebuild_slots\": {}, \"repair_fraction\": {:.3}, ",
                    "\"audits_clean\": {}, \"rehomed\": {}, \"handovers\": {}, ",
                    "\"new_dominators\": {}, \"retired_clusters\": {}, ",
                    "\"fallback_rebuilds\": {}}}"
                ),
                c.scenario,
                c.seeds,
                c.epochs,
                c.initial_build_slots,
                c.repair_slots,
                c.rebuild_slots,
                c.repair_fraction,
                c.audits_clean,
                c.rehomed,
                c.handovers,
                c.new_dominators,
                c.retired_clusters,
                c.fallback_rebuilds,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"structure_repair\",\n",
            "  \"baseline\": \"full rebuild over the live set each maintenance epoch\",\n",
            "  \"unit\": \"simulated protocol slots\",\n",
            "  \"seeds\": {},\n  \"cases\": [\n{}\n  ]\n}}\n"
        ),
        seeds,
        rows.join(",\n")
    );
    (json, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(name: &str) -> Scenario {
        builtin_scenarios()
            .into_iter()
            .find(|e| e.scenario.name == name)
            .unwrap()
            .scenario
    }

    #[test]
    fn churn_world_repairs_cheaper_than_rebuild_and_audit_clean() {
        let t = repair_trial(&world("churn"), 1);
        assert!(t.epochs >= 4, "expected 4 epochs of 100 slots: {t:?}");
        assert_eq!(
            t.clean_epochs, t.epochs,
            "audit violation: {:?}",
            t.first_violation
        );
        assert!(
            t.repair_slots < t.rebuild_slots,
            "repair ({}) must undercut rebuild ({})",
            t.repair_slots,
            t.rebuild_slots
        );
        assert!(t.retired_clusters > 0, "node 0 crashes at slot 200: {t:?}");
    }

    #[test]
    fn mobile_churn_world_holds_the_gate() {
        let t = repair_trial(&world("mobile-churn"), 1);
        assert_eq!(
            t.clean_epochs, t.epochs,
            "audit violation: {:?}",
            t.first_violation
        );
        assert!(t.repair_slots < t.rebuild_slots, "{t:?}");
        assert!(t.handovers > 0, "mobility must force handovers: {t:?}");
    }

    #[test]
    fn policy_defaults_agree_across_layers() {
        // mca-core and mca-scenario cannot reference each other, so their
        // copies of the default maintenance policy are pinned here, where
        // both are visible.
        let core = MaintainConfig::default();
        let spec = MaintenanceSpec::every(1);
        assert_eq!(core.handover_hysteresis, spec.handover_hysteresis);
        assert_eq!(core.rebuild_threshold, spec.rebuild_threshold);
    }

    #[test]
    fn trials_are_deterministic() {
        let s = world("churn");
        assert_eq!(repair_trial(&s, 3), repair_trial(&s, 3));
    }

    #[test]
    fn json_shape_smoke() {
        // One seed over the full matrix is the CI smoke path.
        let (json, ok) = repair_bench_json(1);
        assert!(json.contains("\"bench\": \"structure_repair\""), "{json}");
        assert!(json.contains("mobile-churn"), "{json}");
        assert!(ok, "acceptance gate failed:\n{json}");
    }
}
