//! Running arbitrary scenario files end-to-end.
//!
//! `experiments --scenario path.toml` needs a workload that is meaningful
//! on *any* world a user writes — static or mobile, faded or jammed,
//! churning or not. The flood-combine max-aggregation backbone (the same
//! protocol E16 uses) fits: every node floods its id, the network
//! aggregates the maximum, and coverage/reception metrics summarize how
//! the environment treated the traffic.
//!
//! A trial is a pure function of `(scenario, seed)`, so
//! [`scenario_flood_trial`] doubles as the acceptance oracle for TOML
//! round-trips: a deserialized scenario must produce a [`ScenarioTrial`]
//! bit-identical to its in-code original.

use mca_analysis::{run_trials, Table};
use mca_core::aggregate::intercluster::{FloodCfg, FloodCombine};
use mca_core::{MaxAgg, Tdma};
use mca_scenario::{Scenario, ScenarioSim};

/// The metrics of one scenario trial, comparable bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioTrial {
    /// Fraction of live nodes that ended holding the global maximum.
    pub coverage: f64,
    /// Whether every live node held the global maximum.
    pub full_coverage: bool,
    /// Successful decodes across the run.
    pub receptions: u64,
    /// Listen slots that sensed energy but decoded nothing.
    pub busy_failures: u64,
    /// Receptions suppressed by the environment (deep fades).
    pub env_drops: u64,
    /// Slots executed.
    pub slots: u64,
}

/// The flood configuration used for a scenario of `channels` channels and
/// `max_slots` slots: the last quarter (capped at 100 slots) is the quiet
/// tail, and the flood hops over every channel of the world.
fn flood_cfg(channels: u16, max_slots: u64) -> FloodCfg {
    let tail_rounds = (max_slots / 4).min(100);
    FloodCfg {
        q: 0.2,
        flood_rounds: max_slots.saturating_sub(tail_rounds),
        tail_rounds,
        tdma: Tdma::new(1, 1),
        hop_channels: channels,
    }
}

/// Runs the flood-combine max-aggregation workload over `scenario` for
/// trial `seed`. Pure in `(scenario, seed)`: identical inputs give a
/// bit-identical [`ScenarioTrial`].
pub fn scenario_flood_trial(scenario: &Scenario, seed: u64) -> ScenarioTrial {
    flood_trial_inner(scenario, seed, false).0
}

/// [`scenario_flood_trial`] with an `mca-obs` recorder force-attached to
/// the engine, returning the trial alongside the detached recorder.
///
/// Recording is observation-only: the returned [`ScenarioTrial`] is
/// bit-identical to [`scenario_flood_trial`]'s for the same inputs (the
/// workspace determinism suite pins this). Without the `obs` feature the
/// recorder is the no-op kind and comes back empty.
pub fn scenario_flood_trial_observed(
    scenario: &Scenario,
    seed: u64,
) -> (ScenarioTrial, mca_obs::Recorder) {
    let (trial, rec) = flood_trial_inner(scenario, seed, true);
    (trial, rec.unwrap_or_default())
}

fn flood_trial_inner(
    scenario: &Scenario,
    seed: u64,
    observe: bool,
) -> (ScenarioTrial, Option<mca_obs::Recorder>) {
    let n = scenario.len();
    let cfg = flood_cfg(scenario.channels, scenario.max_slots);
    let mut sim = ScenarioSim::new(scenario, seed, |i, _| {
        FloodCombine::dominator(MaxAgg, cfg, 0, i as i64)
    });
    if observe && sim.obs().is_none() {
        sim.engine_mut().attach_obs(mca_obs::Recorder::new());
    }
    sim.run_until_done(scenario.max_slots);
    let recorder = if observe { sim.take_obs() } else { None };
    let faults = scenario.faults_for(seed);
    let slots = sim.slot();
    // The achievable maximum is the highest id that ever *participated*:
    // a node whose join never happened inside the run (or that crashed
    // before joining) cannot have contributed its id to the flood.
    let joins: std::collections::HashMap<u32, u64> = faults.join_events().into_iter().collect();
    let crashes: std::collections::HashMap<u32, u64> = faults.crash_events().into_iter().collect();
    let participated = |i: u32| {
        let join = joins.get(&i).copied().unwrap_or(0);
        let crash = crashes.get(&i).copied().unwrap_or(u64::MAX);
        join < slots && crash > join
    };
    let expect = (0..n as u32)
        .filter(|&i| participated(i))
        .map(|i| i as i64)
        .max()
        .unwrap_or(0);
    // Nodes that are crashed (or never joined) by the end cannot be
    // expected to hold the maximum; score only the live ones.
    let mut live = 0usize;
    let mut holders = 0usize;
    for (i, p) in sim.protocols().iter().enumerate() {
        if faults.is_absent(i as u32, slots.saturating_sub(1)) {
            continue;
        }
        live += 1;
        if *p.value() == expect {
            holders += 1;
        }
    }
    let metrics = sim.metrics();
    let trial = ScenarioTrial {
        coverage: if live == 0 {
            0.0
        } else {
            holders as f64 / live as f64
        },
        full_coverage: live > 0 && holders == live,
        receptions: metrics.receptions,
        busy_failures: metrics.busy_failures,
        env_drops: metrics.env_drops,
        slots,
    };
    (trial, recorder)
}

/// Runs `trials` seeded trials of `scenario` and tabulates the outcome —
/// the harness behind `experiments --scenario`.
pub fn run_scenario(scenario: &Scenario, trials: usize) -> Table {
    let out = run_trials(0x5CE_u64, trials, |seed| {
        scenario_flood_trial(scenario, seed)
    });
    let mut t = Table::new(
        format!(
            "scenario `{}`: flood max-aggregation -- n={}, F={}, {} slot budget",
            scenario.name,
            scenario.len(),
            scenario.channels,
            scenario.max_slots
        ),
        [
            "trials",
            "coverage (median)",
            "full coverage",
            "receptions",
            "env drops",
            "slots",
        ],
    );
    t.row([
        trials.to_string(),
        format!("{:.0}%", out.summarize(|r| r.coverage).median() * 100.0),
        format!("{:.0}%", out.fraction(|r| r.full_coverage) * 100.0),
        format!("{:.0}", out.summarize(|r| r.receptions as f64).median()),
        format!("{:.0}", out.summarize(|r| r.env_drops as f64).median()),
        format!("{:.0}", out.summarize(|r| r.slots as f64).median()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_scenario::builtin_scenarios;

    #[test]
    fn trial_is_deterministic_in_scenario_and_seed() {
        let s = &builtin_scenarios()[0].scenario;
        assert_eq!(scenario_flood_trial(s, 7), scenario_flood_trial(s, 7));
    }

    #[test]
    fn static_uniform_flood_mostly_covers() {
        let s = &builtin_scenarios()[0].scenario;
        let t = scenario_flood_trial(s, 1);
        assert!(t.coverage > 0.5, "coverage {:.2} too low", t.coverage);
        assert!(t.receptions > 0);
        assert_eq!(t.env_drops, 0, "static world has no environment drops");
    }

    #[test]
    fn absent_top_id_does_not_zero_coverage() {
        // Node n-1 never joins inside the slot budget: the achievable
        // maximum is the top id among actual participants, and the live
        // nodes converging on it must count as full coverage.
        use mca_geom::Point;
        use mca_radio::FaultPlan;
        use mca_scenario::DeploymentSpec;
        let mut faults = FaultPlan::none();
        faults.join_at(4, 1_000_000);
        let s = mca_scenario::Scenario::builder("late-top-id")
            .deployment(DeploymentSpec::Explicit(
                (0..5).map(|i| Point::new(i as f64, 0.0)).collect(),
            ))
            .faults(faults)
            .channels(1)
            .max_slots(400)
            .build();
        let t = scenario_flood_trial(&s, 1);
        assert!(
            t.full_coverage,
            "live nodes converged on id 3 but were scored against 4: {t:?}"
        );
    }

    #[test]
    fn run_scenario_emits_one_row() {
        let s = &builtin_scenarios()[0].scenario;
        let table = format!("{}", run_scenario(s, 2));
        assert!(table.contains("static-uniform"), "{table}");
    }
}
