//! Observability can never perturb outcomes — the determinism contract of
//! `docs/OBSERVABILITY.md`, pinned against the committed goldens.
//!
//! With the `obs` feature compiled in and a recorder attached to every
//! engine, the catalog's golden trials must stay *byte-identical* to
//! `scenarios/GOLDEN_trials.json`, under `MCA_FORCE_PAR=1` (forced
//! `par_channels` + `par_shards` + shard grid) and a pinned worker count.
//! Lives in its own test binary: the force-par override is read once per
//! process, so it must be set before the first `Engine` is built and
//! would leak into unrelated tests otherwise.
//!
//! Without the `obs` feature the whole binary compiles to nothing — the
//! plain golden path is already covered by the CI determinism job.
#![cfg(feature = "obs")]

use mca_bench::{golden_trials_json_observed, scenario_flood_trial_observed};
use mca_scenario::builtin_scenarios;

#[test]
fn observed_goldens_stay_byte_identical_under_forced_fanout() {
    std::env::set_var("MCA_FORCE_PAR", "1");
    rayon::set_num_threads(2);

    // The recorder really is live in this configuration (a no-op recorder
    // would make the byte comparison vacuous).
    let entry = &builtin_scenarios()[0];
    let (_, rec) = scenario_flood_trial_observed(&entry.scenario, 1);
    assert!(mca_obs::enabled());
    assert!(!rec.is_empty(), "obs build must record spans");

    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/GOLDEN_trials.json"
    ))
    .expect("committed goldens exist");
    let observed = golden_trials_json_observed();
    assert_eq!(
        observed, committed,
        "recorded trials diverge from the committed goldens"
    );
}
