//! Kill-then-resume byte-identity for `run_sweep`, under forced
//! parallelism.
//!
//! The resume contract: a sweep interrupted at *any* trial boundary (or
//! even mid-write, leaving a torn line) and then resumed must produce an
//! output stream and journal byte-identical to the uninterrupted run.
//! These tests exercise every interrupt point of a small matrix rather
//! than sampling, plus torn-tail and `--fresh` recovery.
//!
//! Lives in its own test binary so `MCA_FORCE_PAR=1` (read once per
//! process by the rayon shim) covers the whole file.

use std::fs;
use std::path::{Path, PathBuf};

use mca_bench::{run_sweep, SweepConfig, SweepError};
use mca_scenario::matrix::SweepFile;

/// Forces the work-stealing pool on even on single-CPU CI runners, so the
/// chunked parallel emission path is what these byte-identity checks see.
fn force_par() {
    std::env::set_var("MCA_FORCE_PAR", "1");
}

/// A small sweep (2 n-values x 2 channel-values x 2 seeds = 8 trials)
/// that still crosses the runner's scenario boundaries several times.
const SWEEP_TOML: &str = r#"
name = "resume-prop"
channels = 2
max_slots = 80

[deployment]
kind = "uniform"
n = 10
side = 4.0

[matrix]
seeds = [1, 7]

[matrix.axes]
n = [8, 12]
channels = [1, 2]
"#;

/// A scratch directory unique to this test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("mca-sweep-resume-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn config(&self, name: &str) -> SweepConfig {
        SweepConfig::for_input(&self.0.join(format!("{name}.toml")))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).expect("read sweep artifact")
}

/// Runs the sweep uninterrupted and returns (out bytes, journal bytes).
fn golden(sweep: &SweepFile, scratch: &Scratch) -> (String, String) {
    let cfg = scratch.config("golden");
    let summary = run_sweep(sweep, &cfg).expect("uninterrupted sweep");
    assert!(summary.complete);
    assert_eq!(summary.skipped, 0);
    assert_eq!(summary.executed, summary.total);
    (read(&cfg.out_path), read(&cfg.journal_path))
}

#[test]
fn resume_is_byte_identical_at_every_interrupt_point() {
    force_par();
    let sweep = SweepFile::from_toml_str(SWEEP_TOML).expect("parse sweep");
    let scratch = Scratch::new("every-point");
    let (out, journal) = golden(&sweep, &scratch);
    let total = sweep.trial_set().expect("trial set").len();
    assert_eq!(total, 8);

    for limit in 0..=total {
        let cfg = SweepConfig {
            limit: Some(limit),
            ..scratch.config(&format!("limit-{limit}"))
        };
        let first = run_sweep(&sweep, &cfg).expect("interrupted sweep");
        assert_eq!(first.executed, limit);
        assert_eq!(first.complete, limit == total);

        let resume = SweepConfig {
            limit: None,
            ..cfg.clone()
        };
        let second = run_sweep(&sweep, &resume).expect("resumed sweep");
        assert!(second.complete);
        assert_eq!(
            second.skipped, limit,
            "resume must skip the journaled prefix"
        );
        assert_eq!(second.executed, total - limit);
        assert_eq!(
            read(&cfg.out_path),
            out,
            "out stream diverged at limit {limit}"
        );
        assert_eq!(
            read(&cfg.journal_path),
            journal,
            "journal diverged at limit {limit}"
        );
    }
}

#[test]
fn resume_recovers_from_torn_tails() {
    force_par();
    let sweep = SweepFile::from_toml_str(SWEEP_TOML).expect("parse sweep");
    let scratch = Scratch::new("torn");
    let (out, journal) = golden(&sweep, &scratch);

    let cfg = SweepConfig {
        limit: Some(5),
        ..scratch.config("torn")
    };
    run_sweep(&sweep, &cfg).expect("interrupted sweep");

    // A crash mid-write leaves a record flushed but unjournaled, or a
    // non-newline-terminated tail on either file. All three must heal.
    let out_bytes = read(&cfg.out_path);
    let journal_bytes = read(&cfg.journal_path);
    fs::write(&cfg.out_path, &out_bytes[..out_bytes.len() - 9]).unwrap();
    let trimmed: String = journal_bytes
        .lines()
        .take(4)
        .map(|l| format!("{l}\n"))
        .collect();
    fs::write(&cfg.journal_path, trimmed).unwrap();

    let resume = SweepConfig {
        limit: None,
        ..cfg.clone()
    };
    let summary = run_sweep(&sweep, &resume).expect("resumed after torn tail");
    assert!(summary.complete);
    // Out was torn inside record 5, journal holds 4 complete lines: the
    // reconciled prefix is min(4, 4) = 4 trials.
    assert_eq!(summary.skipped, 4);
    assert_eq!(summary.executed, 4);
    assert_eq!(read(&cfg.out_path), out);
    assert_eq!(read(&cfg.journal_path), journal);
}

#[test]
fn fresh_discards_a_corrupt_journal() {
    force_par();
    let sweep = SweepFile::from_toml_str(SWEEP_TOML).expect("parse sweep");
    let scratch = Scratch::new("fresh");
    let (out, journal) = golden(&sweep, &scratch);

    let cfg = scratch.config("fresh");
    run_sweep(&sweep, &cfg).expect("first run");
    fs::write(&cfg.journal_path, "not-a-scenario\t999\n").unwrap();

    // A journal that disagrees with the enumeration is an error, not a
    // silent re-run...
    match run_sweep(&sweep, &cfg) {
        Err(SweepError::JournalMismatch { line, .. }) => assert_eq!(line, 1),
        other => panic!("expected JournalMismatch, got {other:?}"),
    }

    // ...and `fresh` is the documented escape hatch, reproducing the
    // golden bytes from scratch.
    let fresh = SweepConfig { fresh: true, ..cfg };
    let summary = run_sweep(&sweep, &fresh).expect("fresh rerun");
    assert!(summary.complete);
    assert_eq!(summary.skipped, 0);
    assert_eq!(read(&fresh.out_path), out);
    assert_eq!(read(&fresh.journal_path), journal);
}
