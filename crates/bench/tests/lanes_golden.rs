//! The SIMD lane kernels can never move a golden byte — the bit-exactness
//! contract of `docs/SIMD_LANES.md`, pinned against the committed goldens
//! under maximum fan-out.
//!
//! The catalog's golden trials are regenerated twice in-process — once
//! with the lane kernels forced *off* (the scalar reference walk) and
//! once forced *on* — under `MCA_FORCE_PAR=1` (forced `par_channels` +
//! `par_shards` + shard grid) and a pinned worker count. Both renderings
//! must be byte-identical to each other and to the committed
//! `scenarios/GOLDEN_trials.json`: lane batching, like sharding and
//! threading, must be invisible in the results.
//!
//! Lives in its own test binary: the force-par override is read once per
//! process, so it must be set before the first `Engine` is built and
//! would leak into unrelated tests otherwise.

use mca_bench::golden_trials_json;

#[test]
fn lane_kernels_never_move_a_golden_byte_under_forced_fanout() {
    std::env::set_var("MCA_FORCE_PAR", "1");
    rayon::set_num_threads(2);

    mca_sinr::lanes::set_enabled(false);
    let scalar = golden_trials_json();
    mca_sinr::lanes::set_enabled(true);
    let lanes = golden_trials_json();
    mca_sinr::lanes::clear_override();

    assert_eq!(
        scalar, lanes,
        "lane kernels changed a golden byte vs the scalar walk"
    );

    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/GOLDEN_trials.json"
    ))
    .expect("committed goldens exist");
    assert_eq!(
        lanes, committed,
        "lane-kernel trials diverge from the committed goldens"
    );
}
