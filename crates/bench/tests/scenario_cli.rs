//! End-to-end acceptance for scenario files: a world that went through
//! TOML drives the simulator to *bit-identical* results, and every
//! committed catalog file runs.

use mca_bench::scenario_flood_trial;
use mca_scenario::{builtin_scenarios, Scenario};
use std::path::PathBuf;
use std::process::Command;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Runs the actual `experiments` binary and returns
/// `(exit_code, stdout, stderr)`.
fn run_cli(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawn experiments binary");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn unknown_subcommand_prints_usage_and_exits_2() {
    let (code, _, stderr) = run_cli(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("unknown subcommand `frobnicate`"),
        "{stderr}"
    );
    assert!(stderr.contains("Usage:"), "{stderr}");
}

#[test]
fn unknown_option_and_bad_seeds_exit_2() {
    let (code, _, stderr) = run_cli(&["--frobnicate"]);
    assert_eq!(code, 2, "{stderr}");
    let (code, _, stderr) = run_cli(&["--scenario", "x.toml", "--seeds", "zero"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("--seeds"), "{stderr}");
}

#[test]
fn missing_scenario_file_exits_1_with_the_path() {
    let (code, _, stderr) = run_cli(&["--scenario", "/no/such/world.toml"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("world.toml"), "{stderr}");
}

#[test]
fn malformed_scenario_file_reports_line_and_field() {
    let dir = std::env::temp_dir().join("mca_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.toml");
    std::fs::write(
        &path,
        "name = \"broken\"\n[sinr]\nalpha = 1.0\n[deployment]\nkind = \"line\"\nn = 3\nspacing = 2.0\n",
    )
    .unwrap();
    let (code, _, stderr) = run_cli(&["--scenario", path.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(stderr.contains("line 3"), "{stderr}");
    assert!(stderr.contains("sinr.alpha"), "{stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn scenario_run_via_cli_prints_a_table_and_exits_0() {
    let path = scenarios_dir().join("static-uniform.toml");
    let (code, stdout, _) = run_cli(&["--scenario", path.to_str().unwrap(), "--seeds", "2"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("static-uniform"), "{stdout}");
    assert!(stdout.contains("coverage"), "{stdout}");
}

#[test]
fn check_scenarios_validates_the_catalog_via_cli() {
    let dir = scenarios_dir();
    let (code, stdout, _) = run_cli(&["check-scenarios", dir.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(stdout.contains("parsed cleanly"), "{stdout}");
    let (code, _, stderr) = run_cli(&["check-scenarios", "/no/such/dir"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn round_tripped_scenarios_produce_bit_identical_trials() {
    for entry in builtin_scenarios() {
        let original = &entry.scenario;
        let round_tripped = Scenario::from_toml_str(&original.to_toml()).unwrap();
        for seed in [0u64, 1, 17] {
            let a = scenario_flood_trial(original, seed);
            let b = scenario_flood_trial(&round_tripped, seed);
            assert_eq!(
                a, b,
                "{} seed {seed}: TOML round-trip changed the simulation",
                original.name
            );
        }
    }
}

#[test]
fn committed_scenario_files_run_end_to_end() {
    for entry in builtin_scenarios() {
        let path = scenarios_dir().join(entry.file_name());
        let loaded = Scenario::load(&path).unwrap_or_else(|e| panic!("{e}"));
        // The file-loaded world is the in-code world, down to the bit.
        let from_file = scenario_flood_trial(&loaded, 3);
        let from_code = scenario_flood_trial(&entry.scenario, 3);
        assert_eq!(from_file, from_code, "{}", path.display());
        assert!(from_file.slots > 0);
    }
}

#[test]
fn dynamic_scenarios_report_environment_effects() {
    // The fading world drops receptions; the static baseline never does.
    let entries = builtin_scenarios();
    let fading = entries
        .iter()
        .find(|e| e.scenario.name == "fading-jammer")
        .unwrap();
    let baseline = entries
        .iter()
        .find(|e| e.scenario.name == "static-uniform")
        .unwrap();
    let faded = scenario_flood_trial(&fading.scenario, 2);
    let clear = scenario_flood_trial(&baseline.scenario, 2);
    assert_eq!(clear.env_drops, 0);
    assert!(
        faded.busy_failures + faded.env_drops > 0,
        "fading+jamming left no trace: {faded:?}"
    );
}
