//! Criterion wrapper around experiment E1: end-to-end aggregation at
//! `F ∈ {1, 8}` (wall-clock; the slot counts are what `experiments e1`
//! reports).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mca_bench::measure_aggregation;
use mca_core::{Constants, SubstrateMode};

fn speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_e2e");
    group.sample_size(10);
    for &f in &[1u16, 8] {
        group.bench_with_input(BenchmarkId::new("channels", f), &f, |b, &f| {
            b.iter(|| {
                let m = measure_aggregation(
                    250,
                    5.5,
                    f,
                    2.0,
                    SubstrateMode::Oracle,
                    Constants::practical(),
                    42,
                );
                assert!(m.correct);
                m.agg_slots
            })
        });
    }
    group.finish();
}

criterion_group!(benches, speedup);
criterion_main!(benches);
