//! Batched SINR resolution vs the seed per-listener scan.
//!
//! One iteration = one slot: every listener of every channel resolved
//! against that channel's transmitter set. `seed_scan` is a frozen copy of
//! the pre-batching engine hot path (`dist → powf(α)` per pair);
//! `batch_exact` is the `ChannelResolver` in its default bit-exact mode;
//! `batch_fast` adds the spatial-grid near/far split.
//!
//! Set `SINR_BENCH_SMOKE=1` for a reduced-sample CI smoke run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mca_bench::sinr_bench::{batch_slot, build_world, seed_scan_slot, SINR_BENCH_CASES};
use mca_sinr::{ResolveMode, SinrParams};

fn sinr_resolve(c: &mut Criterion) {
    let smoke = std::env::var_os("SINR_BENCH_SMOKE").is_some();
    let exact = SinrParams::default();
    let fast = SinrParams::default().with_resolve(ResolveMode::fast());
    let mut group = c.benchmark_group("sinr_resolve");
    group.sample_size(if smoke { 2 } else { 10 });
    for &(n, channels) in &SINR_BENCH_CASES {
        for dense in [true, false] {
            let label = format!(
                "{n}x{channels}ch/{}",
                if dense { "dense" } else { "sparse" }
            );
            let world = build_world(n, channels, dense, 7);
            group.bench_with_input(BenchmarkId::new("seed_scan", &label), &world, |b, w| {
                b.iter(|| seed_scan_slot(&exact, w))
            });
            group.bench_with_input(BenchmarkId::new("batch_exact", &label), &world, |b, w| {
                b.iter(|| batch_slot(&exact, w))
            });
            group.bench_with_input(BenchmarkId::new("batch_fast", &label), &world, |b, w| {
                b.iter(|| batch_slot(&fast, w))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, sinr_resolve);
criterion_main!(benches);
