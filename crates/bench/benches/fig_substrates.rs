//! Criterion wrapper around experiments E5/E6: substrate construction
//! (dominating set + clustering + coloring + CSA + election).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mca_core::{build_structure, AlgoConfig, NetworkEnv, StructureConfig, SubstrateMode};
use mca_geom::Deployment;
use mca_sinr::SinrParams;
use rand::{rngs::SmallRng, SeedableRng};

fn substrates(c: &mut Criterion) {
    let params = SinrParams::default();
    let mut group = c.benchmark_group("structure_build");
    group.sample_size(10);
    for mode in [SubstrateMode::Oracle, SubstrateMode::Distributed] {
        group.bench_with_input(
            BenchmarkId::new("n300", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                let mut rng = SmallRng::seed_from_u64(3);
                let deploy = Deployment::uniform(300, 10.0, &mut rng);
                let env = NetworkEnv::new(params, &deploy);
                let algo = AlgoConfig::practical(8, &params, 300);
                b.iter(|| {
                    let mut cfg = StructureConfig::new(algo, 3);
                    cfg.substrate = mode;
                    let s = build_structure(&env, &cfg);
                    assert!(s.report.clusters > 0);
                    s.report.total_slots()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, substrates);
criterion_main!(benches);
