//! Wall-clock throughput of the simulation engine (slots/second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mca_core::aggregate::intercluster::{FloodCfg, FloodCombine};
use mca_core::{MaxAgg, Tdma};
use mca_geom::Deployment;
use mca_radio::Engine;
use mca_sinr::SinrParams;
use rand::{rngs::SmallRng, SeedableRng};

fn engine_slots(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_slots");
    group.sample_size(10);
    for &n in &[100usize, 400, 1000] {
        group.bench_with_input(BenchmarkId::new("flood_100_slots", n), &n, |b, &n| {
            let params = SinrParams::default();
            let mut rng = SmallRng::seed_from_u64(1);
            let deploy = Deployment::uniform(n, (n as f64 / 4.0).sqrt(), &mut rng);
            let cfg = FloodCfg {
                q: 0.2,
                flood_rounds: 1_000_000,
                tail_rounds: 0,
                tdma: Tdma::new(1, 1),
                hop_channels: 0,
            };
            b.iter(|| {
                let protocols: Vec<FloodCombine<MaxAgg>> = (0..n)
                    .map(|i| FloodCombine::dominator(MaxAgg, cfg, 0, i as i64))
                    .collect();
                let mut engine = Engine::new(params, deploy.points().to_vec(), protocols, 7);
                engine.run(100);
                engine.metrics().receptions
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engine_slots);
criterion_main!(benches);
