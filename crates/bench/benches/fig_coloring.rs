//! Criterion wrapper around experiment E4: structure coloring end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};
use mca_core::{
    build_structure, color_nodes, AlgoConfig, NetworkEnv, StructureConfig, SubstrateMode,
};
use mca_geom::Deployment;
use mca_sinr::SinrParams;
use rand::{rngs::SmallRng, SeedableRng};

fn coloring(c: &mut Criterion) {
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(5);
    let deploy = Deployment::uniform(200, 6.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(8, &params, 200);
    let mut cfg = StructureConfig::new(algo, 5);
    cfg.substrate = SubstrateMode::Oracle;
    cfg.cluster_radius = 2.0;
    let structure = build_structure(&env, &cfg);

    let mut group = c.benchmark_group("coloring_e2e");
    group.sample_size(10);
    group.bench_function("n200_f8", |b| {
        b.iter(|| {
            let out = color_nodes(&env, &structure, &algo, 5);
            assert_eq!(out.uncolored, 0);
            out.total_slots()
        })
    });
    group.finish();
}

criterion_group!(benches, coloring);
criterion_main!(benches);
