//! Criterion wrapper around experiments E12–E14: applications of the
//! structure (leader election, broadcast) and the compressibility limit
//! (info exchange vs aggregation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mca_baselines::{run_info_exchange, ExchangeConfig};
use mca_core::{
    broadcast_many, build_structure, elect_leader, AlgoConfig, NetworkEnv, StructureConfig,
    SubstrateMode,
};
use mca_geom::Deployment;
use mca_radio::NodeId;
use mca_sinr::SinrParams;
use rand::{rngs::SmallRng, SeedableRng};

fn applications(c: &mut Criterion) {
    let params = SinrParams::default();
    let mut group = c.benchmark_group("applications");
    group.sample_size(10);

    // Leader election at 1 vs 8 channels (the E12 speedup).
    for channels in [1u16, 8] {
        group.bench_with_input(
            BenchmarkId::new("leader_n200", format!("F{channels}")),
            &channels,
            |b, &channels| {
                let mut rng = SmallRng::seed_from_u64(3);
                let deploy = Deployment::uniform(200, 6.0, &mut rng);
                let env = NetworkEnv::new(params, &deploy);
                let algo = AlgoConfig::practical(channels, &params, 200);
                let mut cfg = StructureConfig::new(algo, 3);
                cfg.substrate = SubstrateMode::Oracle;
                cfg.cluster_radius = 2.0;
                let s = build_structure(&env, &cfg);
                let d_hat = env.comm_graph().diameter_approx() + 2;
                b.iter(|| {
                    let out = elect_leader(&env, &s, &algo, d_hat, 42);
                    assert!(out.agreement > 0);
                    out.total_slots()
                })
            },
        );
    }

    // Multi-message broadcast at k = 8 (the E13 workload).
    group.bench_function("broadcast_many_k8_n100", |b| {
        let mut rng = SmallRng::seed_from_u64(5);
        let deploy = Deployment::uniform(100, 9.0, &mut rng);
        let env = NetworkEnv::new(params, &deploy);
        let algo = AlgoConfig::practical(4, &params, 100);
        let mut cfg = StructureConfig::new(algo, 5);
        cfg.substrate = SubstrateMode::Oracle;
        cfg.cluster_radius = 2.0;
        let s = build_structure(&env, &cfg);
        let d_hat = env.comm_graph().diameter_approx() + 2;
        let messages: Vec<(NodeId, u64)> = (0..8).map(|i| (NodeId(i * 12), i as u64)).collect();
        b.iter(|| {
            let out = broadcast_many(&env, &s, &algo, &messages, d_hat, 9);
            assert_eq!(out.unhoisted, 0);
            out.total_slots()
        })
    });

    // Info exchange: the flat curve of E14, F = 1 vs 8.
    for channels in [1u16, 8] {
        group.bench_with_input(
            BenchmarkId::new("exchange_n50", format!("F{channels}")),
            &channels,
            |b, &channels| {
                let mut rng = SmallRng::seed_from_u64(7);
                let deploy = Deployment::disk(50, params.r_eps() / 4.0, &mut rng);
                let cfg = ExchangeConfig::new(channels, 50);
                b.iter(|| {
                    let out = run_info_exchange(&params, deploy.points(), cfg, 11);
                    assert_eq!(out.completed(), 50);
                    out.slots
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, applications);
criterion_main!(benches);
