//! SINR-level degradation detection: per-node EWMA link health.
//!
//! The per-epoch structural audit in `mca-core` proves the aggregation
//! structure is *shaped* right — every member attached, clusters colored,
//! censuses consistent — but it cannot see SINR-level damage: a jammed or
//! deep-faded cluster still audits clean while none of its members can
//! decode a thing. The [`DegradationDetector`] closes that gap from the
//! engine's own delivery outcomes (the same per-channel
//! tx/listens/rx/busy/env stream `mca-obs` records): every slot a node
//! listens on a *contested* channel (one with at least one transmitter),
//! the detector folds the delivery verdict into a per-node exponentially
//! weighted moving average and flags nodes whose delivery rate decays past
//! a threshold — *before* any audit could fail — as typed
//! [`DetectionEvent`]s for a maintainer to act on proactively.
//!
//! The detector is observation-only, like the `mca-obs` recorder: attaching
//! one never perturbs engine outcomes, RNG draws, or metrics, so arms with
//! and without a detector run bit-identical worlds.

use crate::ids::NodeId;

/// Tuning for the [`DegradationDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// EWMA smoothing factor in `(0, 1]`: weight of the newest sample.
    /// Larger reacts faster but flags transient fades more readily.
    pub alpha: f64,
    /// Flag a node when its health score falls strictly below this.
    pub degrade_below: f64,
    /// Clear a flagged node when its score rises strictly above this.
    /// Keeping `recover_above > degrade_below` gives the detector
    /// hysteresis so a score hovering at the threshold does not flap.
    pub recover_above: f64,
    /// Samples a node must accumulate before it can be flagged — a cold
    /// node with two unlucky slots is not a degraded link.
    pub warmup: u32,
}

impl DetectorConfig {
    fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha must be in (0, 1], got {}",
            self.alpha
        );
        assert!(
            (0.0..=1.0).contains(&self.degrade_below) && (0.0..=1.0).contains(&self.recover_above),
            "thresholds must be probabilities"
        );
        assert!(
            self.recover_above >= self.degrade_below,
            "recover_above {} must not sit below degrade_below {}",
            self.recover_above,
            self.degrade_below
        );
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            alpha: 0.25,
            degrade_below: 0.35,
            recover_above: 0.75,
            warmup: 8,
        }
    }
}

/// A health-state transition observed by the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectionEvent {
    /// The node's delivery health decayed below the degrade threshold.
    Degraded {
        /// The flagged node.
        node: NodeId,
        /// Slot the score crossed the threshold.
        slot: u64,
        /// The health score at the crossing.
        score: f64,
        /// Slot of the first failed delivery in the current losing streak —
        /// the detector's best estimate of degradation onset, so
        /// `slot - since` is the detection latency.
        since: u64,
    },
    /// A previously flagged node's health recovered above the clear
    /// threshold (e.g. the jammer moved on, or the fade lifted).
    Recovered {
        /// The recovered node.
        node: NodeId,
        /// Slot the score crossed the recovery threshold.
        slot: u64,
        /// The health score at the crossing.
        score: f64,
    },
}

impl DetectionEvent {
    /// The node this event concerns.
    pub fn node(&self) -> NodeId {
        match *self {
            DetectionEvent::Degraded { node, .. } | DetectionEvent::Recovered { node, .. } => node,
        }
    }

    /// The slot the event was observed at.
    pub fn slot(&self) -> u64 {
        match *self {
            DetectionEvent::Degraded { slot, .. } | DetectionEvent::Recovered { slot, .. } => slot,
        }
    }
}

/// Per-node EWMA delivery-health tracking over contested listen slots.
#[derive(Debug, Clone)]
pub struct DegradationDetector {
    cfg: DetectorConfig,
    /// Per-node health score in `[0, 1]`; starts optimistic at 1.0.
    scores: Vec<f64>,
    /// Contested listen slots sampled so far (saturating).
    samples: Vec<u32>,
    /// Whether the node is currently flagged as degraded.
    flagged: Vec<bool>,
    /// Slot of the first failed sample in the current losing streak.
    fail_since: Vec<Option<u64>>,
    /// Transitions observed since the last drain.
    events: Vec<DetectionEvent>,
}

impl DegradationDetector {
    /// A detector over `n` nodes.
    pub fn new(n: usize, cfg: DetectorConfig) -> Self {
        cfg.validate();
        DegradationDetector {
            cfg,
            scores: vec![1.0; n],
            samples: vec![0; n],
            flagged: vec![false; n],
            fail_since: vec![None; n],
            events: Vec::new(),
        }
    }

    /// Folds one contested listen outcome into node `node`'s health:
    /// `delivered` is whether the listener decoded a message this slot.
    /// Only call for slots where the node listened on a channel with at
    /// least one transmitter — an uncontested silent listen is no evidence
    /// either way.
    pub fn sample(&mut self, node: u32, slot: u64, delivered: bool) {
        let i = node as usize;
        let x = if delivered { 1.0 } else { 0.0 };
        self.scores[i] = self.cfg.alpha * x + (1.0 - self.cfg.alpha) * self.scores[i];
        self.samples[i] = self.samples[i].saturating_add(1);
        if delivered {
            if !self.flagged[i] {
                self.fail_since[i] = None;
            }
        } else if self.fail_since[i].is_none() {
            self.fail_since[i] = Some(slot);
        }
        if !self.flagged[i]
            && self.samples[i] >= self.cfg.warmup
            && self.scores[i] < self.cfg.degrade_below
        {
            self.flagged[i] = true;
            self.events.push(DetectionEvent::Degraded {
                node: NodeId(node),
                slot,
                score: self.scores[i],
                since: self.fail_since[i].unwrap_or(slot),
            });
        } else if self.flagged[i] && self.scores[i] > self.cfg.recover_above {
            self.flagged[i] = false;
            self.fail_since[i] = None;
            self.events.push(DetectionEvent::Recovered {
                node: NodeId(node),
                slot,
                score: self.scores[i],
            });
        }
    }

    /// Takes the transitions observed since the last drain.
    pub fn drain(&mut self) -> Vec<DetectionEvent> {
        std::mem::take(&mut self.events)
    }

    /// Transitions queued for the next drain.
    pub fn pending(&self) -> usize {
        self.events.len()
    }

    /// Node `node`'s current health score.
    pub fn score(&self, node: u32) -> f64 {
        self.scores[node as usize]
    }

    /// Whether node `node` is currently flagged as degraded.
    pub fn is_flagged(&self, node: u32) -> bool {
        self.flagged[node as usize]
    }

    /// Currently flagged nodes, ascending.
    pub fn flagged_nodes(&self) -> Vec<u32> {
        (0..self.flagged.len() as u32)
            .filter(|&i| self.flagged[i as usize])
            .collect()
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectorConfig {
        DetectorConfig::default()
    }

    #[test]
    fn healthy_node_is_never_flagged() {
        let mut d = DegradationDetector::new(2, cfg());
        for slot in 0..100 {
            d.sample(0, slot, true);
        }
        assert!(!d.is_flagged(0));
        assert!(d.drain().is_empty());
        assert!(d.score(0) > 0.99);
    }

    #[test]
    fn sustained_failures_flag_before_total_silence() {
        let mut d = DegradationDetector::new(1, cfg());
        // Warm up healthy, then a jammer arrives at slot 50.
        for slot in 0..50 {
            d.sample(0, slot, true);
        }
        let mut flagged_at = None;
        for slot in 50..200 {
            d.sample(0, slot, false);
            if d.is_flagged(0) && flagged_at.is_none() {
                flagged_at = Some(slot);
            }
        }
        let flagged_at = flagged_at.expect("sustained failures must flag");
        // alpha=0.25: score falls below 0.35 within a handful of slots.
        assert!(flagged_at < 60, "flagged at {flagged_at}");
        let events = d.drain();
        assert_eq!(events.len(), 1);
        match events[0] {
            DetectionEvent::Degraded {
                node, slot, since, ..
            } => {
                assert_eq!(node, NodeId(0));
                assert_eq!(slot, flagged_at);
                assert_eq!(since, 50, "onset is the first failed sample");
            }
            _ => panic!("expected Degraded"),
        }
    }

    #[test]
    fn warmup_suppresses_cold_start_flags() {
        let mut d = DegradationDetector::new(1, cfg());
        // Fewer than `warmup` samples never flag, however bad.
        for slot in 0..7 {
            d.sample(0, slot, false);
        }
        assert!(!d.is_flagged(0));
        d.sample(0, 7, false);
        assert!(d.is_flagged(0), "flag arrives with the warmup-th sample");
    }

    #[test]
    fn recovery_emits_and_rearms() {
        let mut d = DegradationDetector::new(1, cfg());
        for slot in 0..30 {
            d.sample(0, slot, false);
        }
        assert!(d.is_flagged(0));
        for slot in 30..80 {
            d.sample(0, slot, true);
        }
        assert!(!d.is_flagged(0), "healthy streak recovers the node");
        let events = d.drain();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], DetectionEvent::Degraded { .. }));
        assert!(matches!(events[1], DetectionEvent::Recovered { .. }));
        // A second episode re-flags with a fresh onset estimate.
        for slot in 80..120 {
            d.sample(0, slot, false);
        }
        match d.drain()[0] {
            DetectionEvent::Degraded { since, .. } => assert_eq!(since, 80),
            _ => panic!("expected Degraded"),
        }
    }

    #[test]
    fn hysteresis_band_does_not_flap() {
        let mut d = DegradationDetector::new(1, cfg());
        for slot in 0..30 {
            d.sample(0, slot, false);
        }
        assert!(d.is_flagged(0));
        // Alternating outcomes hold the score mid-band: no recovery, and
        // no duplicate degraded events.
        for slot in 30..130 {
            d.sample(0, slot, slot % 2 == 0);
        }
        assert!(d.is_flagged(0));
        assert_eq!(d.drain().len(), 1, "one Degraded, nothing else");
    }

    #[test]
    fn flagged_nodes_view_is_sorted() {
        let mut d = DegradationDetector::new(4, cfg());
        for slot in 0..30 {
            d.sample(3, slot, false);
            d.sample(1, slot, false);
            d.sample(2, slot, true);
        }
        assert_eq!(d.flagged_nodes(), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_is_rejected() {
        DegradationDetector::new(
            1,
            DetectorConfig {
                alpha: 0.0,
                ..DetectorConfig::default()
            },
        );
    }
}
