//! Per-slot actions and observations.
//!
//! The communication interface matches the paper's model (§2): in each slot
//! a node selects one channel and either transmits or listens on it; a node
//! operating on a channel learns nothing about other channels; transmitters
//! get no feedback (no collision detection, no transmitter-side carrier
//! sense); listeners get receiver-side carrier sense (total received power,
//! plus signal strength and SINR on a successful decode).

use crate::ids::{Channel, NodeId};
use mca_sinr::{ListenOutcome, SinrParams};

/// What a node does in one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Transmit `msg` on `channel`.
    Transmit {
        /// Channel to transmit on.
        channel: Channel,
        /// Message payload.
        msg: M,
    },
    /// Listen on `channel`.
    Listen {
        /// Channel to listen on.
        channel: Channel,
    },
    /// Power down for the slot (neither transmit nor listen).
    Idle,
}

impl<M> Action<M> {
    /// The channel the action operates on, if any.
    pub fn channel(&self) -> Option<Channel> {
        match self {
            Action::Transmit { channel, .. } | Action::Listen { channel } => Some(*channel),
            Action::Idle => None,
        }
    }

    /// Whether this is a transmission.
    pub fn is_transmit(&self) -> bool {
        matches!(self, Action::Transmit { .. })
    }
}

/// A successfully decoded message together with the listener's carrier-sense
/// readings for the slot.
#[derive(Debug, Clone, PartialEq)]
pub struct Reception<M> {
    /// Sender's id (from the decoded frame header).
    pub from: NodeId,
    /// The decoded payload.
    pub msg: M,
    /// Received power of the decoded signal, `P/d^α`.
    pub signal: f64,
    /// SINR of the decoded signal.
    pub sinr: f64,
    /// Total received power over all transmitters on the channel.
    pub total_power: f64,
}

impl<M> Reception<M> {
    /// Interference sensed next to the decoded signal
    /// (`total_power − signal`), the quantity of Definition 4.
    pub fn sensed_interference(&self) -> f64 {
        (self.total_power - self.signal).max(0.0)
    }

    /// RSSI-based distance estimate to the sender (uniform power known).
    pub fn distance_estimate(&self, params: &SinrParams) -> f64 {
        params.distance_from_power(self.signal)
    }

    /// Definition 4 *clear reception* for radius `r`: sender within `r`
    /// (by signal strength) and sensed interference at most the
    /// radius-dependent threshold `T_s(r)`
    /// (see [`SinrParams::clear_threshold_for`]).
    pub fn is_clear(&self, params: &SinrParams, r: f64) -> bool {
        self.signal >= params.received_power(r)
            && self.sensed_interference() <= params.clear_threshold_for(r)
    }
}

/// What a node experienced in one slot.
#[derive(Debug, Clone, PartialEq)]
pub enum Observation<M> {
    /// The node transmitted. It learns nothing (no transmitter-side
    /// detection).
    Sent,
    /// The node listened and decoded a message.
    Received(Reception<M>),
    /// The node listened and decoded nothing; `total_power` is the
    /// carrier-sense reading (0 for a silent channel).
    Noise {
        /// Total received power on the listened channel.
        total_power: f64,
    },
    /// The node idled.
    Slept,
}

impl<M> Observation<M> {
    /// The reception, if this observation decoded a message.
    pub fn reception(&self) -> Option<&Reception<M>> {
        match self {
            Observation::Received(r) => Some(r),
            _ => None,
        }
    }

    /// Builds an observation from a physical-layer [`ListenOutcome`],
    /// translating the decoded transmitter through `sender_of`.
    pub fn from_outcome<F>(outcome: &ListenOutcome, msg_of: F) -> Self
    where
        F: FnOnce(usize) -> (NodeId, M),
    {
        match outcome.decoded {
            Some(i) => {
                let (from, msg) = msg_of(i);
                Observation::Received(Reception {
                    from,
                    msg,
                    signal: outcome.signal,
                    sinr: outcome.sinr,
                    total_power: outcome.total_power,
                })
            }
            None => Observation::Noise {
                total_power: outcome.total_power,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_channel_access() {
        let t: Action<u8> = Action::Transmit {
            channel: Channel(2),
            msg: 7,
        };
        assert_eq!(t.channel(), Some(Channel(2)));
        assert!(t.is_transmit());
        let l: Action<u8> = Action::Listen {
            channel: Channel(1),
        };
        assert_eq!(l.channel(), Some(Channel(1)));
        assert!(!l.is_transmit());
        assert_eq!(Action::<u8>::Idle.channel(), None);
    }

    #[test]
    fn reception_interference_and_distance() {
        let params = SinrParams::default();
        let d = 2.0;
        let sig = params.received_power(d);
        let r = Reception {
            from: NodeId(1),
            msg: (),
            signal: sig,
            sinr: 100.0,
            total_power: sig + 0.5,
        };
        assert!((r.sensed_interference() - 0.5).abs() < 1e-12);
        assert!((r.distance_estimate(&params) - d).abs() < 1e-9);
    }

    #[test]
    fn clear_reception_logic() {
        let params = SinrParams::default();
        let r = 1.0;
        let sig = params.received_power(0.5);
        let clear = Reception {
            from: NodeId(0),
            msg: (),
            signal: sig,
            sinr: 1e6,
            total_power: sig,
        };
        assert!(clear.is_clear(&params, r));
        let too_far = Reception {
            signal: params.received_power(1.5),
            total_power: params.received_power(1.5),
            ..clear.clone()
        };
        assert!(!too_far.is_clear(&params, r));
        let noisy = Reception {
            total_power: sig + params.clear_threshold_for(r) * 2.0,
            ..clear
        };
        assert!(!noisy.is_clear(&params, r));
    }

    #[test]
    fn observation_from_outcome() {
        let silent = ListenOutcome::SILENT;
        let obs: Observation<u8> = Observation::from_outcome(&silent, |_| unreachable!());
        assert!(matches!(obs, Observation::Noise { total_power } if total_power == 0.0));

        let decoded = ListenOutcome {
            decoded: Some(3),
            signal: 2.0,
            sinr: 5.0,
            total_power: 2.2,
        };
        let obs: Observation<u8> = Observation::from_outcome(&decoded, |i| {
            assert_eq!(i, 3);
            (NodeId(9), 42)
        });
        let rec = obs.reception().unwrap();
        assert_eq!(rec.from, NodeId(9));
        assert_eq!(rec.msg, 42);
        assert_eq!(rec.signal, 2.0);
    }
}
