//! Identifier newtypes: nodes and channels.

use std::fmt;

/// Unique identifier of a network node (its index in the deployment).
///
/// The paper assumes nodes have unique IDs (§2); the simulator uses the
/// deployment index, which protocols treat as an opaque comparable ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node index exceeds u32"))
    }
}

/// One of the `F` non-overlapping communication channels, 0-based.
///
/// The paper's channel `F_i` is `Channel(i - 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Channel(pub u16);

impl Channel {
    /// The first channel (`F₁` in the paper) — control/dominator channel.
    pub const FIRST: Channel = Channel(0);

    /// The channel index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl From<u16> for Channel {
    fn from(v: u16) -> Self {
        Channel(v)
    }
}

impl From<usize> for Channel {
    fn from(v: usize) -> Self {
        Channel(u16::try_from(v).expect("channel index exceeds u16"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id: NodeId = 5usize.into();
        assert_eq!(id, NodeId(5));
        assert_eq!(id.index(), 5);
        assert_eq!(format!("{id}"), "n5");
    }

    #[test]
    fn channel_roundtrip() {
        let c: Channel = 3usize.into();
        assert_eq!(c, Channel(3));
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c}"), "ch3");
        assert_eq!(Channel::FIRST, Channel(0));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(Channel(0) < Channel(1));
    }

    #[test]
    #[should_panic(expected = "channel index exceeds u16")]
    fn oversized_channel_panics() {
        let _: Channel = (1usize << 20).into();
    }
}
