//! Deterministic per-node randomness.
//!
//! Every node gets an independent RNG stream derived from the experiment's
//! master seed and its node id, so whole experiments replay bit-for-bit
//! from a single seed while nodes stay statistically independent.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a high-quality 64→64 bit mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a stream seed from a master seed and a salt (node id, phase tag…).
pub fn derive_seed(master: u64, salt: u64) -> u64 {
    mix64(master ^ mix64(salt.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// Derives an independent RNG for stream `salt` of `master`.
pub fn derive_rng(master: u64, salt: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, salt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let mut a = derive_rng(1, 2);
        let mut b = derive_rng(1, 2);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = derive_rng(1, 2);
        let mut b = derive_rng(1, 3);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn seeds_well_spread() {
        let seeds: HashSet<u64> = (0..10_000u64).map(|i| derive_seed(42, i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn mix64_not_identity_on_zero() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }
}
