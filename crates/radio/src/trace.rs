//! Optional event tracing for debugging and invariant experiments.

use crate::ids::{Channel, NodeId};
use std::collections::VecDeque;

/// One successful decode, as seen by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Slot in which the reception happened.
    pub slot: u64,
    /// Channel it happened on.
    pub channel: Channel,
    /// Transmitter.
    pub from: NodeId,
    /// Listener that decoded.
    pub to: NodeId,
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// When full, the oldest events are dropped — tracing never grows without
/// bound even in very long runs.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    total_recorded: u64,
}

impl TraceRecorder {
    /// A recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceRecorder {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total_recorded: 0,
        }
    }

    /// Records an event, evicting the oldest if at capacity.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ev);
        self.total_recorded += 1;
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(slot: u64) -> TraceEvent {
        TraceEvent {
            slot,
            channel: Channel(0),
            from: NodeId(1),
            to: NodeId(2),
        }
    }

    #[test]
    fn records_in_order() {
        let mut t = TraceRecorder::new(10);
        t.record(ev(1));
        t.record(ev(2));
        let slots: Vec<u64> = t.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![1, 2]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut t = TraceRecorder::new(2);
        t.record(ev(1));
        t.record(ev(2));
        t.record(ev(3));
        let slots: Vec<u64> = t.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![2, 3]);
        assert_eq!(t.total_recorded(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        TraceRecorder::new(0);
    }
}
