//! Optional event tracing for debugging and invariant experiments.

use crate::ids::{Channel, NodeId};
use std::collections::VecDeque;
use std::ops::RangeBounds;

/// One successful decode, as seen by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Slot in which the reception happened.
    pub slot: u64,
    /// Channel it happened on.
    pub channel: Channel,
    /// Transmitter.
    pub from: NodeId,
    /// Listener that decoded.
    pub to: NodeId,
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// When full, the oldest events are dropped — tracing never grows without
/// bound even in very long runs.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    total_recorded: u64,
}

impl TraceRecorder {
    /// A recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceRecorder {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total_recorded: 0,
        }
    }

    /// Records an event, evicting the oldest if at capacity.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ev);
        self.total_recorded += 1;
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Retained events whose slot falls in `slots`, oldest first.
    /// Accepts any range form (`a..b`, `a..=b`, `..`, `a..`).
    pub fn events_in<'a, R: RangeBounds<u64> + 'a>(
        &'a self,
        slots: R,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| slots.contains(&e.slot))
    }

    /// Retained events on `channel`, oldest first.
    pub fn events_on(&self, channel: Channel) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.channel == channel)
    }

    /// Serializes the retained events as JSONL `"trace"` records in the
    /// versioned observability schema (see `mca-obs` and
    /// `docs/OBSERVABILITY.md`), oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&mca_obs::trace_line(e.slot, e.channel.0, e.from.0, e.to.0));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(slot: u64) -> TraceEvent {
        TraceEvent {
            slot,
            channel: Channel(0),
            from: NodeId(1),
            to: NodeId(2),
        }
    }

    #[test]
    fn records_in_order() {
        let mut t = TraceRecorder::new(10);
        t.record(ev(1));
        t.record(ev(2));
        let slots: Vec<u64> = t.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![1, 2]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut t = TraceRecorder::new(2);
        t.record(ev(1));
        t.record(ev(2));
        t.record(ev(3));
        let slots: Vec<u64> = t.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![2, 3]);
        assert_eq!(t.total_recorded(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        TraceRecorder::new(0);
    }

    fn ev_on(slot: u64, ch: u16) -> TraceEvent {
        TraceEvent {
            slot,
            channel: Channel(ch),
            from: NodeId(1),
            to: NodeId(2),
        }
    }

    #[test]
    fn events_in_filters_by_slot_range() {
        let mut t = TraceRecorder::new(10);
        for s in 0..5 {
            t.record(ev(s));
        }
        let slots: Vec<u64> = t.events_in(1..3).map(|e| e.slot).collect();
        assert_eq!(slots, vec![1, 2]);
        let slots: Vec<u64> = t.events_in(3..=4).map(|e| e.slot).collect();
        assert_eq!(slots, vec![3, 4]);
        assert_eq!(t.events_in(..).count(), 5);
    }

    #[test]
    fn events_on_filters_by_channel() {
        let mut t = TraceRecorder::new(10);
        t.record(ev_on(0, 0));
        t.record(ev_on(1, 3));
        t.record(ev_on(2, 3));
        let slots: Vec<u64> = t.events_on(Channel(3)).map(|e| e.slot).collect();
        assert_eq!(slots, vec![1, 2]);
        assert_eq!(t.events_on(Channel(9)).count(), 0);
    }

    #[test]
    fn jsonl_export_matches_schema() {
        let mut t = TraceRecorder::new(4);
        t.record(ev_on(7, 2));
        t.record(ev_on(8, 0));
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"v\":1,\"t\":\"trace\",\"slot\":7,\"ch\":2,\"from\":1,\"to\":2}"
        );
        for line in lines {
            mca_obs::validate_jsonl_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
    }
}
