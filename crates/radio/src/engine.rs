//! The synchronous multi-channel simulation engine.
//!
//! One [`Engine::step`] is one slot: every live node picks an action
//! (transmit/listen/idle on a channel of its choice); the engine resolves
//! each channel independently under the SINR rule and hands every node its
//! observation. Nodes on different channels never interact — the defining
//! property of the multi-channel model.

use crate::condition::ChannelCondition;
use crate::detect::{DegradationDetector, DetectionEvent};
use crate::events::{EventWatch, NodeEvent};
use crate::fault::FaultPlan;
use crate::ids::{Channel, NodeId};
use crate::message::{Action, Observation};
use crate::metrics::Metrics;
use crate::node::Protocol;
use crate::rng::derive_rng;
use crate::shard::ShardMap;
use crate::trace::{TraceEvent, TraceRecorder};
use mca_geom::{BoundingBox, Point};
use mca_obs::{ChannelSlotRecord, SpanKind, Stopwatch};
use mca_sinr::{ChannelResolver, ListenOutcome, ResolverCache, SinrParams};
use rand::rngs::SmallRng;
use rayon::prelude::*;
use std::sync::OnceLock;

/// Shards per axis forced by `MCA_FORCE_PAR=1` when the caller left
/// sharding off.
const FORCED_SHARDS: u16 = 4;

/// Whether `MCA_FORCE_PAR=1` is set: the CI determinism override that
/// forces `par_channels`, `par_shards`, and (when unset) an
/// [`FORCED_SHARDS`]-way shard grid on, so the whole test suite and the
/// golden trial metrics re-run under maximum fan-out. Sound because every
/// parallel and sharded path is bit-identical to the sequential engine.
fn force_par() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var("MCA_FORCE_PAR").is_ok_and(|v| v == "1"))
}

/// The simulation engine driving one protocol instance per node.
///
/// # Examples
///
/// ```
/// use mca_radio::{Action, Channel, Engine, Observation, Protocol};
/// use mca_geom::Point;
/// use mca_sinr::SinrParams;
/// use rand::rngs::SmallRng;
///
/// struct Beacon { heard: bool, id: u32 }
/// impl Protocol for Beacon {
///     type Msg = u32;
///     fn act(&mut self, _s: u64, _r: &mut SmallRng) -> Action<u32> {
///         if self.id == 0 {
///             Action::Transmit { channel: Channel::FIRST, msg: 7 }
///         } else {
///             Action::Listen { channel: Channel::FIRST }
///         }
///     }
///     fn observe(&mut self, _s: u64, obs: Observation<u32>, _r: &mut SmallRng) {
///         if obs.reception().is_some() { self.heard = true; }
///     }
/// }
///
/// let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
/// let protocols = vec![Beacon { heard: false, id: 0 }, Beacon { heard: false, id: 1 }];
/// let mut engine = Engine::new(SinrParams::default(), positions, protocols, 42);
/// engine.step();
/// assert!(engine.protocols()[1].heard);
/// ```
pub struct Engine<P: Protocol> {
    params: SinrParams,
    positions: Vec<Point>,
    protocols: Vec<P>,
    rngs: Vec<SmallRng>,
    slot: u64,
    metrics: Metrics,
    faults: FaultPlan,
    conditions: Vec<ChannelCondition>,
    trace: Option<TraceRecorder>,
    watch: Option<EventWatch>,
    /// SINR degradation detector ([`Engine::attach_detector`]). Like the
    /// obs recorder, it only observes delivery outcomes — attaching one
    /// never changes a bit of the simulation.
    detector: Option<DegradationDetector>,
    /// Observability recorder ([`Engine::attach_obs`]). `None` costs one
    /// predictable branch per phase; with the `obs` feature off the
    /// recorder is a zero-sized no-op either way. Recording never feeds
    /// back into simulation state, so outcomes are bit-identical with or
    /// without it.
    obs: Option<mca_obs::Recorder>,
    /// Last reported totals of per-channel resolver-cache rebuilds and
    /// rebuild nanoseconds (the `resolver_cache_builds` /
    /// `resolver_cache_build_ns` counters record per-slot deltas).
    obs_cache_builds: (u64, u64),
    par_channels: bool,
    par_shards: bool,
    shards: u16,
    shard_state: Option<ShardState>,
    // Scratch buffers reused across steps: `groups` is dense (index =
    // channel), so iteration order is the channel order — deterministic,
    // no hashing — and `active` lists the channels touched this slot so
    // clearing is O(channels in use), not O(max channel).
    actions: Vec<SlotAction<P::Msg>>,
    groups: Vec<ChannelGroup>,
    active: Vec<u16>,
    /// Counting-sort scratch for the per-channel shard bucketing
    /// (`S² + 1` counters).
    shard_counts: Vec<u32>,
}

/// Engine-internal shard partition state: the map itself plus the event
/// watch that feeds it incremental reassignments (motion beyond a quarter
/// shard, joins). Assignment staleness below the watch threshold is
/// harmless — the partition is a locality hint, not a physics input (see
/// [`crate::shard`]).
struct ShardState {
    map: ShardMap,
    watch: EventWatch,
}

/// Internal, flattened per-node action for one slot.
enum SlotAction<M> {
    Tx(Channel, M),
    Rx(Channel),
    Off,
}

/// Per-channel scratch for one slot. The position, outcome, and shard
/// bucketing buffers are reused across slots; Phase 2b additionally
/// builds three small per-slot vectors (the channel/params list, the
/// resolver work views, and the flattened unit list — O(listening
/// channels + units), dwarfed by the resolve work), and the parallel
/// path's `collect` allocates once per slot. The resolver `cache`
/// persists *across* slots: its spatial index is rebuilt only when the
/// channel's staged transmitter positions actually change (static worlds
/// build it once).
#[derive(Default)]
struct ChannelGroup {
    tx: Vec<u32>,
    rx: Vec<u32>,
    tx_pos: Vec<Point>,
    rx_pos: Vec<Point>,
    outcomes: Vec<ListenOutcome>,
    cond: ChannelCondition,
    jam: f64,
    /// Listener indices (into `rx`) grouped shard-major; identity order
    /// when the channel resolves as a single unit.
    shard_rx: Vec<u32>,
    /// Half-open ranges into `shard_rx`, one per resolve unit, in shard-id
    /// order.
    unit_ranges: Vec<(u32, u32)>,
    /// Persistent spatial-index cache (survives `clear`).
    cache: ResolverCache,
}

impl ChannelGroup {
    fn clear(&mut self) {
        self.tx.clear();
        self.rx.clear();
        self.tx_pos.clear();
        self.rx_pos.clear();
        self.outcomes.clear();
        self.shard_rx.clear();
        self.unit_ranges.clear();
        self.cond = ChannelCondition::CLEAR;
        self.jam = 0.0;
        // `cache` deliberately survives: it re-validates itself against the
        // next slot's staged transmitter positions.
    }

    fn is_idle(&self) -> bool {
        self.tx.is_empty() && self.rx.is_empty()
    }
}

impl<P: Protocol> Engine<P> {
    /// Creates an engine over `positions` with one protocol per node.
    ///
    /// Each node receives an independent RNG stream derived from
    /// `master_seed`, so a run is a pure function of
    /// `(params, positions, protocols, master_seed, faults)`.
    ///
    /// # Panics
    ///
    /// Panics if `positions` and `protocols` differ in length.
    pub fn new(
        params: SinrParams,
        positions: Vec<Point>,
        protocols: Vec<P>,
        master_seed: u64,
    ) -> Self {
        assert_eq!(
            positions.len(),
            protocols.len(),
            "one protocol per position required"
        );
        let rngs = (0..positions.len())
            .map(|i| derive_rng(master_seed, i as u64))
            .collect();
        let force = force_par();
        Engine {
            params,
            positions,
            protocols,
            rngs,
            slot: 0,
            metrics: Metrics::new(),
            faults: FaultPlan::none(),
            conditions: Vec::new(),
            trace: None,
            watch: None,
            detector: None,
            obs: None,
            obs_cache_builds: (0, 0),
            par_channels: force,
            par_shards: force,
            shards: if force { FORCED_SHARDS } else { 0 },
            shard_state: None,
            actions: Vec::new(),
            groups: Vec::new(),
            active: Vec::new(),
            shard_counts: Vec::new(),
        }
    }

    /// Installs a fault plan (builder-style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables (or disables) parallel resolution of the per-slot channel
    /// groups (builder-style). Channels never interact within a slot, so
    /// a parallel run is bit-identical to a sequential one — the engine
    /// resolves groups concurrently but always delivers observations in
    /// channel order. Under `MCA_FORCE_PAR=1` the flag is forced on.
    pub fn with_par_channels(mut self, par: bool) -> Self {
        self.par_channels = par || force_par();
        self
    }

    /// Whether channel groups resolve in parallel.
    pub fn par_channels(&self) -> bool {
        self.par_channels
    }

    /// Partitions the plane into an `s × s` grid of shards (builder-style;
    /// `0` or `1` disables sharding). Each channel's listeners are grouped
    /// by shard and resolved as independent (channel × shard) units with a
    /// deterministic shard-major merge — **bit-identical to the unsharded
    /// sequential engine for any `s`**, because per-listener outcomes are
    /// pure functions of the channel's transmitter set (see
    /// [`crate::shard`]). The shard assignment is maintained incrementally
    /// from the engine's own lifecycle events rather than rebuilt per
    /// slot. Under `MCA_FORCE_PAR=1`, leaving sharding off forces a
    /// 4-way grid instead.
    ///
    /// # Panics
    ///
    /// Panics if `s` exceeds [`crate::shard::MAX_SHARDS_PER_AXIS`].
    pub fn with_shards(mut self, s: u16) -> Self {
        assert!(
            s <= crate::shard::MAX_SHARDS_PER_AXIS,
            "shard count per axis must be at most {}, got {s}",
            crate::shard::MAX_SHARDS_PER_AXIS
        );
        self.shards = if force_par() && s < 2 {
            FORCED_SHARDS
        } else {
            s
        };
        self.shard_state = None;
        self
    }

    /// Shards per axis (0 or 1 = sharding disabled).
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// Enables (or disables) parallel resolution of the per-slot
    /// (channel × shard) units (builder-style) — a finer grain than
    /// [`Engine::with_par_channels`], which fans out whole channels and
    /// resolves each channel's units in order inside its worker. Like
    /// every execution knob, bit-identical to sequential execution; with
    /// sharding disabled the units are whole channels, so the flag
    /// degenerates to `par_channels`. Under `MCA_FORCE_PAR=1` the flag
    /// is forced on.
    pub fn with_par_shards(mut self, par: bool) -> Self {
        self.par_shards = par || force_par();
        self
    }

    /// Whether shard units resolve in parallel.
    pub fn par_shards(&self) -> bool {
        self.par_shards
    }

    /// The current shard partition, if sharding is enabled and the first
    /// slot has run (the map is built lazily from the first slot's
    /// positions).
    pub fn shard_map(&self) -> Option<&ShardMap> {
        self.shard_state.as_ref().map(|s| &s.map)
    }

    /// The fault plan in force.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Mutable access to the fault plan — lets an environment model inject
    /// churn (crashes, late joins) while the run is in progress.
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// The dynamic per-channel conditions (empty = every channel clear).
    pub fn channel_conditions(&self) -> &[ChannelCondition] {
        &self.conditions
    }

    /// Mutable access to the per-channel conditions. An environment model
    /// rewrites these between slots; index `i` governs channel `i`, and
    /// channels past the end of the vector are clear.
    pub fn channel_conditions_mut(&mut self) -> &mut Vec<ChannelCondition> {
        &mut self.conditions
    }

    /// Split borrow of everything a dynamic environment may mutate between
    /// slots: node positions, per-channel conditions, and the fault plan.
    /// One call, so an environment model can hold all three at once.
    pub fn env_parts(&mut self) -> (&mut [Point], &mut Vec<ChannelCondition>, &mut FaultPlan) {
        (&mut self.positions, &mut self.conditions, &mut self.faults)
    }

    /// Enables reception tracing, retaining at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceRecorder::new(capacity));
    }

    /// Starts watching node lifecycle transitions: every subsequent
    /// [`Engine::step`] detects crashes, joins, and motion beyond
    /// `move_threshold` (Euclidean drift from the last reported anchor) and
    /// queues them as [`NodeEvent`]s for [`Engine::drain_events`].
    ///
    /// Presence is anchored at the current slot, so only transitions *after*
    /// the call are reported — a maintainer that bootstrapped its own view
    /// of the initial world sees exactly the changes it missed.
    ///
    /// # Panics
    ///
    /// Panics if `move_threshold` is not positive and finite.
    pub fn watch_events(&mut self, move_threshold: f64) {
        let slot = self.slot;
        // Lifecycle presence only: a duty-cycled node napping through this
        // slot is still a member (it returns with state), so sleep phases
        // never masquerade as crash/join churn in the event stream.
        let present: Vec<bool> = (0..self.positions.len())
            .map(|i| !self.faults.is_lifecycle_absent(i as u32, slot))
            .collect();
        self.watch = Some(EventWatch::new(
            present,
            self.positions.clone(),
            move_threshold,
        ));
    }

    /// Takes all [`NodeEvent`]s queued since the last drain (empty unless
    /// [`Engine::watch_events`] was enabled). Events appear in observation
    /// order: by slot, and within a slot by node id.
    pub fn drain_events(&mut self) -> Vec<NodeEvent> {
        self.watch
            .as_mut()
            .map(EventWatch::drain)
            .unwrap_or_default()
    }

    /// Number of queued (undrained) events.
    pub fn pending_events(&self) -> usize {
        self.watch.as_ref().map_or(0, EventWatch::pending)
    }

    /// Attaches a SINR degradation detector: every subsequent
    /// [`Engine::step`] folds each contested listen outcome (a listen on a
    /// channel with at least one transmitter) into the detector's per-node
    /// health scores, queueing [`DetectionEvent`]s for
    /// [`Engine::drain_detections`]. Detection is observation only —
    /// outcomes, metrics, and RNG draws are bit-identical with or without
    /// a detector attached.
    pub fn attach_detector(&mut self, detector: DegradationDetector) {
        self.detector = Some(detector);
    }

    /// The attached degradation detector, if any.
    pub fn detector(&self) -> Option<&DegradationDetector> {
        self.detector.as_ref()
    }

    /// Mutable access to the attached degradation detector.
    pub fn detector_mut(&mut self) -> Option<&mut DegradationDetector> {
        self.detector.as_mut()
    }

    /// Takes all [`DetectionEvent`]s queued since the last drain (empty
    /// unless a detector is attached).
    pub fn drain_detections(&mut self) -> Vec<DetectionEvent> {
        self.detector
            .as_mut()
            .map(DegradationDetector::drain)
            .unwrap_or_default()
    }

    /// The trace recorder, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Attaches an observability recorder: every subsequent
    /// [`Engine::step`] records per-phase spans (gather, staging, each
    /// (channel × shard) resolve unit with its halo construction, merge,
    /// delivery, event drain), a per-channel outcome record per active
    /// channel, and resolver-cache counters. Requires the `obs` cargo
    /// feature for real data — without it the recorder is a no-op and
    /// attaching is harmless. Recording is observation only: trial
    /// outcomes are bit-identical with or without a recorder, under any
    /// execution schedule.
    pub fn attach_obs(&mut self, rec: mca_obs::Recorder) {
        self.obs = Some(rec);
    }

    /// The observability recorder, if one is attached.
    pub fn obs(&self) -> Option<&mca_obs::Recorder> {
        self.obs.as_ref()
    }

    /// Mutable access to the attached observability recorder.
    pub fn obs_mut(&mut self) -> Option<&mut mca_obs::Recorder> {
        self.obs.as_mut()
    }

    /// Detaches and returns the observability recorder.
    pub fn take_obs(&mut self) -> Option<mca_obs::Recorder> {
        self.obs.take()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the engine has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The global slot counter (slots executed so far).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Physical parameters in force.
    pub fn params(&self) -> &SinrParams {
        &self.params
    }

    /// Node positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Mutable node positions — mobility models move nodes between slots.
    /// The SINR layer reads positions fresh every slot, so moving a node
    /// takes effect at the next [`Engine::step`].
    pub fn positions_mut(&mut self) -> &mut [Point] {
        &mut self.positions
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The per-node protocol states.
    pub fn protocols(&self) -> &[P] {
        &self.protocols
    }

    /// Mutable access to protocol states (for harness-driven phase stitching).
    pub fn protocols_mut(&mut self) -> &mut [P] {
        &mut self.protocols
    }

    /// Consumes the engine, returning the protocol states.
    pub fn into_protocols(self) -> Vec<P> {
        self.protocols
    }

    /// Whether every node's protocol reports done.
    pub fn all_done(&self) -> bool {
        self.protocols.iter().all(|p| p.is_done())
    }

    /// Dense-group accessor: grows the vec to cover `ch` and records the
    /// first touch of each channel this slot in `active`.
    fn touch<'g>(
        groups: &'g mut Vec<ChannelGroup>,
        active: &mut Vec<u16>,
        ch: u16,
    ) -> &'g mut ChannelGroup {
        if groups.len() <= ch as usize {
            groups.resize_with(ch as usize + 1, ChannelGroup::default);
        }
        let group = &mut groups[ch as usize];
        if group.is_idle() {
            active.push(ch);
        }
        group
    }

    /// Phase 2b: stage each active channel's listener partition and
    /// resolve all (channel × shard) units, sequentially or in parallel —
    /// bit-identical either way, and for any shard count (see
    /// [`Engine::with_shards`]).
    fn resolve_active_channels(&mut self) {
        // Stage the listener partition: shard-major bucketing (counting
        // sort, reused scratch) where sharding engages, identity order
        // otherwise. Outcome buffers are pre-sized for the merge.
        let shard_map = self.shard_state.as_ref().map(|s| &s.map);
        for &ch in &self.active {
            let group = &mut self.groups[ch as usize];
            if group.rx.is_empty() {
                continue;
            }
            group.outcomes.clear();
            group.outcomes.resize(group.rx.len(), ListenOutcome::SILENT);
            // The channel's grid is coarsened so units stay large enough
            // to amortize their scheduling overhead (execution-only: the
            // chosen grid never changes an outcome).
            let s_eff = shard_map
                .map(|m| crate::shard::effective_shards(m.shards(), group.rx.len()))
                .unwrap_or(1);
            match shard_map {
                Some(map) if s_eff >= 2 => {
                    let nshards = usize::from(s_eff) * usize::from(s_eff);
                    self.shard_counts.clear();
                    self.shard_counts.resize(nshards + 1, 0);
                    for &node in &group.rx {
                        self.shard_counts[usize::from(map.coarse_shard_of(node, s_eff)) + 1] += 1;
                    }
                    for sid in 0..nshards {
                        self.shard_counts[sid + 1] += self.shard_counts[sid];
                    }
                    for sid in 0..nshards {
                        let (s, e) = (self.shard_counts[sid], self.shard_counts[sid + 1]);
                        if s != e {
                            group.unit_ranges.push((s, e));
                        }
                    }
                    // Scatter, reusing the prefix sums as cursors.
                    group.shard_rx.resize(group.rx.len(), 0);
                    for (k, &node) in group.rx.iter().enumerate() {
                        let cursor =
                            &mut self.shard_counts[usize::from(map.coarse_shard_of(node, s_eff))];
                        group.shard_rx[*cursor as usize] = k as u32;
                        *cursor += 1;
                    }
                }
                _ => {
                    group.shard_rx.extend(0..group.rx.len() as u32);
                    group.unit_ranges.push((0, group.rx.len() as u32));
                }
            }
        }

        // The listening channels with their effective parameters (jamming
        // folds into the noise floor exactly as the scalar path did).
        // This list *is* the work list below — one `works` entry is built
        // per `chans` entry, from the same tuple — so the channel ↔
        // params pairing is structural, not maintained by parallel loops.
        let params = self.params;
        let mut chans: Vec<(u16, SinrParams)> = Vec::with_capacity(self.active.len());
        for &ch in &self.active {
            let group = &self.groups[ch as usize];
            if group.rx.is_empty() {
                continue;
            }
            let mut p = params;
            if group.jam > 0.0 {
                p.noise += group.jam;
            }
            chans.push((ch, p));
        }

        struct Work<'g> {
            resolver: ChannelResolver<'g>,
            rx_pos: &'g [Point],
            shard_rx: &'g [u32],
            unit_ranges: &'g [(u32, u32)],
            outcomes: &'g mut Vec<ListenOutcome>,
            extra: f64,
            sharded: bool,
        }

        let mut works: Vec<Work<'_>> = Vec::with_capacity(chans.len());
        let mut next_chan = chans.iter().peekable();
        for (ch, group) in self.groups.iter_mut().enumerate() {
            let Some(&(c, ref eff)) = next_chan.peek().copied() else {
                break;
            };
            if usize::from(c) != ch {
                continue;
            }
            next_chan.next();
            debug_assert!(!group.rx.is_empty(), "chans lists listening channels only");
            let ChannelGroup {
                tx_pos,
                rx_pos,
                shard_rx,
                unit_ranges,
                outcomes,
                cache,
                cond,
                ..
            } = group;
            let resolver = ChannelResolver::cached(eff, tx_pos, cache);
            let sharded = unit_ranges.len() > 1;
            works.push(Work {
                resolver,
                rx_pos,
                shard_rx,
                unit_ranges,
                outcomes,
                extra: cond.extra_interference,
                sharded,
            });
        }

        // Resolves one channel's units in place, in unit order.
        // `fan_out_listeners` lets the fully sequential engine use the
        // resolver's own listener-level parallelism on huge batches;
        // parallel callers pass `false` to avoid nested thread spawning.
        // With `timing` on, each unit's wall time (and halo-construction
        // share, where sharded) is pushed onto `timings` in unit order.
        fn resolve_work(
            w: &mut Work<'_>,
            fan_out_listeners: bool,
            timing: bool,
            timings: &mut Vec<(u32, u64, Option<u64>)>,
        ) {
            if w.sharded {
                for (ui, &(s, e)) in w.unit_ranges.iter().enumerate() {
                    let sw = Stopwatch::start_if(timing);
                    let ks = &w.shard_rx[s as usize..e as usize];
                    let sw_halo = Stopwatch::start_if(timing);
                    let bbox = BoundingBox::from_points(ks.iter().map(|&k| w.rx_pos[k as usize]))
                        .expect("resolve units are never empty");
                    let task = w.resolver.task(bbox);
                    let halo_ns = sw_halo.elapsed_ns();
                    for &k in ks {
                        w.outcomes[k as usize] = task.resolve(w.rx_pos[k as usize], w.extra);
                    }
                    if timing {
                        timings.push((ui as u32, sw.elapsed_ns(), Some(halo_ns)));
                    }
                }
            } else if fan_out_listeners {
                let sw = Stopwatch::start_if(timing);
                w.resolver.resolve_into(w.rx_pos, w.extra, w.outcomes);
                if timing {
                    timings.push((0, sw.elapsed_ns(), None));
                }
            } else {
                let sw = Stopwatch::start_if(timing);
                w.resolver
                    .resolve_into_sequential(w.rx_pos, w.extra, w.outcomes);
                if timing {
                    timings.push((0, sw.elapsed_ns(), None));
                }
            }
        }

        // Execution grain by flag: `par_shards` fans out every
        // (channel × shard) unit; `par_channels` alone fans out whole
        // channels (each channel's units resolved in order inside its
        // worker — shard units then only serve locality). All three
        // schedules are bit-identical. Unit timings, when a recorder is
        // attached, flow through the same deterministic channel-major /
        // shard-minor merge as the outcomes, so the recorded stream is
        // identical under every schedule (only the `ns` values differ).
        let timing = self.obs.is_some();
        // (channel, unit, wall ns, halo ns where the unit built one).
        let mut unit_timings: Vec<(u16, u32, u64, Option<u64>)> = Vec::new();
        let mut merge_span: Option<(u32, u64)> = None;
        let threads = rayon::current_num_threads() > 1;
        if self.par_shards && threads {
            // Flatten the units; channel-major, shard-minor — the
            // deterministic merge order.
            let mut units: Vec<(u32, u32)> = Vec::new();
            for (wi, w) in works.iter().enumerate() {
                for ui in 0..w.unit_ranges.len() {
                    units.push((wi as u32, ui as u32));
                }
            }
            let results: Vec<(Vec<ListenOutcome>, u64, u64)> = units
                .par_iter()
                .map(|&(wi, ui)| {
                    let sw = Stopwatch::start_if(timing);
                    let w = &works[wi as usize];
                    let (s, e) = w.unit_ranges[ui as usize];
                    let ks = &w.shard_rx[s as usize..e as usize];
                    let mut out = Vec::with_capacity(ks.len());
                    let mut halo_ns = 0;
                    if w.sharded {
                        let sw_halo = Stopwatch::start_if(timing);
                        let bbox =
                            BoundingBox::from_points(ks.iter().map(|&k| w.rx_pos[k as usize]))
                                .expect("resolve units are never empty");
                        let task = w.resolver.task(bbox);
                        halo_ns = sw_halo.elapsed_ns();
                        out.extend(
                            ks.iter()
                                .map(|&k| task.resolve(w.rx_pos[k as usize], w.extra)),
                        );
                    } else {
                        out.extend(
                            ks.iter()
                                .map(|&k| w.resolver.resolve(w.rx_pos[k as usize], w.extra)),
                        );
                    }
                    (out, sw.elapsed_ns(), halo_ns)
                })
                .collect();
            // Shard-major merge: unit outputs scatter to disjoint listener
            // slots, visited in the fixed unit order.
            let sw_merge = Stopwatch::start_if(timing);
            for (&(wi, ui), (out, _, _)) in units.iter().zip(&results) {
                let w = &mut works[wi as usize];
                let (s, e) = w.unit_ranges[ui as usize];
                for (j, &k) in w.shard_rx[s as usize..e as usize].iter().enumerate() {
                    w.outcomes[k as usize] = out[j];
                }
            }
            if timing {
                merge_span = Some((units.len() as u32, sw_merge.elapsed_ns()));
                for (&(wi, ui), &(_, unit_ns, halo_ns)) in units.iter().zip(&results) {
                    let halo = works[wi as usize].sharded.then_some(halo_ns);
                    unit_timings.push((chans[wi as usize].0, ui, unit_ns, halo));
                }
            }
        } else if self.par_channels && works.len() > 1 && threads {
            let timings: Vec<Vec<(u32, u64, Option<u64>)>> = works
                .into_par_iter()
                .map(|mut w| {
                    let mut ts = Vec::new();
                    resolve_work(&mut w, false, timing, &mut ts);
                    ts
                })
                .collect();
            if timing {
                for (wi, ts) in timings.iter().enumerate() {
                    for &(ui, ns, halo) in ts {
                        unit_timings.push((chans[wi].0, ui, ns, halo));
                    }
                }
            }
        } else {
            let mut ts = Vec::new();
            for (wi, w) in works.iter_mut().enumerate() {
                ts.clear();
                resolve_work(w, true, timing, &mut ts);
                for &(ui, ns, halo) in &ts {
                    unit_timings.push((chans[wi].0, ui, ns, halo));
                }
            }
        }
        if let Some(rec) = self.obs.as_mut() {
            let slot = self.slot;
            for (ch, ui, ns, halo) in unit_timings {
                rec.span(SpanKind::Unit, slot, u32::from(ch), ui, ns);
                if let Some(h) = halo {
                    rec.span(SpanKind::Halo, slot, u32::from(ch), ui, h);
                }
            }
            if let Some((nunits, ns)) = merge_span {
                rec.span(SpanKind::Merge, slot, nunits, 0, ns);
            }
        }
    }

    /// Executes one slot.
    pub fn step(&mut self) {
        let slot = self.slot;
        // Per-slot accounting baselines for the Phase-2 drift assertion.
        let listens0 = self.metrics.listens;
        let rx0 = self.metrics.receptions;
        let busy0 = self.metrics.busy_failures;
        let silent0 = self.metrics.silent_listens;

        // Observability: wall-clock phase spans, recorded only when a
        // recorder is attached (and compiled out entirely without the
        // `obs` feature). Timings are measurement, never simulation
        // input — outcomes cannot depend on them.
        let timing = self.obs.is_some();
        let sw_slot = Stopwatch::start_if(timing);
        let sw = Stopwatch::start_if(timing);

        // Lifecycle observation first: the slot's presence verdicts and the
        // (possibly environment-mutated) positions are what this slot runs
        // under, so transitions are reported at the slot they take effect.
        if let Some(watch) = self.watch.as_mut() {
            let faults = &self.faults;
            // Lifecycle view: duty-cycle sleep is not a crash (see
            // `watch_events`), so subscribers only hear real churn.
            watch.observe(slot, &self.positions, |i| {
                faults.is_lifecycle_absent(i as u32, slot)
            });
        }

        // Shard partition maintenance: build lazily from the first sharded
        // slot's positions, then piggyback on the engine's own lifecycle
        // events — a node is reassigned when it joins or drifts beyond a
        // quarter shard, not re-bucketed from scratch every slot.
        if self.shards >= 2 {
            let state = self.shard_state.get_or_insert_with(|| {
                let map = ShardMap::new(self.shards, &self.positions);
                let (w, h) = map.shard_size();
                let threshold = (w.min(h) / 4.0).max(1e-9);
                let present = (0..self.positions.len())
                    .map(|i| !self.faults.is_absent(i as u32, slot))
                    .collect();
                let watch = EventWatch::new(present, self.positions.clone(), threshold);
                ShardState { map, watch }
            });
            let faults = &self.faults;
            state
                .watch
                .observe(slot, &self.positions, |i| faults.is_absent(i as u32, slot));
            for event in state.watch.drain() {
                match event {
                    NodeEvent::Moved { node, to, .. } => state.map.reassign(node.0, to),
                    NodeEvent::Joined { node, .. } => {
                        state.map.reassign(node.0, self.positions[node.0 as usize])
                    }
                    // A crashed node stays silent; its stale assignment is
                    // never consulted and self-corrects on rejoin.
                    NodeEvent::Crashed { .. } => {}
                }
            }
        }

        self.actions.clear();
        for ch in self.active.drain(..) {
            self.groups[ch as usize].clear();
        }
        let drain_ns = sw.elapsed_ns();
        let sw = Stopwatch::start_if(timing);

        // Phase 1: gather actions. Absent (crashed or not-yet-joined) or
        // finished nodes stay silent.
        for i in 0..self.protocols.len() {
            let act = if self.faults.is_absent(i as u32, slot) || self.protocols[i].is_done() {
                SlotAction::Off
            } else {
                match self.protocols[i].act(slot, &mut self.rngs[i]) {
                    Action::Transmit { channel, msg } => SlotAction::Tx(channel, msg),
                    Action::Listen { channel } => SlotAction::Rx(channel),
                    Action::Idle => SlotAction::Off,
                }
            };
            match &act {
                SlotAction::Tx(ch, _) => {
                    self.metrics.record_tx(ch.index());
                    Self::touch(&mut self.groups, &mut self.active, ch.0)
                        .tx
                        .push(i as u32);
                }
                SlotAction::Rx(ch) => {
                    self.metrics.listens += 1;
                    Self::touch(&mut self.groups, &mut self.active, ch.0)
                        .rx
                        .push(i as u32);
                }
                SlotAction::Off => self.metrics.idles += 1,
            }
            self.actions.push(act);
        }

        // Deliver in ascending channel order (deterministic) regardless of
        // the order channels were first touched; also lets every loop below
        // visit only the active channels instead of the whole dense vec.
        self.active.sort_unstable();
        let gather_ns = sw.elapsed_ns();
        let sw = Stopwatch::start_if(timing);

        // Phase 2a: stage each active channel's inputs — transmitter and
        // listener positions (reused scratch), jamming, fading condition.
        for &ch in &self.active {
            let jam = self.faults.jam_power(ch, slot);
            let cond = self
                .conditions
                .get(ch as usize)
                .copied()
                .unwrap_or(ChannelCondition::CLEAR);
            let group = &mut self.groups[ch as usize];
            group.jam = jam;
            group.cond = cond;
            if group.rx.is_empty() {
                continue;
            }
            let ChannelGroup {
                tx,
                rx,
                tx_pos,
                rx_pos,
                ..
            } = group;
            tx_pos.extend(tx.iter().map(|&i| self.positions[i as usize]));
            rx_pos.extend(rx.iter().map(|&i| self.positions[i as usize]));
        }

        let stage_ns = sw.elapsed_ns();
        let sw = Stopwatch::start_if(timing);

        // Phase 2b: resolve every channel's receptions as (channel × shard)
        // units. Each listener's outcome is a pure function of its
        // channel's staged transmitter set, so how listeners are grouped —
        // one unit per channel, S² shard units, sequential or parallel —
        // never changes a bit; outcomes are merged shard-major into the
        // channel's listener-order buffer either way.
        self.resolve_active_channels();
        let resolve_ns = sw.elapsed_ns();
        let sw = Stopwatch::start_if(timing);

        // Phase 2c: deliver observations, in ascending channel order
        // (deterministic — the sorted active list replaces the old
        // HashMap's arbitrary order).
        for &ch in &self.active {
            let gi = ch as usize;
            if self.groups[gi].rx.is_empty() {
                continue;
            }
            // Per-channel outcome stream: metric deltas around this
            // channel's delivery, snapshotted outside the listener loop.
            let (rx0c, busy0c, env0c) = (
                self.metrics.receptions,
                self.metrics.busy_failures,
                self.metrics.env_drops,
            );
            for k in 0..self.groups[gi].rx.len() {
                let group = &self.groups[gi];
                let li = group.rx[k];
                let mut outcome = group.outcomes[k];
                // Deep fades (condition.drop) suppress decodes outright;
                // the energy was still sensed during resolution.
                if group.cond.drop && outcome.decoded.is_some() {
                    self.metrics.env_drops += 1;
                    outcome = ListenOutcome {
                        decoded: None,
                        signal: 0.0,
                        sinr: 0.0,
                        total_power: outcome.total_power,
                    };
                }
                // Zone jams destroy decodes at victims inside the blast
                // radius — a deep fade local to the listener.
                if outcome.decoded.is_some() && self.faults.zone_drop(group.rx_pos[k], ch, slot) {
                    self.metrics.env_drops += 1;
                    outcome = ListenOutcome {
                        decoded: None,
                        signal: 0.0,
                        sinr: 0.0,
                        total_power: outcome.total_power,
                    };
                }
                let obs = Observation::from_outcome(&outcome, |j| {
                    let sender = group.tx[j] as usize;
                    let msg = match &self.actions[sender] {
                        SlotAction::Tx(_, m) => m.clone(),
                        _ => unreachable!("decoded node was not transmitting"),
                    };
                    (NodeId(group.tx[j]), msg)
                });
                match &obs {
                    Observation::Received(r) => {
                        self.metrics.receptions += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.record(TraceEvent {
                                slot,
                                channel: Channel(gi as u16),
                                from: r.from,
                                to: NodeId(li),
                            });
                        }
                    }
                    Observation::Noise { total_power } => {
                        if *total_power > 0.0 {
                            self.metrics.busy_failures += 1;
                        } else {
                            self.metrics.silent_listens += 1;
                        }
                    }
                    _ => {}
                }
                // Contested listens feed the degradation detector: the
                // channel had a transmitter, so decode-or-not is evidence
                // about this listener's link health.
                if self.detector.is_some() && !self.groups[gi].tx.is_empty() {
                    let delivered = matches!(&obs, Observation::Received(_));
                    if let Some(det) = self.detector.as_mut() {
                        det.sample(li, slot, delivered);
                    }
                }
                self.protocols[li as usize].observe(slot, obs, &mut self.rngs[li as usize]);
            }
            // Transmitters learn nothing.
            for k in 0..self.groups[gi].tx.len() {
                let ti = self.groups[gi].tx[k] as usize;
                self.protocols[ti].observe(slot, Observation::Sent, &mut self.rngs[ti]);
            }
            if let Some(rec) = self.obs.as_mut() {
                rec.chan(ChannelSlotRecord {
                    slot,
                    channel: ch,
                    tx: self.groups[gi].tx.len() as u32,
                    listens: self.groups[gi].rx.len() as u32,
                    rx: (self.metrics.receptions - rx0c) as u32,
                    busy: (self.metrics.busy_failures - busy0c) as u32,
                    env: (self.metrics.env_drops - env0c) as u32,
                });
            }
        }

        // Idle nodes get a sleep observation so state machines can advance.
        // Absent nodes (crashed or not yet joined) observe nothing at all.
        for i in 0..self.actions.len() {
            if matches!(self.actions[i], SlotAction::Off)
                && !self.faults.is_absent(i as u32, slot)
                && !self.protocols[i].is_done()
            {
                self.protocols[i].observe(slot, Observation::Slept, &mut self.rngs[i]);
            }
        }

        // Transmitters on channels nobody listened to still need feedback.
        for &ch in &self.active {
            let gi = ch as usize;
            if self.groups[gi].rx.is_empty() {
                for k in 0..self.groups[gi].tx.len() {
                    let ti = self.groups[gi].tx[k] as usize;
                    self.protocols[ti].observe(slot, Observation::Sent, &mut self.rngs[ti]);
                }
                // Transmit-only channels still appear in the outcome
                // stream (zero listeners, zero decodes).
                if let Some(rec) = self.obs.as_mut() {
                    rec.chan(ChannelSlotRecord {
                        slot,
                        channel: ch,
                        tx: self.groups[gi].tx.len() as u32,
                        listens: 0,
                        rx: 0,
                        busy: 0,
                        env: 0,
                    });
                }
            }
        }

        self.slot += 1;
        self.metrics.slots += 1;

        if let Some(rec) = self.obs.as_mut() {
            let deliver_ns = sw.elapsed_ns();
            rec.span(SpanKind::EventDrain, slot, 0, 0, drain_ns);
            rec.span(SpanKind::Gather, slot, 0, 0, gather_ns);
            rec.span(SpanKind::Stage, slot, 0, 0, stage_ns);
            rec.span(
                SpanKind::Resolve,
                slot,
                self.active.len() as u32,
                0,
                resolve_ns,
            );
            rec.span(SpanKind::Deliver, slot, 0, 0, deliver_ns);
            rec.span(SpanKind::Slot, slot, 0, 0, sw_slot.elapsed_ns());
            let builds: u64 = self.groups.iter().map(|g| g.cache.builds()).sum();
            let build_ns: u64 = self.groups.iter().map(|g| g.cache.build_ns()).sum();
            rec.add("resolver_cache_builds", builds - self.obs_cache_builds.0);
            rec.add(
                "resolver_cache_build_ns",
                build_ns - self.obs_cache_builds.1,
            );
            self.obs_cache_builds = (builds, build_ns);
        }

        // Every listen slot must be accounted exactly once — guards the
        // resolver swap against silent miscounting.
        debug_assert_eq!(
            (self.metrics.receptions - rx0)
                + (self.metrics.busy_failures - busy0)
                + (self.metrics.silent_listens - silent0),
            self.metrics.listens - listens0,
            "per-slot reception accounting drifted (slot {slot})"
        );
    }

    /// Executes exactly `slots` slots.
    pub fn run(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }

    /// Steps until every protocol is done or `max_slots` is reached.
    /// Returns `true` if all protocols finished.
    pub fn run_until_done(&mut self, max_slots: u64) -> bool {
        while self.slot < max_slots {
            if self.all_done() {
                return true;
            }
            self.step();
        }
        self.all_done()
    }

    /// Steps until `pred(protocols)` holds or `max_slots` is reached.
    /// Returns `true` if the predicate became true.
    pub fn run_until<F: FnMut(&[P]) -> bool>(&mut self, max_slots: u64, mut pred: F) -> bool {
        while self.slot < max_slots {
            if pred(&self.protocols) {
                return true;
            }
            self.step();
        }
        pred(&self.protocols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{JamSpec, ZoneJam};

    /// Transmits `msg` on `channel` in every slot.
    struct Talker {
        channel: Channel,
        msg: u32,
    }
    impl Protocol for Talker {
        type Msg = u32;
        fn act(&mut self, _s: u64, _r: &mut SmallRng) -> Action<u32> {
            Action::Transmit {
                channel: self.channel,
                msg: self.msg,
            }
        }
        fn observe(&mut self, _s: u64, obs: Observation<u32>, _r: &mut SmallRng) {
            assert!(
                matches!(obs, Observation::Sent),
                "transmitters learn nothing"
            );
        }
    }

    /// Listens on `channel`, recording every decode.
    struct Ear {
        channel: Channel,
        heard: Vec<(NodeId, u32)>,
        noise_slots: u32,
    }
    impl Ear {
        fn new(channel: Channel) -> Self {
            Ear {
                channel,
                heard: Vec::new(),
                noise_slots: 0,
            }
        }
    }
    impl Protocol for Ear {
        type Msg = u32;
        fn act(&mut self, _s: u64, _r: &mut SmallRng) -> Action<u32> {
            Action::Listen {
                channel: self.channel,
            }
        }
        fn observe(&mut self, _s: u64, obs: Observation<u32>, _r: &mut SmallRng) {
            match obs {
                Observation::Received(r) => self.heard.push((r.from, r.msg)),
                Observation::Noise { .. } => self.noise_slots += 1,
                _ => {}
            }
        }
    }

    /// Either Talker or Ear — engines are homogeneous in `P`.
    enum Role {
        Talk(Talker),
        Hear(Ear),
    }
    impl Protocol for Role {
        type Msg = u32;
        fn act(&mut self, s: u64, r: &mut SmallRng) -> Action<u32> {
            match self {
                Role::Talk(t) => t.act(s, r),
                Role::Hear(e) => e.act(s, r),
            }
        }
        fn observe(&mut self, s: u64, obs: Observation<u32>, r: &mut SmallRng) {
            match self {
                Role::Talk(t) => t.observe(s, obs, r),
                Role::Hear(e) => e.observe(s, obs, r),
            }
        }
    }

    fn two_node_setup(listener_channel: Channel) -> Engine<Role> {
        let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 99,
            }),
            Role::Hear(Ear::new(listener_channel)),
        ];
        Engine::new(SinrParams::default(), positions, protocols, 7)
    }

    #[test]
    fn same_channel_delivers() {
        let mut e = two_node_setup(Channel::FIRST);
        e.enable_trace(16);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard, vec![(NodeId(0), 99)]),
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().receptions, 1);
        assert_eq!(e.metrics().transmissions, 1);
        assert_eq!(e.trace().unwrap().len(), 1);
    }

    #[test]
    fn cross_channel_isolated() {
        // Listener on channel 1 hears nothing from a channel-0 transmitter —
        // not even noise (channels are non-overlapping).
        let mut e = two_node_setup(Channel(1));
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => {
                assert!(ear.heard.is_empty());
                assert_eq!(ear.noise_slots, 1);
            }
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().silent_listens, 1);
    }

    #[test]
    fn collision_blocks_decoding() {
        let positions = vec![
            Point::new(-2.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 0.0),
        ];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 1,
            }),
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 2,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7);
        e.step();
        match &e.protocols()[2] {
            Role::Hear(ear) => assert!(ear.heard.is_empty(), "equidistant colliders must jam"),
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().busy_failures, 1);
    }

    #[test]
    fn crashed_node_is_silent() {
        let mut e = two_node_setup(Channel::FIRST);
        let mut faults = FaultPlan::none();
        faults.crash_at(0, 0);
        e = Engine::new(
            SinrParams::default(),
            e.positions().to_vec(),
            vec![
                Role::Talk(Talker {
                    channel: Channel::FIRST,
                    msg: 99,
                }),
                Role::Hear(Ear::new(Channel::FIRST)),
            ],
            7,
        )
        .with_faults(faults);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert!(ear.heard.is_empty()),
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().transmissions, 0);
    }

    #[test]
    fn jamming_kills_marginal_link() {
        // Transmitter at distance 6 of R_T=8: decodes fine without jamming,
        // fails under a strong jammer.
        let positions = vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)];
        let mk = || {
            vec![
                Role::Talk(Talker {
                    channel: Channel::FIRST,
                    msg: 5,
                }),
                Role::Hear(Ear::new(Channel::FIRST)),
            ]
        };
        let mut clean = Engine::new(SinrParams::default(), positions.clone(), mk(), 7);
        clean.step();
        match &clean.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard.len(), 1),
            _ => unreachable!(),
        }

        let mut faults = FaultPlan::none();
        faults.jam(JamSpec::Fixed {
            channel: 0,
            from: 0,
            to: 100,
            power: 1000.0,
        });
        let mut jammed = Engine::new(SinrParams::default(), positions, mk(), 7).with_faults(faults);
        jammed.step();
        match &jammed.protocols()[1] {
            Role::Hear(ear) => assert!(ear.heard.is_empty()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn late_join_keeps_node_silent_until_slot() {
        let mut faults = FaultPlan::none();
        faults.join_at(0, 3);
        let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 42,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults);
        e.run(3);
        match &e.protocols()[1] {
            Role::Hear(ear) => assert!(ear.heard.is_empty(), "talker not yet joined"),
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().transmissions, 0);
        e.step(); // slot 3: joined
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard, vec![(NodeId(0), 42)]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn channel_condition_interference_kills_marginal_link() {
        // Same geometry as the jamming test: distance 6 of R_T = 8.
        let positions = vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 5,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7);
        e.channel_conditions_mut()
            .push(crate::ChannelCondition::interfered(1000.0));
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => {
                assert!(ear.heard.is_empty());
                assert_eq!(ear.noise_slots, 1, "interference is sensed, not silent");
            }
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().busy_failures, 1);
        assert_eq!(e.metrics().env_drops, 0);
    }

    #[test]
    fn channel_condition_drop_suppresses_decode() {
        let mut e = two_node_setup(Channel::FIRST);
        e.channel_conditions_mut()
            .push(crate::ChannelCondition::dropped(0.0));
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => {
                assert!(ear.heard.is_empty(), "deep fade drops the decode");
                assert_eq!(ear.noise_slots, 1, "energy still sensed");
            }
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().env_drops, 1);
        // Clearing the condition restores reception.
        e.channel_conditions_mut().clear();
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard, vec![(NodeId(0), 99)]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn moving_a_node_changes_reception() {
        let mut e = two_node_setup(Channel::FIRST);
        // Move the listener far out of range before the first slot.
        e.positions_mut()[1] = Point::new(500.0, 0.0);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert!(ear.heard.is_empty()),
            _ => unreachable!(),
        }
        // Move it back within range.
        e.positions_mut()[1] = Point::new(2.0, 0.0);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard, vec![(NodeId(0), 99)]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn runtime_crash_injection_via_faults_mut() {
        let mut e = two_node_setup(Channel::FIRST);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard.len(), 1),
            _ => unreachable!(),
        }
        let next = e.slot();
        e.faults_mut().crash_at(0, next);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard.len(), 1, "crashed mid-run"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut e = two_node_setup(Channel::FIRST);
            e.run(10);
            match &e.protocols()[1] {
                Role::Hear(ear) => ear.heard.clone(),
                _ => unreachable!(),
            }
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_done_stops_early() {
        struct OneShot {
            sent: bool,
        }
        impl Protocol for OneShot {
            type Msg = ();
            fn act(&mut self, _s: u64, _r: &mut SmallRng) -> Action<()> {
                Action::Idle
            }
            fn observe(&mut self, _s: u64, _o: Observation<()>, _r: &mut SmallRng) {
                self.sent = true;
            }
            fn is_done(&self) -> bool {
                self.sent
            }
        }
        let mut e = Engine::new(
            SinrParams::default(),
            vec![Point::ORIGIN],
            vec![OneShot { sent: false }],
            1,
        );
        assert!(e.run_until_done(100));
        assert!(e.slot() < 100, "should stop well before the cap");
    }

    /// Random multi-channel chatter recording every observation verbatim,
    /// floats included — the payload for bit-identity comparisons.
    struct Hopper {
        channels: u16,
        heard: Vec<(u64, u32, u64, f64, f64, f64)>,
        noise: Vec<(u64, f64)>,
    }
    impl Protocol for Hopper {
        type Msg = u64;
        fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<u64> {
            use rand::Rng;
            let ch = Channel(rng.gen_range(0..self.channels));
            if rng.gen_bool(0.4) {
                Action::Transmit {
                    channel: ch,
                    msg: slot,
                }
            } else {
                Action::Listen { channel: ch }
            }
        }
        fn observe(&mut self, slot: u64, obs: Observation<u64>, _r: &mut SmallRng) {
            match obs {
                Observation::Received(r) => {
                    self.heard
                        .push((slot, r.from.0, r.msg, r.signal, r.sinr, r.total_power))
                }
                Observation::Noise { total_power } => self.noise.push((slot, total_power)),
                _ => {}
            }
        }
    }

    fn hopper_net(n: usize, channels: u16, par: bool, params: SinrParams) -> Engine<Hopper> {
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        let side = (n as f64 / 4.0).sqrt() * 2.0;
        let positions: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect();
        let protocols = (0..n)
            .map(|_| Hopper {
                channels,
                heard: Vec::new(),
                noise: Vec::new(),
            })
            .collect();
        Engine::new(params, positions, protocols, 9).with_par_channels(par)
    }

    #[test]
    fn par_channels_bit_identical_to_sequential() {
        let run = |par: bool| {
            let mut e = hopper_net(80, 6, par, SinrParams::default());
            // Under MCA_FORCE_PAR=1 the flag is forced on; the comparison
            // below still checks the par path replays itself bit-for-bit.
            assert_eq!(e.par_channels(), par || force_par());
            e.run(120);
            let metrics = e.metrics().clone();
            let logs: Vec<_> = e
                .into_protocols()
                .into_iter()
                .map(|h| (h.heard, h.noise))
                .collect();
            (metrics, logs)
        };
        let (m_seq, l_seq) = run(false);
        let (m_par, l_par) = run(true);
        assert_eq!(m_seq, m_par);
        assert_eq!(
            l_seq, l_par,
            "parallel channel groups changed an observation"
        );
    }

    #[test]
    fn fast_resolve_mode_runs_through_the_engine() {
        use mca_sinr::ResolveMode;
        // Dense enough that every channel's transmitter set comfortably
        // exceeds the resolver's grid threshold (16), so the Fast grid
        // path — not its exact-scan fallback — is what runs.
        let mut e = hopper_net(
            400,
            2,
            true,
            SinrParams::default().with_resolve(ResolveMode::fast()),
        );
        e.run(50);
        let m = e.metrics();
        let tx_per_channel_slot = m.transmissions as f64 / (m.slots as f64 * 2.0);
        assert!(
            tx_per_channel_slot > 32.0,
            "workload too thin to exercise the grid: {tx_per_channel_slot:.1} tx/channel/slot"
        );
        // The per-slot accounting debug_assert in `step` has already
        // checked reception bookkeeping; sanity-check traffic flowed.
        assert!(m.listens > 0);
        assert!(m.receptions > 0);
    }

    #[test]
    fn sparse_channel_ids_use_dense_groups() {
        // A very large channel id must work (groups vec grows to cover it)
        // and keep delivering.
        let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel(900),
                msg: 5,
            }),
            Role::Hear(Ear::new(Channel(900))),
        ];
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7);
        e.run(3);
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard.len(), 3),
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().receptions, 3);
    }

    #[test]
    fn watch_surfaces_crash_join_and_motion() {
        let mut faults = FaultPlan::none();
        faults.crash_at(0, 2);
        faults.join_at(1, 3);
        let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 1,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults);
        e.watch_events(1.0);
        assert_eq!(e.pending_events(), 0);
        e.run(2); // slots 0, 1: no transitions
        assert_eq!(e.drain_events(), vec![]);
        e.step(); // slot 2: node 0 crashes
        assert_eq!(
            e.drain_events(),
            vec![NodeEvent::Crashed {
                node: NodeId(0),
                slot: 2
            }]
        );
        // Move node 1 past the threshold before its join: the Moved event
        // must not fire for an absent node, and the join re-anchors it.
        e.positions_mut()[1] = Point::new(5.0, 0.0);
        e.step(); // slot 3: node 1 joins at its new position
        let events = e.drain_events();
        assert_eq!(
            events,
            vec![NodeEvent::Joined {
                node: NodeId(1),
                slot: 3
            }]
        );
        // Now drift it: one Moved event per threshold crossing.
        e.positions_mut()[1] = Point::new(6.5, 0.0);
        e.step();
        let events = e.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0],
            NodeEvent::Moved {
                node: NodeId(1),
                slot: 4,
                from: Point::new(5.0, 0.0),
                to: Point::new(6.5, 0.0),
            }
        );
        assert_eq!(events[0].node(), NodeId(1));
        assert_eq!(events[0].slot(), 4);
        // Sub-threshold drift stays silent.
        e.positions_mut()[1] = Point::new(6.9, 0.0);
        e.step();
        assert_eq!(e.drain_events(), vec![]);
    }

    #[test]
    fn watch_is_opt_in_and_anchors_at_install() {
        let mut e = two_node_setup(Channel::FIRST);
        e.step();
        assert_eq!(e.drain_events(), vec![], "no watch installed");
        // Install mid-run, then inject a crash: only the post-install
        // transition is reported.
        e.watch_events(0.5);
        let next = e.slot();
        e.faults_mut().crash_at(0, next);
        e.step();
        assert_eq!(
            e.drain_events(),
            vec![NodeEvent::Crashed {
                node: NodeId(0),
                slot: next
            }]
        );
    }

    #[test]
    fn zone_jam_drops_only_inside_blast_radius() {
        // Talker at the origin, one ear in the blast zone, one outside.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(-2.0, 0.0),
        ];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 9,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut faults = FaultPlan::none();
        faults.zone_jam(ZoneJam {
            center: Point::new(2.0, 0.0),
            radius: 1.0,
            channel: None,
            from: 0,
            to: u64::MAX,
        });
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults);
        e.step();
        match (&e.protocols()[1], &e.protocols()[2]) {
            (Role::Hear(hit), Role::Hear(clear)) => {
                assert!(
                    hit.heard.is_empty(),
                    "victim inside the zone decodes nothing"
                );
                assert_eq!(hit.noise_slots, 1, "the energy is still sensed");
                assert_eq!(clear.heard.len(), 1, "outside the zone life goes on");
            }
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().env_drops, 1);
        assert_eq!(e.metrics().receptions, 1);
    }

    #[test]
    fn sleeping_node_is_silent_but_not_lifecycle_churn() {
        use crate::fault::SleepSchedule;
        let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 3,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut faults = FaultPlan::none();
        // Awake slots {0,1}, asleep {2,3}, awake again at 4.
        faults.sleep(
            0,
            SleepSchedule {
                period: 4,
                on: 2,
                phase: 0,
            },
        );
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults);
        e.watch_events(10.0);
        e.run(5);
        match &e.protocols()[1] {
            Role::Hear(ear) => {
                assert_eq!(ear.heard.len(), 3, "slots 0, 1, 4 deliver");
            }
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().transmissions, 3);
        assert_eq!(
            e.drain_events(),
            vec![],
            "duty-cycle sleep is not crash/join churn"
        );
    }

    #[test]
    fn detector_flags_zone_jammed_listener_then_recovers() {
        use crate::detect::{DegradationDetector, DetectionEvent, DetectorConfig};
        let mk = || {
            let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
            let protocols = vec![
                Role::Talk(Talker {
                    channel: Channel::FIRST,
                    msg: 1,
                }),
                Role::Hear(Ear::new(Channel::FIRST)),
            ];
            let mut faults = FaultPlan::none();
            // The jam arrives at slot 20 and lifts at slot 60.
            faults.zone_jam(ZoneJam {
                center: Point::new(2.0, 0.0),
                radius: 1.0,
                channel: None,
                from: 20,
                to: 60,
            });
            Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults)
        };
        let mut plain = mk();
        let mut watched = mk();
        watched.attach_detector(DegradationDetector::new(2, DetectorConfig::default()));
        plain.run(100);
        watched.run(100);
        assert_eq!(
            plain.metrics(),
            watched.metrics(),
            "detection is observation only"
        );
        let events = watched.drain_detections();
        assert_eq!(events.len(), 2, "{events:?}");
        match events[0] {
            DetectionEvent::Degraded {
                node, slot, since, ..
            } => {
                assert_eq!(node, NodeId(1));
                assert_eq!(since, 20, "onset pinned to the jam's arrival");
                assert!(slot < 40, "flagged well before the jam lifts");
            }
            _ => panic!("expected Degraded first"),
        }
        match events[1] {
            DetectionEvent::Recovered { node, slot, .. } => {
                assert_eq!(node, NodeId(1));
                assert!(slot >= 60, "recovery only after the jam lifts");
            }
            _ => panic!("expected Recovered second"),
        }
        assert!(!watched.detector().unwrap().is_flagged(1));
        assert!(watched.detector_mut().is_some());
    }

    #[test]
    #[should_panic(expected = "one protocol per position")]
    fn mismatched_lengths_panic() {
        let _ = Engine::new(
            SinrParams::default(),
            vec![Point::ORIGIN],
            Vec::<Role>::new(),
            1,
        );
    }

    #[test]
    fn obs_recorder_never_perturbs_outcomes() {
        let mut plain = two_node_setup(Channel::FIRST);
        let mut observed = two_node_setup(Channel::FIRST);
        observed.attach_obs(mca_obs::Recorder::new());
        plain.run(5);
        observed.run(5);
        assert_eq!(plain.metrics(), observed.metrics());
        assert!(observed.take_obs().is_some());
        assert!(observed.obs().is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_records_phase_spans_and_channel_stream() {
        use mca_obs::SpanKind;
        let mut e = two_node_setup(Channel::FIRST);
        e.attach_obs(mca_obs::Recorder::new());
        e.run(3);
        let rec = e.obs().unwrap();
        // Six phase spans per slot plus at least one unit span.
        let slots = rec
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Slot)
            .count();
        assert_eq!(slots, 3);
        assert!(rec.spans().iter().any(|s| s.kind == SpanKind::Unit));
        // One active channel per slot, everyone on Channel::FIRST.
        let chans = rec.channel_records();
        assert_eq!(chans.len(), 3);
        assert!(chans
            .iter()
            .all(|c| c.channel == 0 && c.tx == 1 && c.listens == 1));
        // Phase spans account for (nearly) the whole slot.
        let report = rec.report();
        assert!(report.slot_coverage().unwrap() > 0.5);
        // The JSONL dump validates against the schema.
        for line in rec.to_jsonl().lines() {
            mca_obs::validate_jsonl_line(line).unwrap_or_else(|err| panic!("{err}: {line}"));
        }
    }
}
