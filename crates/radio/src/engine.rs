//! The synchronous multi-channel simulation engine.
//!
//! One [`Engine::step`] is one slot: every live node picks an action
//! (transmit/listen/idle on a channel of its choice); the engine resolves
//! each channel independently under the SINR rule and hands every node its
//! observation. Nodes on different channels never interact — the defining
//! property of the multi-channel model.

use crate::condition::ChannelCondition;
use crate::detect::{DegradationDetector, DetectionEvent};
use crate::events::{EventWatch, NodeEvent};
use crate::fault::FaultPlan;
use crate::ids::{Channel, NodeId};
use crate::message::{Action, Observation};
use crate::metrics::Metrics;
use crate::node::Protocol;
use crate::rng::derive_rng;
use crate::shard::ShardMap;
use crate::trace::{TraceEvent, TraceRecorder};
use mca_geom::{BoundingBox, Point};
use mca_obs::{ChannelSlotRecord, SpanKind, Stopwatch};
use mca_sinr::{ChannelResolver, ListenOutcome, ResolverCache, SinrParams};
use rand::rngs::SmallRng;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

/// Shards per axis forced by `MCA_FORCE_PAR=1` when the caller left
/// sharding off.
const FORCED_SHARDS: u16 = 4;

/// Expected per-channel work volume (listeners × estimated power
/// evaluations per listener) below which a channel resolves inline on the
/// slot thread instead of being submitted to the pool or the channel
/// fan-out. A 16-channel 1000-node world puts ~1k pairs on each channel —
/// microseconds of work that the task handoff, latch, and scatter merge
/// would more than double; the threshold keeps such channels sequential
/// while 10k+-node channels (≥20k pairs) still fan out. Purely an
/// execution-schedule decision: inline and pooled resolution are
/// bit-identical, and `MCA_FORCE_PAR=1` overrides the gate so CI still
/// exercises maximum fan-out on tiny worlds.
pub const INLINE_CHANNEL_PAIRS: usize = 16_384;

/// Whether `MCA_FORCE_PAR=1` is set: the CI determinism override that
/// forces `par_channels`, `par_shards`, and (when unset) an
/// [`FORCED_SHARDS`]-way shard grid on, so the whole test suite and the
/// golden trial metrics re-run under maximum fan-out. Sound because every
/// parallel and sharded path is bit-identical to the sequential engine.
fn force_par() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var("MCA_FORCE_PAR").is_ok_and(|v| v == "1"))
}

/// The simulation engine driving one protocol instance per node.
///
/// # Examples
///
/// ```
/// use mca_radio::{Action, Channel, Engine, Observation, Protocol};
/// use mca_geom::Point;
/// use mca_sinr::SinrParams;
/// use rand::rngs::SmallRng;
///
/// struct Beacon { heard: bool, id: u32 }
/// impl Protocol for Beacon {
///     type Msg = u32;
///     fn act(&mut self, _s: u64, _r: &mut SmallRng) -> Action<u32> {
///         if self.id == 0 {
///             Action::Transmit { channel: Channel::FIRST, msg: 7 }
///         } else {
///             Action::Listen { channel: Channel::FIRST }
///         }
///     }
///     fn observe(&mut self, _s: u64, obs: Observation<u32>, _r: &mut SmallRng) {
///         if obs.reception().is_some() { self.heard = true; }
///     }
/// }
///
/// let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
/// let protocols = vec![Beacon { heard: false, id: 0 }, Beacon { heard: false, id: 1 }];
/// let mut engine = Engine::new(SinrParams::default(), positions, protocols, 42);
/// engine.step();
/// assert!(engine.protocols()[1].heard);
/// ```
pub struct Engine<P: Protocol> {
    params: SinrParams,
    positions: Vec<Point>,
    protocols: Vec<P>,
    rngs: Vec<SmallRng>,
    slot: u64,
    metrics: Metrics,
    faults: FaultPlan,
    conditions: Vec<ChannelCondition>,
    trace: Option<TraceRecorder>,
    watch: Option<EventWatch>,
    /// SINR degradation detector ([`Engine::attach_detector`]). Like the
    /// obs recorder, it only observes delivery outcomes — attaching one
    /// never changes a bit of the simulation.
    detector: Option<DegradationDetector>,
    /// Observability recorder ([`Engine::attach_obs`]). `None` costs one
    /// predictable branch per phase; with the `obs` feature off the
    /// recorder is a zero-sized no-op either way. Recording never feeds
    /// back into simulation state, so outcomes are bit-identical with or
    /// without it.
    obs: Option<mca_obs::Recorder>,
    /// Last reported totals of per-channel resolver-cache rebuilds and
    /// rebuild nanoseconds (the `resolver_cache_builds` /
    /// `resolver_cache_build_ns` counters record per-slot deltas).
    obs_cache_builds: (u64, u64),
    /// Last reported work-stealing pool totals (steals, tasks, parks) —
    /// the `pool_steals` / `pool_tasks` / `pool_parks` counters record
    /// per-slot deltas. The underlying stats are process-global, so with
    /// several engines stepping concurrently the deltas attribute the
    /// whole process's pool activity to whichever engine reads first;
    /// like span nanoseconds, they are measurement, never simulation
    /// input.
    obs_pool: (u64, u64, u64),
    par_channels: bool,
    par_shards: bool,
    shards: u16,
    shard_state: Option<ShardState>,
    // Scratch buffers reused across steps: `groups` is dense (index =
    // channel), so iteration order is the channel order — deterministic,
    // no hashing — and `active` lists the channels touched this slot so
    // clearing is O(channels in use), not O(max channel).
    actions: Vec<SlotAction<P::Msg>>,
    groups: Vec<ChannelGroup>,
    active: Vec<u16>,
    /// Counting-sort scratch for the per-channel shard bucketing
    /// (`S² + 1` counters).
    shard_counts: Vec<u32>,
}

/// Engine-internal shard partition state: the map itself plus the event
/// watch that feeds it incremental reassignments (motion beyond a quarter
/// shard, joins). Assignment staleness below the watch threshold is
/// harmless — the partition is a locality hint, not a physics input (see
/// [`crate::shard`]).
struct ShardState {
    map: ShardMap,
    watch: EventWatch,
}

/// Internal, flattened per-node action for one slot.
enum SlotAction<M> {
    Tx(Channel, M),
    Rx(Channel),
    Off,
}

/// Per-channel scratch for one slot. The position, outcome, and shard
/// bucketing buffers are reused across slots; Phase 2b additionally
/// builds three small per-slot vectors (the channel/params list, the
/// resolver work views, and the flattened unit list — O(listening
/// channels + units), dwarfed by the resolve work), and the parallel
/// path's `collect` allocates once per slot. The resolver `cache`
/// persists *across* slots: its spatial index is rebuilt only when the
/// channel's staged transmitter positions actually change (static worlds
/// build it once).
#[derive(Default)]
struct ChannelGroup {
    tx: Vec<u32>,
    rx: Vec<u32>,
    tx_pos: Vec<Point>,
    rx_pos: Vec<Point>,
    /// SoA transpose of `tx_pos`, staged in the same Phase 2a pass — the
    /// resolver's exact-path lane kernels consume these directly, so no
    /// per-slot transpose happens downstream.
    tx_xs: Vec<f64>,
    tx_ys: Vec<f64>,
    outcomes: Vec<ListenOutcome>,
    cond: ChannelCondition,
    jam: f64,
    /// Listener indices (into `rx`) grouped shard-major; identity order
    /// when the channel resolves as a single unit.
    shard_rx: Vec<u32>,
    /// Half-open ranges into `shard_rx`, one per resolve unit, in shard-id
    /// order.
    unit_ranges: Vec<(u32, u32)>,
    /// Persistent spatial-index cache (survives `clear`).
    cache: ResolverCache,
}

impl ChannelGroup {
    fn clear(&mut self) {
        self.tx.clear();
        self.rx.clear();
        self.tx_pos.clear();
        self.rx_pos.clear();
        self.tx_xs.clear();
        self.tx_ys.clear();
        self.outcomes.clear();
        self.shard_rx.clear();
        self.unit_ranges.clear();
        self.cond = ChannelCondition::CLEAR;
        self.jam = 0.0;
        // `cache` deliberately survives: it re-validates itself against the
        // next slot's staged transmitter positions.
    }

    fn is_idle(&self) -> bool {
        self.tx.is_empty() && self.rx.is_empty()
    }
}

impl<P: Protocol> Engine<P> {
    /// Creates an engine over `positions` with one protocol per node.
    ///
    /// Each node receives an independent RNG stream derived from
    /// `master_seed`, so a run is a pure function of
    /// `(params, positions, protocols, master_seed, faults)`.
    ///
    /// # Panics
    ///
    /// Panics if `positions` and `protocols` differ in length.
    pub fn new(
        params: SinrParams,
        positions: Vec<Point>,
        protocols: Vec<P>,
        master_seed: u64,
    ) -> Self {
        assert_eq!(
            positions.len(),
            protocols.len(),
            "one protocol per position required"
        );
        let rngs = (0..positions.len())
            .map(|i| derive_rng(master_seed, i as u64))
            .collect();
        let force = force_par();
        Engine {
            params,
            positions,
            protocols,
            rngs,
            slot: 0,
            metrics: Metrics::new(),
            faults: FaultPlan::none(),
            conditions: Vec::new(),
            trace: None,
            watch: None,
            detector: None,
            obs: None,
            obs_cache_builds: (0, 0),
            obs_pool: {
                let ps = rayon::pool_stats();
                (ps.steals, ps.tasks, ps.parks)
            },
            par_channels: force,
            par_shards: force,
            shards: if force { FORCED_SHARDS } else { 0 },
            shard_state: None,
            actions: Vec::new(),
            groups: Vec::new(),
            active: Vec::new(),
            shard_counts: Vec::new(),
        }
    }

    /// Installs a fault plan (builder-style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables (or disables) parallel resolution of the per-slot channel
    /// groups (builder-style). Channels never interact within a slot, so
    /// a parallel run is bit-identical to a sequential one — the engine
    /// resolves groups concurrently but always delivers observations in
    /// channel order. Under `MCA_FORCE_PAR=1` the flag is forced on.
    pub fn with_par_channels(mut self, par: bool) -> Self {
        self.par_channels = par || force_par();
        self
    }

    /// Whether channel groups resolve in parallel.
    pub fn par_channels(&self) -> bool {
        self.par_channels
    }

    /// Partitions the plane into an `s × s` grid of shards (builder-style;
    /// `0` or `1` disables sharding). Each channel's listeners are grouped
    /// by shard and resolved as independent (channel × shard) units with a
    /// deterministic shard-major merge — **bit-identical to the unsharded
    /// sequential engine for any `s`**, because per-listener outcomes are
    /// pure functions of the channel's transmitter set (see
    /// [`crate::shard`]). The shard assignment is maintained incrementally
    /// from the engine's own lifecycle events rather than rebuilt per
    /// slot. Under `MCA_FORCE_PAR=1`, leaving sharding off forces a
    /// 4-way grid instead.
    ///
    /// # Panics
    ///
    /// Panics if `s` exceeds [`crate::shard::MAX_SHARDS_PER_AXIS`].
    pub fn with_shards(mut self, s: u16) -> Self {
        assert!(
            s <= crate::shard::MAX_SHARDS_PER_AXIS,
            "shard count per axis must be at most {}, got {s}",
            crate::shard::MAX_SHARDS_PER_AXIS
        );
        self.shards = if force_par() && s < 2 {
            FORCED_SHARDS
        } else {
            s
        };
        self.shard_state = None;
        self
    }

    /// Shards per axis (0 or 1 = sharding disabled).
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// Enables (or disables) parallel resolution of the per-slot
    /// (channel × shard) units (builder-style) — a finer grain than
    /// [`Engine::with_par_channels`], which fans out whole channels and
    /// resolves each channel's units in order inside its worker. Like
    /// every execution knob, bit-identical to sequential execution; with
    /// sharding disabled the units are whole channels, so the flag
    /// degenerates to `par_channels`. Under `MCA_FORCE_PAR=1` the flag
    /// is forced on.
    pub fn with_par_shards(mut self, par: bool) -> Self {
        self.par_shards = par || force_par();
        self
    }

    /// Whether shard units resolve in parallel.
    pub fn par_shards(&self) -> bool {
        self.par_shards
    }

    /// The current shard partition, if sharding is enabled and the first
    /// slot has run (the map is built lazily from the first slot's
    /// positions).
    pub fn shard_map(&self) -> Option<&ShardMap> {
        self.shard_state.as_ref().map(|s| &s.map)
    }

    /// The fault plan in force.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Mutable access to the fault plan — lets an environment model inject
    /// churn (crashes, late joins) while the run is in progress.
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// The dynamic per-channel conditions (empty = every channel clear).
    pub fn channel_conditions(&self) -> &[ChannelCondition] {
        &self.conditions
    }

    /// Mutable access to the per-channel conditions. An environment model
    /// rewrites these between slots; index `i` governs channel `i`, and
    /// channels past the end of the vector are clear.
    pub fn channel_conditions_mut(&mut self) -> &mut Vec<ChannelCondition> {
        &mut self.conditions
    }

    /// Split borrow of everything a dynamic environment may mutate between
    /// slots: node positions, per-channel conditions, and the fault plan.
    /// One call, so an environment model can hold all three at once.
    pub fn env_parts(&mut self) -> (&mut [Point], &mut Vec<ChannelCondition>, &mut FaultPlan) {
        (&mut self.positions, &mut self.conditions, &mut self.faults)
    }

    /// Enables reception tracing, retaining at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceRecorder::new(capacity));
    }

    /// Starts watching node lifecycle transitions: every subsequent
    /// [`Engine::step`] detects crashes, joins, and motion beyond
    /// `move_threshold` (Euclidean drift from the last reported anchor) and
    /// queues them as [`NodeEvent`]s for [`Engine::drain_events`].
    ///
    /// Presence is anchored at the current slot, so only transitions *after*
    /// the call are reported — a maintainer that bootstrapped its own view
    /// of the initial world sees exactly the changes it missed.
    ///
    /// # Panics
    ///
    /// Panics if `move_threshold` is not positive and finite.
    pub fn watch_events(&mut self, move_threshold: f64) {
        let slot = self.slot;
        // Lifecycle presence only: a duty-cycled node napping through this
        // slot is still a member (it returns with state), so sleep phases
        // never masquerade as crash/join churn in the event stream.
        let present: Vec<bool> = (0..self.positions.len())
            .map(|i| !self.faults.is_lifecycle_absent(i as u32, slot))
            .collect();
        self.watch = Some(EventWatch::new(
            present,
            self.positions.clone(),
            move_threshold,
        ));
    }

    /// Takes all [`NodeEvent`]s queued since the last drain (empty unless
    /// [`Engine::watch_events`] was enabled). Events appear in observation
    /// order: by slot, and within a slot by node id.
    pub fn drain_events(&mut self) -> Vec<NodeEvent> {
        self.watch
            .as_mut()
            .map(EventWatch::drain)
            .unwrap_or_default()
    }

    /// Number of queued (undrained) events.
    pub fn pending_events(&self) -> usize {
        self.watch.as_ref().map_or(0, EventWatch::pending)
    }

    /// Attaches a SINR degradation detector: every subsequent
    /// [`Engine::step`] folds each contested listen outcome (a listen on a
    /// channel with at least one transmitter) into the detector's per-node
    /// health scores, queueing [`DetectionEvent`]s for
    /// [`Engine::drain_detections`]. Detection is observation only —
    /// outcomes, metrics, and RNG draws are bit-identical with or without
    /// a detector attached.
    pub fn attach_detector(&mut self, detector: DegradationDetector) {
        self.detector = Some(detector);
    }

    /// The attached degradation detector, if any.
    pub fn detector(&self) -> Option<&DegradationDetector> {
        self.detector.as_ref()
    }

    /// Mutable access to the attached degradation detector.
    pub fn detector_mut(&mut self) -> Option<&mut DegradationDetector> {
        self.detector.as_mut()
    }

    /// Takes all [`DetectionEvent`]s queued since the last drain (empty
    /// unless a detector is attached).
    pub fn drain_detections(&mut self) -> Vec<DetectionEvent> {
        self.detector
            .as_mut()
            .map(DegradationDetector::drain)
            .unwrap_or_default()
    }

    /// The trace recorder, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Attaches an observability recorder: every subsequent
    /// [`Engine::step`] records per-phase spans (gather, staging, each
    /// (channel × shard) resolve unit with its halo construction, merge,
    /// delivery, event drain), a per-channel outcome record per active
    /// channel, and resolver-cache counters. Requires the `obs` cargo
    /// feature for real data — without it the recorder is a no-op and
    /// attaching is harmless. Recording is observation only: trial
    /// outcomes are bit-identical with or without a recorder, under any
    /// execution schedule.
    pub fn attach_obs(&mut self, rec: mca_obs::Recorder) {
        self.obs = Some(rec);
    }

    /// The observability recorder, if one is attached.
    pub fn obs(&self) -> Option<&mca_obs::Recorder> {
        self.obs.as_ref()
    }

    /// Mutable access to the attached observability recorder.
    pub fn obs_mut(&mut self) -> Option<&mut mca_obs::Recorder> {
        self.obs.as_mut()
    }

    /// Detaches and returns the observability recorder.
    pub fn take_obs(&mut self) -> Option<mca_obs::Recorder> {
        self.obs.take()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the engine has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The global slot counter (slots executed so far).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Physical parameters in force.
    pub fn params(&self) -> &SinrParams {
        &self.params
    }

    /// Node positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Mutable node positions — mobility models move nodes between slots.
    /// The SINR layer reads positions fresh every slot, so moving a node
    /// takes effect at the next [`Engine::step`].
    pub fn positions_mut(&mut self) -> &mut [Point] {
        &mut self.positions
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The per-node protocol states.
    pub fn protocols(&self) -> &[P] {
        &self.protocols
    }

    /// Mutable access to protocol states (for harness-driven phase stitching).
    pub fn protocols_mut(&mut self) -> &mut [P] {
        &mut self.protocols
    }

    /// Consumes the engine, returning the protocol states.
    pub fn into_protocols(self) -> Vec<P> {
        self.protocols
    }

    /// Whether every node's protocol reports done.
    pub fn all_done(&self) -> bool {
        self.protocols.iter().all(|p| p.is_done())
    }

    /// Dense-group accessor: grows the vec to cover `ch` and records the
    /// first touch of each channel this slot in `active`.
    fn touch<'g>(
        groups: &'g mut Vec<ChannelGroup>,
        active: &mut Vec<u16>,
        ch: u16,
    ) -> &'g mut ChannelGroup {
        if groups.len() <= ch as usize {
            groups.resize_with(ch as usize + 1, ChannelGroup::default);
        }
        let group = &mut groups[ch as usize];
        if group.is_idle() {
            active.push(ch);
        }
        group
    }

    /// Phases 2b + 2c fused: stage each active channel's listener
    /// partition, resolve all (channel × shard) units, and deliver every
    /// observation — bit-identical under every schedule and for any
    /// shard count (see [`Engine::with_shards`]). Returns
    /// `(resolve_ns, deliver_ns)` wall-clock attribution for the phase
    /// spans (zeros when no recorder is attached).
    ///
    /// Three execution schedules, selected by the par flags and the
    /// worker count:
    ///
    /// * **Pooled pipeline** (`par_shards`, more than one worker): every
    ///   (channel × shard) unit is submitted to the persistent
    ///   work-stealing pool as an independent task writing into its own
    ///   pre-indexed result cell. While every unit is in flight, the
    ///   slot thread delivers the Phase-1-derived idle feedback (it
    ///   depends only on the gathered actions — the first half of the
    ///   double-buffered slot state), then walks channels in ascending
    ///   order: help the pool until the channel's unit latch clears,
    ///   scatter its cells shard-major into the listener-order outcome
    ///   buffer (the delivery half of the double buffer), and deliver —
    ///   so delivering channel `c` overlaps resolving channels `> c`.
    ///   Scheduling is greedy (workers steal across unbalanced units;
    ///   completion order is arbitrary); only the merge and delivery
    ///   order is architectural.
    /// * **Channel fan-out** (`par_channels` alone): whole channels
    ///   resolve as pool tasks (each channel's units in order inside its
    ///   task), then delivery runs in ascending channel order.
    /// * **Sequential** (one worker, or both flags off): each channel
    ///   resolves — with the resolver's own listener-level fan-out
    ///   available — and delivers in turn.
    ///
    /// Bit-identity of all three rests on the sharding contract: a
    /// listener's outcome is a pure function of its channel's staged
    /// transmitter set, and delivery mutates only per-node protocol/RNG
    /// state and commutative metric sums — never the staged inputs of
    /// any other channel.
    fn resolve_and_deliver(&mut self) -> (u64, u64) {
        let timing = self.obs.is_some();
        let sw_phase = Stopwatch::start_if(timing);
        let mut deliver_ns = 0u64;
        let slot = self.slot;

        // Stage the listener partition: shard-major bucketing (counting
        // sort, reused scratch) where sharding engages, identity order
        // otherwise. Outcome buffers are pre-sized for the merge.
        let shard_map = self.shard_state.as_ref().map(|s| &s.map);
        for &ch in &self.active {
            let group = &mut self.groups[ch as usize];
            if group.rx.is_empty() {
                continue;
            }
            group.outcomes.clear();
            group.outcomes.resize(group.rx.len(), ListenOutcome::SILENT);
            // The channel's grid is coarsened so units stay large enough
            // to amortize their scheduling overhead (execution-only: the
            // chosen grid never changes an outcome).
            let s_eff = shard_map
                .map(|m| crate::shard::effective_shards(m.shards(), group.rx.len()))
                .unwrap_or(1);
            match shard_map {
                Some(map) if s_eff >= 2 => {
                    let nshards = usize::from(s_eff) * usize::from(s_eff);
                    self.shard_counts.clear();
                    self.shard_counts.resize(nshards + 1, 0);
                    for &node in &group.rx {
                        self.shard_counts[usize::from(map.coarse_shard_of(node, s_eff)) + 1] += 1;
                    }
                    for sid in 0..nshards {
                        self.shard_counts[sid + 1] += self.shard_counts[sid];
                    }
                    for sid in 0..nshards {
                        let (s, e) = (self.shard_counts[sid], self.shard_counts[sid + 1]);
                        if s != e {
                            group.unit_ranges.push((s, e));
                        }
                    }
                    // Scatter, reusing the prefix sums as cursors.
                    group.shard_rx.resize(group.rx.len(), 0);
                    for (k, &node) in group.rx.iter().enumerate() {
                        let cursor =
                            &mut self.shard_counts[usize::from(map.coarse_shard_of(node, s_eff))];
                        group.shard_rx[*cursor as usize] = k as u32;
                        *cursor += 1;
                    }
                }
                _ => {
                    group.shard_rx.extend(0..group.rx.len() as u32);
                    group.unit_ranges.push((0, group.rx.len() as u32));
                }
            }
        }

        // The listening channels with their effective parameters (jamming
        // folds into the noise floor exactly as the scalar path did).
        // This list *is* the work list below — one `works` entry is built
        // per `chans` entry, from the same tuple — so the channel ↔
        // params pairing is structural, not maintained by parallel loops.
        let params = self.params;
        let mut chans: Vec<(u16, SinrParams)> = Vec::with_capacity(self.active.len());
        for &ch in &self.active {
            let group = &self.groups[ch as usize];
            if group.rx.is_empty() {
                continue;
            }
            let mut p = params;
            if group.jam > 0.0 {
                p.noise += group.jam;
            }
            chans.push((ch, p));
        }

        // Split borrows: everything delivery mutates (protocols, RNGs,
        // metrics, trace, detector, recorder) is disjoint from the
        // channel groups the resolver works borrow, so the pooled path
        // can deliver finished channels while tasks still read the rest.
        let Engine {
            groups,
            actions,
            protocols,
            rngs,
            metrics,
            trace,
            detector,
            obs,
            faults,
            par_channels,
            par_shards,
            ..
        } = self;
        let actions: &[SlotAction<P::Msg>] = actions;
        let faults: &FaultPlan = faults;
        let (par_channels, par_shards) = (*par_channels, *par_shards);

        struct Work<'g> {
            ch: u16,
            resolver: ChannelResolver<'g>,
            tx: &'g [u32],
            rx: &'g [u32],
            rx_pos: &'g [Point],
            shard_rx: &'g [u32],
            unit_ranges: &'g [(u32, u32)],
            cond: ChannelCondition,
            sharded: bool,
            /// Expected work too small to pay for pool submission — the
            /// channel resolves inline on the slot thread (see
            /// [`INLINE_CHANNEL_PAIRS`]). Bit-identical either way.
            inline: bool,
        }

        // One pass over the dense groups: resolver works + detached
        // outcome buffers for listening channels, the transmit-only
        // leftovers for the post-delivery feedback loop. Outcomes are
        // split from the works so the slot thread can merge and deliver
        // a finished channel while pool tasks still hold shared borrows
        // of every work.
        let mut works: Vec<Work<'_>> = Vec::with_capacity(chans.len());
        let mut outs: Vec<&mut Vec<ListenOutcome>> = Vec::with_capacity(chans.len());
        let mut txonly: Vec<(u16, &[u32])> = Vec::new();
        let force = force_par();
        let mut next_chan = chans.iter().peekable();
        for (ch, group) in groups.iter_mut().enumerate() {
            if group.is_idle() {
                continue;
            }
            if group.rx.is_empty() {
                txonly.push((ch as u16, &group.tx));
                continue;
            }
            let (c, eff) = next_chan
                .next()
                .expect("chans lists every listening channel");
            debug_assert_eq!(usize::from(*c), ch);
            let ChannelGroup {
                tx,
                rx,
                tx_pos,
                rx_pos,
                tx_xs,
                tx_ys,
                shard_rx,
                unit_ranges,
                outcomes,
                cache,
                cond,
                ..
            } = group;
            let resolver = ChannelResolver::cached(eff, tx_pos, cache).with_soa(tx_xs, tx_ys);
            let sharded = unit_ranges.len() > 1;
            let inline = !force
                && rx
                    .len()
                    .saturating_mul(resolver.estimated_work_per_listener().max(1))
                    < INLINE_CHANNEL_PAIRS;
            works.push(Work {
                ch: *c,
                resolver,
                tx,
                rx,
                rx_pos,
                shard_rx,
                unit_ranges,
                cond: *cond,
                sharded,
                inline,
            });
            outs.push(outcomes);
        }

        // Resolves one unit of `w` into a fresh buffer, returning
        // `(outcomes, wall ns, halo ns)` (timings zero unless `timing`).
        fn resolve_unit(w: &Work<'_>, ui: usize, timing: bool) -> (Vec<ListenOutcome>, u64, u64) {
            let sw = Stopwatch::start_if(timing);
            let (s, e) = w.unit_ranges[ui];
            let ks = &w.shard_rx[s as usize..e as usize];
            let mut out = Vec::with_capacity(ks.len());
            let mut halo_ns = 0;
            if w.sharded {
                let sw_halo = Stopwatch::start_if(timing);
                let bbox = BoundingBox::from_points(ks.iter().map(|&k| w.rx_pos[k as usize]))
                    .expect("resolve units are never empty");
                let task = w.resolver.task(bbox);
                halo_ns = sw_halo.elapsed_ns();
                task.resolve_indexed_into(w.rx_pos, ks, w.cond.extra_interference, &mut out);
            } else {
                w.resolver
                    .resolve_indexed_into(w.rx_pos, ks, w.cond.extra_interference, &mut out);
            }
            (out, sw.elapsed_ns(), halo_ns)
        }

        // Resolves one channel's units in place, in unit order.
        // `fan_out_listeners` lets the fully sequential engine use the
        // resolver's own listener-level parallelism on huge batches;
        // parallel callers pass `false` to avoid nested fan-out.
        // With `timing` on, each unit's wall time (and halo-construction
        // share, where sharded) is pushed onto `timings` in unit order.
        fn resolve_work(
            w: &Work<'_>,
            out: &mut Vec<ListenOutcome>,
            fan_out_listeners: bool,
            timing: bool,
            timings: &mut Vec<(u32, u64, Option<u64>)>,
        ) {
            if w.sharded {
                let mut unit_out = Vec::new();
                for (ui, &(s, e)) in w.unit_ranges.iter().enumerate() {
                    let sw = Stopwatch::start_if(timing);
                    let ks = &w.shard_rx[s as usize..e as usize];
                    let sw_halo = Stopwatch::start_if(timing);
                    let bbox = BoundingBox::from_points(ks.iter().map(|&k| w.rx_pos[k as usize]))
                        .expect("resolve units are never empty");
                    let task = w.resolver.task(bbox);
                    let halo_ns = sw_halo.elapsed_ns();
                    task.resolve_indexed_into(
                        w.rx_pos,
                        ks,
                        w.cond.extra_interference,
                        &mut unit_out,
                    );
                    for (j, &k) in ks.iter().enumerate() {
                        out[k as usize] = unit_out[j];
                    }
                    if timing {
                        timings.push((ui as u32, sw.elapsed_ns(), Some(halo_ns)));
                    }
                }
            } else if fan_out_listeners {
                let sw = Stopwatch::start_if(timing);
                w.resolver
                    .resolve_into(w.rx_pos, w.cond.extra_interference, out);
                if timing {
                    timings.push((0, sw.elapsed_ns(), None));
                }
            } else {
                let sw = Stopwatch::start_if(timing);
                w.resolver
                    .resolve_into_sequential(w.rx_pos, w.cond.extra_interference, out);
                if timing {
                    timings.push((0, sw.elapsed_ns(), None));
                }
            }
        }

        // Phase-1 feedback: idle nodes' Slept observations depend only
        // on the gathered actions, never on resolution, and each node
        // observes exactly once per slot with its own RNG stream — so
        // this loop commutes with channel delivery bit-for-bit. The
        // pooled path runs it while every resolve unit is in flight.
        fn deliver_slept<P: Protocol>(
            slot: u64,
            actions: &[SlotAction<P::Msg>],
            protocols: &mut [P],
            rngs: &mut [SmallRng],
            faults: &FaultPlan,
        ) {
            for i in 0..actions.len() {
                if matches!(actions[i], SlotAction::Off)
                    && !faults.is_absent(i as u32, slot)
                    && !protocols[i].is_done()
                {
                    protocols[i].observe(slot, Observation::Slept, &mut rngs[i]);
                }
            }
        }

        // Delivers one resolved channel: listener observations (deep
        // fades and zone jams applied), transmitter `Sent` feedback, and
        // the per-channel outcome record. Identical code on every
        // schedule; always called in ascending channel order.
        #[allow(clippy::too_many_arguments)]
        fn deliver_channel<P: Protocol>(
            slot: u64,
            w: &Work<'_>,
            outcomes: &[ListenOutcome],
            actions: &[SlotAction<P::Msg>],
            protocols: &mut [P],
            rngs: &mut [SmallRng],
            metrics: &mut Metrics,
            trace: &mut Option<TraceRecorder>,
            detector: &mut Option<DegradationDetector>,
            faults: &FaultPlan,
            obs: &mut Option<mca_obs::Recorder>,
        ) {
            // Per-channel outcome stream: metric deltas around this
            // channel's delivery, snapshotted outside the listener loop.
            let (rx0c, busy0c, env0c) =
                (metrics.receptions, metrics.busy_failures, metrics.env_drops);
            for (k, &li) in w.rx.iter().enumerate() {
                let mut outcome = outcomes[k];
                // Deep fades (condition.drop) suppress decodes outright;
                // the energy was still sensed during resolution.
                if w.cond.drop && outcome.decoded.is_some() {
                    metrics.env_drops += 1;
                    outcome = ListenOutcome {
                        decoded: None,
                        signal: 0.0,
                        sinr: 0.0,
                        total_power: outcome.total_power,
                    };
                }
                // Zone jams destroy decodes at victims inside the blast
                // radius — a deep fade local to the listener.
                if outcome.decoded.is_some() && faults.zone_drop(w.rx_pos[k], w.ch, slot) {
                    metrics.env_drops += 1;
                    outcome = ListenOutcome {
                        decoded: None,
                        signal: 0.0,
                        sinr: 0.0,
                        total_power: outcome.total_power,
                    };
                }
                let obs_msg = Observation::from_outcome(&outcome, |j| {
                    let sender = w.tx[j] as usize;
                    let msg = match &actions[sender] {
                        SlotAction::Tx(_, m) => m.clone(),
                        _ => unreachable!("decoded node was not transmitting"),
                    };
                    (NodeId(w.tx[j]), msg)
                });
                match &obs_msg {
                    Observation::Received(r) => {
                        metrics.receptions += 1;
                        if let Some(t) = trace.as_mut() {
                            t.record(TraceEvent {
                                slot,
                                channel: Channel(w.ch),
                                from: r.from,
                                to: NodeId(li),
                            });
                        }
                    }
                    Observation::Noise { total_power } => {
                        if *total_power > 0.0 {
                            metrics.busy_failures += 1;
                        } else {
                            metrics.silent_listens += 1;
                        }
                    }
                    _ => {}
                }
                // Contested listens feed the degradation detector: the
                // channel had a transmitter, so decode-or-not is evidence
                // about this listener's link health.
                if !w.tx.is_empty() {
                    let delivered = matches!(&obs_msg, Observation::Received(_));
                    if let Some(det) = detector.as_mut() {
                        det.sample(li, slot, delivered);
                    }
                }
                protocols[li as usize].observe(slot, obs_msg, &mut rngs[li as usize]);
            }
            // Transmitters learn nothing.
            for &ti in w.tx {
                protocols[ti as usize].observe(slot, Observation::Sent, &mut rngs[ti as usize]);
            }
            if let Some(rec) = obs.as_mut() {
                rec.chan(ChannelSlotRecord {
                    slot,
                    channel: w.ch,
                    tx: w.tx.len() as u32,
                    listens: w.rx.len() as u32,
                    rx: (metrics.receptions - rx0c) as u32,
                    busy: (metrics.busy_failures - busy0c) as u32,
                    env: (metrics.env_drops - env0c) as u32,
                });
            }
        }

        // Execution schedule by flag. Unit timings, when a recorder is
        // attached, flow through the same deterministic channel-major /
        // shard-minor merge as the outcomes, so the recorded stream is
        // identical under every schedule (only the `ns` values differ).
        // (channel, unit, wall ns, halo ns where the unit built one).
        let mut unit_timings: Vec<(u16, u32, u64, Option<u64>)> = Vec::new();
        let mut merge_span: Option<(u32, u64)> = None;
        let mut pool_span: Option<(u32, u64)> = None;
        let threads = rayon::current_num_threads() > 1;
        if par_shards && threads {
            // Flatten the units; channel-major, shard-minor — the
            // deterministic merge order. Each unit gets a pre-indexed
            // result cell; each channel a countdown latch.
            let mut units: Vec<(u32, u32)> = Vec::new();
            let mut first_cell: Vec<usize> = Vec::with_capacity(works.len());
            for (wi, w) in works.iter().enumerate() {
                first_cell.push(units.len());
                if w.inline {
                    // Tiny channel: resolved on the slot thread in the
                    // merge loop below; contributes no pool units.
                    continue;
                }
                for ui in 0..w.unit_ranges.len() {
                    units.push((wi as u32, ui as u32));
                }
            }
            #[derive(Default)]
            struct UnitCell {
                out: Vec<ListenOutcome>,
                ns: u64,
                halo_ns: u64,
            }
            let cells: Vec<Mutex<UnitCell>> = units
                .iter()
                .map(|_| Mutex::new(UnitCell::default()))
                .collect();
            let latches: Vec<AtomicU32> = works
                .iter()
                .map(|w| {
                    AtomicU32::new(if w.inline {
                        0
                    } else {
                        w.unit_ranges.len() as u32
                    })
                })
                .collect();
            let works_ref = &works;
            let mut wait_ns = 0u64;
            let mut merge_ns = 0u64;
            rayon::scope(|s| {
                for (uidx, &(wi, ui)) in units.iter().enumerate() {
                    let cell = &cells[uidx];
                    let latch = &latches[wi as usize];
                    s.spawn(move || {
                        let (out, ns, halo_ns) =
                            resolve_unit(&works_ref[wi as usize], ui as usize, timing);
                        {
                            let mut c = cell.lock().unwrap_or_else(|e| e.into_inner());
                            *c = UnitCell { out, ns, halo_ns };
                        }
                        // Release pairs with the slot thread's Acquire
                        // latch read; the cell mutex orders the payload.
                        latch.fetch_sub(1, Ordering::Release);
                    });
                }
                // Phase-1 feedback overlapped with resolution.
                let sw = Stopwatch::start_if(timing);
                deliver_slept::<P>(slot, actions, protocols, rngs, faults);
                deliver_ns += sw.elapsed_ns();

                for (wi, w) in works.iter().enumerate() {
                    if w.inline {
                        // Below the pool-submission threshold: resolve on
                        // the slot thread now, in channel order — same
                        // code path, same outcomes, no handoff or merge.
                        let mut ts = Vec::new();
                        resolve_work(w, outs[wi], false, timing, &mut ts);
                        if timing {
                            for &(ui, ns, halo) in &ts {
                                unit_timings.push((w.ch, ui, ns, halo));
                            }
                        }
                        let sw_del = Stopwatch::start_if(timing);
                        deliver_channel::<P>(
                            slot, w, outs[wi], actions, protocols, rngs, metrics, trace, detector,
                            faults, obs,
                        );
                        deliver_ns += sw_del.elapsed_ns();
                        continue;
                    }
                    // Help the pool until this channel's units are done;
                    // later channels keep resolving the whole time.
                    let sw_wait = Stopwatch::start_if(timing);
                    let latch = &latches[wi];
                    s.help_while(|| latch.load(Ordering::Acquire) != 0);
                    wait_ns += sw_wait.elapsed_ns();
                    // Shard-major scatter merge into the listener-order
                    // buffer (uncontended locks: the latch cleared, so
                    // every writer released its cell).
                    let sw_merge = Stopwatch::start_if(timing);
                    let out_buf: &mut Vec<ListenOutcome> = outs[wi];
                    for ui in 0..w.unit_ranges.len() {
                        let c = cells[first_cell[wi] + ui]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner());
                        let (s0, e0) = w.unit_ranges[ui];
                        debug_assert_eq!(c.out.len(), (e0 - s0) as usize);
                        for (j, &k) in w.shard_rx[s0 as usize..e0 as usize].iter().enumerate() {
                            out_buf[k as usize] = c.out[j];
                        }
                        if timing {
                            unit_timings.push((
                                w.ch,
                                ui as u32,
                                c.ns,
                                w.sharded.then_some(c.halo_ns),
                            ));
                        }
                    }
                    merge_ns += sw_merge.elapsed_ns();
                    // Deliver this channel while the rest resolve.
                    let sw_del = Stopwatch::start_if(timing);
                    deliver_channel::<P>(
                        slot, w, out_buf, actions, protocols, rngs, metrics, trace, detector,
                        faults, obs,
                    );
                    deliver_ns += sw_del.elapsed_ns();
                }
            });
            if timing {
                merge_span = Some((units.len() as u32, merge_ns));
                pool_span = Some((units.len() as u32, wait_ns));
            }
        } else {
            let sw = Stopwatch::start_if(timing);
            deliver_slept::<P>(slot, actions, protocols, rngs, faults);
            deliver_ns += sw.elapsed_ns();
            // The fan-out only counts channels whose work clears the
            // inline threshold: tiny channels resolve on the slot thread
            // either way, and a slot with at most one heavy channel gains
            // nothing from the parallel machinery.
            let channel_fanout =
                par_channels && threads && works.iter().filter(|w| !w.inline).count() > 1;
            // Per-(non-inline) work unit timings from the fan-out,
            // re-merged channel-major below so the recorded stream keeps
            // the same deterministic order as every other schedule.
            let mut fan_ts: Vec<Vec<(u32, u64, Option<u64>)>> = Vec::new();
            if channel_fanout {
                let jobs: Vec<(&Work<'_>, &mut Vec<ListenOutcome>)> = works
                    .iter()
                    .zip(outs.iter_mut().map(|o| &mut **o))
                    .filter(|(w, _)| !w.inline)
                    .collect();
                fan_ts = jobs
                    .into_par_iter()
                    .map(|(w, out)| {
                        let mut ts = Vec::new();
                        resolve_work(w, out, false, timing, &mut ts);
                        ts
                    })
                    .collect();
            }
            let mut ts = Vec::new();
            let mut fan_it = fan_ts.iter();
            for (wi, w) in works.iter().enumerate() {
                if !channel_fanout || w.inline {
                    ts.clear();
                    resolve_work(w, outs[wi], !channel_fanout, timing, &mut ts);
                    for &(ui, ns, halo) in &ts {
                        unit_timings.push((w.ch, ui, ns, halo));
                    }
                } else {
                    let wts = fan_it.next().expect("one timing list per fan-out work");
                    for &(ui, ns, halo) in wts {
                        unit_timings.push((w.ch, ui, ns, halo));
                    }
                }
                let sw_del = Stopwatch::start_if(timing);
                deliver_channel::<P>(
                    slot, w, outs[wi], actions, protocols, rngs, metrics, trace, detector, faults,
                    obs,
                );
                deliver_ns += sw_del.elapsed_ns();
            }
        }

        // Transmitters on channels nobody listened to still need
        // feedback; their records trail the listening channels in the
        // outcome stream, as always.
        let sw = Stopwatch::start_if(timing);
        for &(ch, tx) in &txonly {
            for &ti in tx {
                protocols[ti as usize].observe(slot, Observation::Sent, &mut rngs[ti as usize]);
            }
            if let Some(rec) = obs.as_mut() {
                rec.chan(ChannelSlotRecord {
                    slot,
                    channel: ch,
                    tx: tx.len() as u32,
                    listens: 0,
                    rx: 0,
                    busy: 0,
                    env: 0,
                });
            }
        }
        deliver_ns += sw.elapsed_ns();

        if let Some(rec) = obs.as_mut() {
            for (ch, ui, ns, halo) in unit_timings {
                rec.span(SpanKind::Unit, slot, u32::from(ch), ui, ns);
                if let Some(h) = halo {
                    rec.span(SpanKind::Halo, slot, u32::from(ch), ui, h);
                }
            }
            if let Some((nunits, ns)) = merge_span {
                rec.span(SpanKind::Merge, slot, nunits, 0, ns);
            }
            if let Some((nunits, ns)) = pool_span {
                rec.span(SpanKind::Pool, slot, nunits, 0, ns);
            }
        }
        let total_ns = sw_phase.elapsed_ns();
        (total_ns.saturating_sub(deliver_ns), deliver_ns)
    }

    /// Executes one slot.
    pub fn step(&mut self) {
        let slot = self.slot;
        // Per-slot accounting baselines for the Phase-2 drift assertion.
        let listens0 = self.metrics.listens;
        let rx0 = self.metrics.receptions;
        let busy0 = self.metrics.busy_failures;
        let silent0 = self.metrics.silent_listens;

        // Observability: wall-clock phase spans, recorded only when a
        // recorder is attached (and compiled out entirely without the
        // `obs` feature). Timings are measurement, never simulation
        // input — outcomes cannot depend on them.
        let timing = self.obs.is_some();
        let sw_slot = Stopwatch::start_if(timing);
        let sw = Stopwatch::start_if(timing);

        // Lifecycle observation first: the slot's presence verdicts and the
        // (possibly environment-mutated) positions are what this slot runs
        // under, so transitions are reported at the slot they take effect.
        if let Some(watch) = self.watch.as_mut() {
            let faults = &self.faults;
            // Lifecycle view: duty-cycle sleep is not a crash (see
            // `watch_events`), so subscribers only hear real churn.
            watch.observe(slot, &self.positions, |i| {
                faults.is_lifecycle_absent(i as u32, slot)
            });
        }

        // Shard partition maintenance: build lazily from the first sharded
        // slot's positions, then piggyback on the engine's own lifecycle
        // events — a node is reassigned when it joins or drifts beyond a
        // quarter shard, not re-bucketed from scratch every slot.
        if self.shards >= 2 {
            let state = self.shard_state.get_or_insert_with(|| {
                let map = ShardMap::new(self.shards, &self.positions);
                let (w, h) = map.shard_size();
                let threshold = (w.min(h) / 4.0).max(1e-9);
                let present = (0..self.positions.len())
                    .map(|i| !self.faults.is_absent(i as u32, slot))
                    .collect();
                let watch = EventWatch::new(present, self.positions.clone(), threshold);
                ShardState { map, watch }
            });
            let faults = &self.faults;
            state
                .watch
                .observe(slot, &self.positions, |i| faults.is_absent(i as u32, slot));
            for event in state.watch.drain() {
                match event {
                    NodeEvent::Moved { node, to, .. } => state.map.reassign(node.0, to),
                    NodeEvent::Joined { node, .. } => {
                        state.map.reassign(node.0, self.positions[node.0 as usize])
                    }
                    // A crashed node stays silent; its stale assignment is
                    // never consulted and self-corrects on rejoin.
                    NodeEvent::Crashed { .. } => {}
                }
            }
        }

        self.actions.clear();
        for ch in self.active.drain(..) {
            self.groups[ch as usize].clear();
        }
        let drain_ns = sw.elapsed_ns();
        let sw = Stopwatch::start_if(timing);

        // Phase 1: gather actions. Absent (crashed or not-yet-joined) or
        // finished nodes stay silent.
        for i in 0..self.protocols.len() {
            let act = if self.faults.is_absent(i as u32, slot) || self.protocols[i].is_done() {
                SlotAction::Off
            } else {
                match self.protocols[i].act(slot, &mut self.rngs[i]) {
                    Action::Transmit { channel, msg } => SlotAction::Tx(channel, msg),
                    Action::Listen { channel } => SlotAction::Rx(channel),
                    Action::Idle => SlotAction::Off,
                }
            };
            match &act {
                SlotAction::Tx(ch, _) => {
                    self.metrics.record_tx(ch.index());
                    Self::touch(&mut self.groups, &mut self.active, ch.0)
                        .tx
                        .push(i as u32);
                }
                SlotAction::Rx(ch) => {
                    self.metrics.listens += 1;
                    Self::touch(&mut self.groups, &mut self.active, ch.0)
                        .rx
                        .push(i as u32);
                }
                SlotAction::Off => self.metrics.idles += 1,
            }
            self.actions.push(act);
        }

        // Deliver in ascending channel order (deterministic) regardless of
        // the order channels were first touched; also lets every loop below
        // visit only the active channels instead of the whole dense vec.
        self.active.sort_unstable();
        let gather_ns = sw.elapsed_ns();
        let sw = Stopwatch::start_if(timing);

        // Phase 2a: stage each active channel's inputs — transmitter and
        // listener positions (reused scratch), jamming, fading condition.
        for &ch in &self.active {
            let jam = self.faults.jam_power(ch, slot);
            let cond = self
                .conditions
                .get(ch as usize)
                .copied()
                .unwrap_or(ChannelCondition::CLEAR);
            let group = &mut self.groups[ch as usize];
            group.jam = jam;
            group.cond = cond;
            if group.rx.is_empty() {
                continue;
            }
            let ChannelGroup {
                tx,
                rx,
                tx_pos,
                rx_pos,
                tx_xs,
                tx_ys,
                ..
            } = group;
            for &i in tx.iter() {
                let p = self.positions[i as usize];
                tx_pos.push(p);
                tx_xs.push(p.x);
                tx_ys.push(p.y);
            }
            rx_pos.extend(rx.iter().map(|&i| self.positions[i as usize]));
        }

        let stage_ns = sw.elapsed_ns();

        // Phases 2b + 2c: resolve every channel's receptions as
        // (channel x shard) units and deliver every observation - fused
        // so the pooled schedule can deliver finished channels (and the
        // Phase-1-derived idle feedback) while later channels still
        // resolve on the work-stealing pool. Bit-identical under every
        // schedule; see `resolve_and_deliver`.
        let (resolve_ns, deliver_ns) = self.resolve_and_deliver();

        self.slot += 1;
        self.metrics.slots += 1;

        if let Some(rec) = self.obs.as_mut() {
            rec.span(SpanKind::EventDrain, slot, 0, 0, drain_ns);
            rec.span(SpanKind::Gather, slot, 0, 0, gather_ns);
            rec.span(SpanKind::Stage, slot, 0, 0, stage_ns);
            rec.span(
                SpanKind::Resolve,
                slot,
                self.active.len() as u32,
                0,
                resolve_ns,
            );
            rec.span(SpanKind::Deliver, slot, 0, 0, deliver_ns);
            rec.span(SpanKind::Slot, slot, 0, 0, sw_slot.elapsed_ns());
            let builds: u64 = self.groups.iter().map(|g| g.cache.builds()).sum();
            let build_ns: u64 = self.groups.iter().map(|g| g.cache.build_ns()).sum();
            rec.add("resolver_cache_builds", builds - self.obs_cache_builds.0);
            rec.add(
                "resolver_cache_build_ns",
                build_ns - self.obs_cache_builds.1,
            );
            self.obs_cache_builds = (builds, build_ns);
            // Work-stealing pool activity, as per-slot deltas of the
            // process-global cumulative stats (see `obs_pool`).
            let ps = rayon::pool_stats();
            rec.add("pool_steals", ps.steals - self.obs_pool.0);
            rec.add("pool_tasks", ps.tasks - self.obs_pool.1);
            rec.add("pool_parks", ps.parks - self.obs_pool.2);
            self.obs_pool = (ps.steals, ps.tasks, ps.parks);
        }

        // Every listen slot must be accounted exactly once — guards the
        // resolver swap against silent miscounting.
        debug_assert_eq!(
            (self.metrics.receptions - rx0)
                + (self.metrics.busy_failures - busy0)
                + (self.metrics.silent_listens - silent0),
            self.metrics.listens - listens0,
            "per-slot reception accounting drifted (slot {slot})"
        );
    }

    /// Executes exactly `slots` slots.
    pub fn run(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }

    /// Steps until every protocol is done or `max_slots` is reached.
    /// Returns `true` if all protocols finished.
    pub fn run_until_done(&mut self, max_slots: u64) -> bool {
        while self.slot < max_slots {
            if self.all_done() {
                return true;
            }
            self.step();
        }
        self.all_done()
    }

    /// Steps until `pred(protocols)` holds or `max_slots` is reached.
    /// Returns `true` if the predicate became true.
    pub fn run_until<F: FnMut(&[P]) -> bool>(&mut self, max_slots: u64, mut pred: F) -> bool {
        while self.slot < max_slots {
            if pred(&self.protocols) {
                return true;
            }
            self.step();
        }
        pred(&self.protocols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{JamSpec, ZoneJam};

    /// Transmits `msg` on `channel` in every slot.
    struct Talker {
        channel: Channel,
        msg: u32,
    }
    impl Protocol for Talker {
        type Msg = u32;
        fn act(&mut self, _s: u64, _r: &mut SmallRng) -> Action<u32> {
            Action::Transmit {
                channel: self.channel,
                msg: self.msg,
            }
        }
        fn observe(&mut self, _s: u64, obs: Observation<u32>, _r: &mut SmallRng) {
            assert!(
                matches!(obs, Observation::Sent),
                "transmitters learn nothing"
            );
        }
    }

    /// Listens on `channel`, recording every decode.
    struct Ear {
        channel: Channel,
        heard: Vec<(NodeId, u32)>,
        noise_slots: u32,
    }
    impl Ear {
        fn new(channel: Channel) -> Self {
            Ear {
                channel,
                heard: Vec::new(),
                noise_slots: 0,
            }
        }
    }
    impl Protocol for Ear {
        type Msg = u32;
        fn act(&mut self, _s: u64, _r: &mut SmallRng) -> Action<u32> {
            Action::Listen {
                channel: self.channel,
            }
        }
        fn observe(&mut self, _s: u64, obs: Observation<u32>, _r: &mut SmallRng) {
            match obs {
                Observation::Received(r) => self.heard.push((r.from, r.msg)),
                Observation::Noise { .. } => self.noise_slots += 1,
                _ => {}
            }
        }
    }

    /// Either Talker or Ear — engines are homogeneous in `P`.
    enum Role {
        Talk(Talker),
        Hear(Ear),
    }
    impl Protocol for Role {
        type Msg = u32;
        fn act(&mut self, s: u64, r: &mut SmallRng) -> Action<u32> {
            match self {
                Role::Talk(t) => t.act(s, r),
                Role::Hear(e) => e.act(s, r),
            }
        }
        fn observe(&mut self, s: u64, obs: Observation<u32>, r: &mut SmallRng) {
            match self {
                Role::Talk(t) => t.observe(s, obs, r),
                Role::Hear(e) => e.observe(s, obs, r),
            }
        }
    }

    fn two_node_setup(listener_channel: Channel) -> Engine<Role> {
        let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 99,
            }),
            Role::Hear(Ear::new(listener_channel)),
        ];
        Engine::new(SinrParams::default(), positions, protocols, 7)
    }

    #[test]
    fn same_channel_delivers() {
        let mut e = two_node_setup(Channel::FIRST);
        e.enable_trace(16);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard, vec![(NodeId(0), 99)]),
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().receptions, 1);
        assert_eq!(e.metrics().transmissions, 1);
        assert_eq!(e.trace().unwrap().len(), 1);
    }

    #[test]
    fn cross_channel_isolated() {
        // Listener on channel 1 hears nothing from a channel-0 transmitter —
        // not even noise (channels are non-overlapping).
        let mut e = two_node_setup(Channel(1));
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => {
                assert!(ear.heard.is_empty());
                assert_eq!(ear.noise_slots, 1);
            }
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().silent_listens, 1);
    }

    #[test]
    fn collision_blocks_decoding() {
        let positions = vec![
            Point::new(-2.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 0.0),
        ];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 1,
            }),
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 2,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7);
        e.step();
        match &e.protocols()[2] {
            Role::Hear(ear) => assert!(ear.heard.is_empty(), "equidistant colliders must jam"),
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().busy_failures, 1);
    }

    #[test]
    fn crashed_node_is_silent() {
        let mut e = two_node_setup(Channel::FIRST);
        let mut faults = FaultPlan::none();
        faults.crash_at(0, 0);
        e = Engine::new(
            SinrParams::default(),
            e.positions().to_vec(),
            vec![
                Role::Talk(Talker {
                    channel: Channel::FIRST,
                    msg: 99,
                }),
                Role::Hear(Ear::new(Channel::FIRST)),
            ],
            7,
        )
        .with_faults(faults);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert!(ear.heard.is_empty()),
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().transmissions, 0);
    }

    #[test]
    fn jamming_kills_marginal_link() {
        // Transmitter at distance 6 of R_T=8: decodes fine without jamming,
        // fails under a strong jammer.
        let positions = vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)];
        let mk = || {
            vec![
                Role::Talk(Talker {
                    channel: Channel::FIRST,
                    msg: 5,
                }),
                Role::Hear(Ear::new(Channel::FIRST)),
            ]
        };
        let mut clean = Engine::new(SinrParams::default(), positions.clone(), mk(), 7);
        clean.step();
        match &clean.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard.len(), 1),
            _ => unreachable!(),
        }

        let mut faults = FaultPlan::none();
        faults.jam(JamSpec::Fixed {
            channel: 0,
            from: 0,
            to: 100,
            power: 1000.0,
        });
        let mut jammed = Engine::new(SinrParams::default(), positions, mk(), 7).with_faults(faults);
        jammed.step();
        match &jammed.protocols()[1] {
            Role::Hear(ear) => assert!(ear.heard.is_empty()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn late_join_keeps_node_silent_until_slot() {
        let mut faults = FaultPlan::none();
        faults.join_at(0, 3);
        let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 42,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults);
        e.run(3);
        match &e.protocols()[1] {
            Role::Hear(ear) => assert!(ear.heard.is_empty(), "talker not yet joined"),
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().transmissions, 0);
        e.step(); // slot 3: joined
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard, vec![(NodeId(0), 42)]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn channel_condition_interference_kills_marginal_link() {
        // Same geometry as the jamming test: distance 6 of R_T = 8.
        let positions = vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 5,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7);
        e.channel_conditions_mut()
            .push(crate::ChannelCondition::interfered(1000.0));
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => {
                assert!(ear.heard.is_empty());
                assert_eq!(ear.noise_slots, 1, "interference is sensed, not silent");
            }
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().busy_failures, 1);
        assert_eq!(e.metrics().env_drops, 0);
    }

    #[test]
    fn channel_condition_drop_suppresses_decode() {
        let mut e = two_node_setup(Channel::FIRST);
        e.channel_conditions_mut()
            .push(crate::ChannelCondition::dropped(0.0));
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => {
                assert!(ear.heard.is_empty(), "deep fade drops the decode");
                assert_eq!(ear.noise_slots, 1, "energy still sensed");
            }
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().env_drops, 1);
        // Clearing the condition restores reception.
        e.channel_conditions_mut().clear();
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard, vec![(NodeId(0), 99)]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn moving_a_node_changes_reception() {
        let mut e = two_node_setup(Channel::FIRST);
        // Move the listener far out of range before the first slot.
        e.positions_mut()[1] = Point::new(500.0, 0.0);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert!(ear.heard.is_empty()),
            _ => unreachable!(),
        }
        // Move it back within range.
        e.positions_mut()[1] = Point::new(2.0, 0.0);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard, vec![(NodeId(0), 99)]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn runtime_crash_injection_via_faults_mut() {
        let mut e = two_node_setup(Channel::FIRST);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard.len(), 1),
            _ => unreachable!(),
        }
        let next = e.slot();
        e.faults_mut().crash_at(0, next);
        e.step();
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard.len(), 1, "crashed mid-run"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut e = two_node_setup(Channel::FIRST);
            e.run(10);
            match &e.protocols()[1] {
                Role::Hear(ear) => ear.heard.clone(),
                _ => unreachable!(),
            }
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_done_stops_early() {
        struct OneShot {
            sent: bool,
        }
        impl Protocol for OneShot {
            type Msg = ();
            fn act(&mut self, _s: u64, _r: &mut SmallRng) -> Action<()> {
                Action::Idle
            }
            fn observe(&mut self, _s: u64, _o: Observation<()>, _r: &mut SmallRng) {
                self.sent = true;
            }
            fn is_done(&self) -> bool {
                self.sent
            }
        }
        let mut e = Engine::new(
            SinrParams::default(),
            vec![Point::ORIGIN],
            vec![OneShot { sent: false }],
            1,
        );
        assert!(e.run_until_done(100));
        assert!(e.slot() < 100, "should stop well before the cap");
    }

    /// Random multi-channel chatter recording every observation verbatim,
    /// floats included — the payload for bit-identity comparisons.
    struct Hopper {
        channels: u16,
        heard: Vec<(u64, u32, u64, f64, f64, f64)>,
        noise: Vec<(u64, f64)>,
    }
    impl Protocol for Hopper {
        type Msg = u64;
        fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<u64> {
            use rand::Rng;
            let ch = Channel(rng.gen_range(0..self.channels));
            if rng.gen_bool(0.4) {
                Action::Transmit {
                    channel: ch,
                    msg: slot,
                }
            } else {
                Action::Listen { channel: ch }
            }
        }
        fn observe(&mut self, slot: u64, obs: Observation<u64>, _r: &mut SmallRng) {
            match obs {
                Observation::Received(r) => {
                    self.heard
                        .push((slot, r.from.0, r.msg, r.signal, r.sinr, r.total_power))
                }
                Observation::Noise { total_power } => self.noise.push((slot, total_power)),
                _ => {}
            }
        }
    }

    fn hopper_net(n: usize, channels: u16, par: bool, params: SinrParams) -> Engine<Hopper> {
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        let side = (n as f64 / 4.0).sqrt() * 2.0;
        let positions: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect();
        let protocols = (0..n)
            .map(|_| Hopper {
                channels,
                heard: Vec::new(),
                noise: Vec::new(),
            })
            .collect();
        Engine::new(params, positions, protocols, 9).with_par_channels(par)
    }

    #[test]
    fn par_channels_bit_identical_to_sequential() {
        let run = |par: bool| {
            let mut e = hopper_net(80, 6, par, SinrParams::default());
            // Under MCA_FORCE_PAR=1 the flag is forced on; the comparison
            // below still checks the par path replays itself bit-for-bit.
            assert_eq!(e.par_channels(), par || force_par());
            e.run(120);
            let metrics = e.metrics().clone();
            let logs: Vec<_> = e
                .into_protocols()
                .into_iter()
                .map(|h| (h.heard, h.noise))
                .collect();
            (metrics, logs)
        };
        let (m_seq, l_seq) = run(false);
        let (m_par, l_par) = run(true);
        assert_eq!(m_seq, m_par);
        assert_eq!(
            l_seq, l_par,
            "parallel channel groups changed an observation"
        );
    }

    #[test]
    fn pooled_pipeline_bit_identical_under_steal_stress() {
        // The pooled schedule (par_shards on a multi-worker pool) must
        // replay the sequential engine bit-for-bit — including when the
        // stress hook funnels every task through one deque so the other
        // workers only make progress by stealing. Thread-count and
        // capacity changes are process-global, but they only steer
        // scheduling, never outcomes, so racing sibling tests stay
        // correct.
        let run = |shards: u16, par: bool, threads: usize, cap: usize| {
            rayon::set_num_threads(threads);
            rayon::set_test_deque_capacity(cap);
            let mut e = hopper_net(120, 5, par, SinrParams::default())
                .with_shards(shards)
                .with_par_shards(par);
            e.run(60);
            rayon::set_test_deque_capacity(0);
            rayon::set_num_threads(0);
            let metrics = e.metrics().clone();
            let logs: Vec<_> = e
                .into_protocols()
                .into_iter()
                .map(|h| (h.heard, h.noise))
                .collect();
            (metrics, logs)
        };
        let baseline = run(0, false, 1, 0);
        for &(threads, cap) in &[(2usize, 0usize), (4, 1), (8, 2)] {
            let stressed = run(4, true, threads, cap);
            assert_eq!(
                baseline, stressed,
                "pooled schedule diverged at {threads} threads, deque cap {cap}"
            );
        }
    }

    #[test]
    fn fast_resolve_mode_runs_through_the_engine() {
        use mca_sinr::ResolveMode;
        // Dense enough that every channel's transmitter set comfortably
        // exceeds the resolver's grid threshold (16), so the Fast grid
        // path — not its exact-scan fallback — is what runs.
        let mut e = hopper_net(
            400,
            2,
            true,
            SinrParams::default().with_resolve(ResolveMode::fast()),
        );
        e.run(50);
        let m = e.metrics();
        let tx_per_channel_slot = m.transmissions as f64 / (m.slots as f64 * 2.0);
        assert!(
            tx_per_channel_slot > 32.0,
            "workload too thin to exercise the grid: {tx_per_channel_slot:.1} tx/channel/slot"
        );
        // The per-slot accounting debug_assert in `step` has already
        // checked reception bookkeeping; sanity-check traffic flowed.
        assert!(m.listens > 0);
        assert!(m.receptions > 0);
    }

    #[test]
    fn sparse_channel_ids_use_dense_groups() {
        // A very large channel id must work (groups vec grows to cover it)
        // and keep delivering.
        let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel(900),
                msg: 5,
            }),
            Role::Hear(Ear::new(Channel(900))),
        ];
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7);
        e.run(3);
        match &e.protocols()[1] {
            Role::Hear(ear) => assert_eq!(ear.heard.len(), 3),
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().receptions, 3);
    }

    #[test]
    fn watch_surfaces_crash_join_and_motion() {
        let mut faults = FaultPlan::none();
        faults.crash_at(0, 2);
        faults.join_at(1, 3);
        let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 1,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults);
        e.watch_events(1.0);
        assert_eq!(e.pending_events(), 0);
        e.run(2); // slots 0, 1: no transitions
        assert_eq!(e.drain_events(), vec![]);
        e.step(); // slot 2: node 0 crashes
        assert_eq!(
            e.drain_events(),
            vec![NodeEvent::Crashed {
                node: NodeId(0),
                slot: 2
            }]
        );
        // Move node 1 past the threshold before its join: the Moved event
        // must not fire for an absent node, and the join re-anchors it.
        e.positions_mut()[1] = Point::new(5.0, 0.0);
        e.step(); // slot 3: node 1 joins at its new position
        let events = e.drain_events();
        assert_eq!(
            events,
            vec![NodeEvent::Joined {
                node: NodeId(1),
                slot: 3
            }]
        );
        // Now drift it: one Moved event per threshold crossing.
        e.positions_mut()[1] = Point::new(6.5, 0.0);
        e.step();
        let events = e.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0],
            NodeEvent::Moved {
                node: NodeId(1),
                slot: 4,
                from: Point::new(5.0, 0.0),
                to: Point::new(6.5, 0.0),
            }
        );
        assert_eq!(events[0].node(), NodeId(1));
        assert_eq!(events[0].slot(), 4);
        // Sub-threshold drift stays silent.
        e.positions_mut()[1] = Point::new(6.9, 0.0);
        e.step();
        assert_eq!(e.drain_events(), vec![]);
    }

    #[test]
    fn watch_is_opt_in_and_anchors_at_install() {
        let mut e = two_node_setup(Channel::FIRST);
        e.step();
        assert_eq!(e.drain_events(), vec![], "no watch installed");
        // Install mid-run, then inject a crash: only the post-install
        // transition is reported.
        e.watch_events(0.5);
        let next = e.slot();
        e.faults_mut().crash_at(0, next);
        e.step();
        assert_eq!(
            e.drain_events(),
            vec![NodeEvent::Crashed {
                node: NodeId(0),
                slot: next
            }]
        );
    }

    #[test]
    fn zone_jam_drops_only_inside_blast_radius() {
        // Talker at the origin, one ear in the blast zone, one outside.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(-2.0, 0.0),
        ];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 9,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut faults = FaultPlan::none();
        faults.zone_jam(ZoneJam {
            center: Point::new(2.0, 0.0),
            radius: 1.0,
            channel: None,
            from: 0,
            to: u64::MAX,
        });
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults);
        e.step();
        match (&e.protocols()[1], &e.protocols()[2]) {
            (Role::Hear(hit), Role::Hear(clear)) => {
                assert!(
                    hit.heard.is_empty(),
                    "victim inside the zone decodes nothing"
                );
                assert_eq!(hit.noise_slots, 1, "the energy is still sensed");
                assert_eq!(clear.heard.len(), 1, "outside the zone life goes on");
            }
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().env_drops, 1);
        assert_eq!(e.metrics().receptions, 1);
    }

    #[test]
    fn sleeping_node_is_silent_but_not_lifecycle_churn() {
        use crate::fault::SleepSchedule;
        let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let protocols = vec![
            Role::Talk(Talker {
                channel: Channel::FIRST,
                msg: 3,
            }),
            Role::Hear(Ear::new(Channel::FIRST)),
        ];
        let mut faults = FaultPlan::none();
        // Awake slots {0,1}, asleep {2,3}, awake again at 4.
        faults.sleep(
            0,
            SleepSchedule {
                period: 4,
                on: 2,
                phase: 0,
            },
        );
        let mut e = Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults);
        e.watch_events(10.0);
        e.run(5);
        match &e.protocols()[1] {
            Role::Hear(ear) => {
                assert_eq!(ear.heard.len(), 3, "slots 0, 1, 4 deliver");
            }
            _ => unreachable!(),
        }
        assert_eq!(e.metrics().transmissions, 3);
        assert_eq!(
            e.drain_events(),
            vec![],
            "duty-cycle sleep is not crash/join churn"
        );
    }

    #[test]
    fn detector_flags_zone_jammed_listener_then_recovers() {
        use crate::detect::{DegradationDetector, DetectionEvent, DetectorConfig};
        let mk = || {
            let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
            let protocols = vec![
                Role::Talk(Talker {
                    channel: Channel::FIRST,
                    msg: 1,
                }),
                Role::Hear(Ear::new(Channel::FIRST)),
            ];
            let mut faults = FaultPlan::none();
            // The jam arrives at slot 20 and lifts at slot 60.
            faults.zone_jam(ZoneJam {
                center: Point::new(2.0, 0.0),
                radius: 1.0,
                channel: None,
                from: 20,
                to: 60,
            });
            Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults)
        };
        let mut plain = mk();
        let mut watched = mk();
        watched.attach_detector(DegradationDetector::new(2, DetectorConfig::default()));
        plain.run(100);
        watched.run(100);
        assert_eq!(
            plain.metrics(),
            watched.metrics(),
            "detection is observation only"
        );
        let events = watched.drain_detections();
        assert_eq!(events.len(), 2, "{events:?}");
        match events[0] {
            DetectionEvent::Degraded {
                node, slot, since, ..
            } => {
                assert_eq!(node, NodeId(1));
                assert_eq!(since, 20, "onset pinned to the jam's arrival");
                assert!(slot < 40, "flagged well before the jam lifts");
            }
            _ => panic!("expected Degraded first"),
        }
        match events[1] {
            DetectionEvent::Recovered { node, slot, .. } => {
                assert_eq!(node, NodeId(1));
                assert!(slot >= 60, "recovery only after the jam lifts");
            }
            _ => panic!("expected Recovered second"),
        }
        assert!(!watched.detector().unwrap().is_flagged(1));
        assert!(watched.detector_mut().is_some());
    }

    #[test]
    #[should_panic(expected = "one protocol per position")]
    fn mismatched_lengths_panic() {
        let _ = Engine::new(
            SinrParams::default(),
            vec![Point::ORIGIN],
            Vec::<Role>::new(),
            1,
        );
    }

    #[test]
    fn obs_recorder_never_perturbs_outcomes() {
        let mut plain = two_node_setup(Channel::FIRST);
        let mut observed = two_node_setup(Channel::FIRST);
        observed.attach_obs(mca_obs::Recorder::new());
        plain.run(5);
        observed.run(5);
        assert_eq!(plain.metrics(), observed.metrics());
        assert!(observed.take_obs().is_some());
        assert!(observed.obs().is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_records_phase_spans_and_channel_stream() {
        use mca_obs::SpanKind;
        let mut e = two_node_setup(Channel::FIRST);
        e.attach_obs(mca_obs::Recorder::new());
        e.run(3);
        let rec = e.obs().unwrap();
        // Six phase spans per slot plus at least one unit span.
        let slots = rec
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Slot)
            .count();
        assert_eq!(slots, 3);
        assert!(rec.spans().iter().any(|s| s.kind == SpanKind::Unit));
        // One active channel per slot, everyone on Channel::FIRST.
        let chans = rec.channel_records();
        assert_eq!(chans.len(), 3);
        assert!(chans
            .iter()
            .all(|c| c.channel == 0 && c.tx == 1 && c.listens == 1));
        // Phase spans account for (nearly) the whole slot.
        let report = rec.report();
        assert!(report.slot_coverage().unwrap() > 0.5);
        // The JSONL dump validates against the schema.
        for line in rec.to_jsonl().lines() {
            mca_obs::validate_jsonl_line(line).unwrap_or_else(|err| panic!("{err}: {line}"));
        }
    }
}
