//! # `mca-radio` — synchronous multi-channel SINR network simulator
//!
//! Executes distributed node programs under the model of
//! Halldórsson–Wang–Yu (PODC 2015), §2:
//!
//! * time is slotted and synchronized; per slot each node transmits or
//!   listens on **one** of `F` channels (or idles), and learns nothing about
//!   other channels;
//! * reception follows the SINR rule (Eq. 1), resolved by `mca-sinr`;
//! * listeners have receiver-side carrier sense (total power; signal power
//!   and SINR on success); transmitters get **no** feedback;
//! * nodes have unique ids, independent RNG streams, and only local state —
//!   the engine never leaks topology to protocols.
//!
//! Implement [`Protocol`] for a node program, then drive it with
//! [`Engine`]. Fault injection (crash-stop nodes, late joins, jammed
//! channels per the *t-disrupted* adversary) is available through
//! [`FaultPlan`].
//!
//! Reception is resolved per channel by the batched
//! [`ChannelResolver`](mca_sinr::ChannelResolver) (mode selected via
//! [`SinrParams::resolve`](mca_sinr::SinrParams)): the engine stages each
//! channel's transmitter/listener positions once per slot in reused dense
//! scratch buffers, keeps the resolver's spatial index alive across slots
//! ([`mca_sinr::ResolverCache`] — rebuilt only when the staged positions
//! change), and resolves the resulting (channel × shard) units — the
//! plane partitioned by [`Engine::with_shards`] into a [`ShardMap`]
//! maintained incrementally off lifecycle events — sequentially or in
//! parallel ([`Engine::with_par_channels`], [`Engine::with_par_shards`]).
//! Every combination is **bit-identical**: per-listener outcomes are pure
//! functions of the channel's transmitter set, so shard count, thread
//! count, and fan-out flags never change a result (the `MCA_FORCE_PAR=1`
//! override CI uses to prove it).
//!
//! The engine also exposes dynamic-environment hooks used by the
//! `mca-scenario` crate: [`Engine::positions_mut`] (mobility),
//! [`Engine::channel_conditions_mut`] (per-channel fading via
//! [`ChannelCondition`]), and [`Engine::faults_mut`] (runtime churn).
//! With none of these touched, a run is bit-identical to the static
//! engine of the original reproduction.
//!
//! For structure maintenance, [`Engine::watch_events`] surfaces lifecycle
//! transitions — crashes, late joins, and motion beyond a drift threshold —
//! as [`NodeEvent`]s that a maintainer drains with [`Engine::drain_events`]
//! instead of polling the fault plan and position vector. Orthogonally,
//! [`Engine::attach_detector`] installs a [`DegradationDetector`] that
//! watches per-slot delivery outcomes and flags SINR-level damage — jammed
//! zones, correlated deep fades, duty-cycled dominators — the structural
//! audit cannot see, as [`DetectionEvent`]s drained with
//! [`Engine::drain_detections`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod condition;
mod detect;
mod engine;
mod events;
mod fault;
mod ids;
mod message;
mod metrics;
mod node;
pub mod rng;
pub mod shard;
mod trace;

pub use condition::ChannelCondition;
pub use detect::{DegradationDetector, DetectionEvent, DetectorConfig};
pub use engine::{Engine, INLINE_CHANNEL_PAIRS};
pub use events::NodeEvent;
pub use fault::{FaultPlan, JamSpec, SleepSchedule, ZoneJam};
pub use ids::{Channel, NodeId};
pub use message::{Action, Observation, Reception};
pub use metrics::Metrics;
pub use node::Protocol;
pub use shard::ShardMap;
pub use trace::{TraceEvent, TraceRecorder};
