//! Node lifecycle events surfaced by the engine.
//!
//! Structure-maintenance layers (see `mca-core`'s `maintain` module) need to
//! know *when the world changed* — a node crashed, a late joiner powered on,
//! a mobile node drifted — without re-scanning the whole fault plan and
//! position vector every slot. [`Engine::watch_events`](crate::Engine::watch_events)
//! turns on an observer that detects these transitions as part of the normal
//! step and queues them as [`NodeEvent`]s; a maintainer drains the queue with
//! [`Engine::drain_events`](crate::Engine::drain_events) at whatever cadence
//! it repairs on, instead of polling.

use crate::ids::NodeId;
use mca_geom::Point;

/// One lifecycle transition observed by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeEvent {
    /// The node joined the network at `slot` (it was absent the slot
    /// before — a late joiner, per [`FaultPlan::join_at`](crate::FaultPlan::join_at)).
    Joined {
        /// The node that appeared.
        node: NodeId,
        /// First slot the node participates in.
        slot: u64,
    },
    /// The node crash-stopped at `slot` (present the slot before, absent
    /// from `slot` on).
    Crashed {
        /// The node that disappeared.
        node: NodeId,
        /// First slot the node is absent.
        slot: u64,
    },
    /// The node's position drifted more than the watch threshold from the
    /// last reported anchor. Continuous motion produces a stream of these,
    /// one per threshold crossing — coarse-grained, so a subscriber is not
    /// flooded with per-slot micro-motion.
    Moved {
        /// The node that moved.
        node: NodeId,
        /// Slot at which the threshold crossing was observed.
        slot: u64,
        /// The previous anchor position.
        from: Point,
        /// The position at the crossing (the new anchor).
        to: Point,
    },
}

impl NodeEvent {
    /// The node this event concerns.
    pub fn node(&self) -> NodeId {
        match *self {
            NodeEvent::Joined { node, .. }
            | NodeEvent::Crashed { node, .. }
            | NodeEvent::Moved { node, .. } => node,
        }
    }

    /// The slot the event was observed at.
    pub fn slot(&self) -> u64 {
        match *self {
            NodeEvent::Joined { slot, .. }
            | NodeEvent::Crashed { slot, .. }
            | NodeEvent::Moved { slot, .. } => slot,
        }
    }
}

/// The engine-side observer state behind [`NodeEvent`] detection: last-known
/// presence, per-node position anchors, and the pending event queue.
#[derive(Debug, Clone)]
pub(crate) struct EventWatch {
    /// Whether each node was present (joined and not crashed) at the last
    /// observed slot.
    present: Vec<bool>,
    /// Position each node's motion is measured against; reset on every
    /// [`NodeEvent::Moved`] emission and on (re)join.
    anchors: Vec<Point>,
    /// Drift (Euclidean distance from the anchor) that triggers a
    /// [`NodeEvent::Moved`] event.
    move_threshold: f64,
    /// Events observed since the last drain.
    events: Vec<NodeEvent>,
}

impl EventWatch {
    pub(crate) fn new(present: Vec<bool>, anchors: Vec<Point>, move_threshold: f64) -> Self {
        assert!(
            move_threshold.is_finite() && move_threshold > 0.0,
            "move threshold must be positive and finite, got {move_threshold}"
        );
        EventWatch {
            present,
            anchors,
            move_threshold,
            events: Vec::new(),
        }
    }

    /// Observes slot `slot`: `absent(i)` is the fault-plan verdict for the
    /// slot, `positions` the (possibly environment-mutated) positions.
    pub(crate) fn observe<F: Fn(usize) -> bool>(
        &mut self,
        slot: u64,
        positions: &[Point],
        absent: F,
    ) {
        for (i, &pos) in positions.iter().enumerate() {
            let now = !absent(i);
            let was = self.present[i];
            if now && !was {
                self.events.push(NodeEvent::Joined {
                    node: NodeId(i as u32),
                    slot,
                });
                // A (re)joining node anchors at its current position.
                self.anchors[i] = pos;
            } else if !now && was {
                self.events.push(NodeEvent::Crashed {
                    node: NodeId(i as u32),
                    slot,
                });
            }
            self.present[i] = now;
            if now {
                let anchor = self.anchors[i];
                if pos.dist_sq(anchor) > self.move_threshold * self.move_threshold {
                    self.events.push(NodeEvent::Moved {
                        node: NodeId(i as u32),
                        slot,
                        from: anchor,
                        to: pos,
                    });
                    self.anchors[i] = pos;
                }
            }
        }
    }

    pub(crate) fn drain(&mut self) -> Vec<NodeEvent> {
        std::mem::take(&mut self.events)
    }

    pub(crate) fn pending(&self) -> usize {
        self.events.len()
    }
}
