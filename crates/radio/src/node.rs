//! The node-program abstraction.

use crate::message::{Action, Observation};
use rand::rngs::SmallRng;

/// A distributed node program driven by the engine, one call pair per slot.
///
/// The engine calls [`Protocol::act`] at the start of each slot (collecting
/// every node's action *before* resolving the physical layer — synchronized
/// slots), then [`Protocol::observe`] with what the node experienced.
///
/// Implementations are state machines; they see only their own local state,
/// their RNG, and their observations — never the topology or other nodes'
/// state. This is what makes the simulation a faithful execution of a
/// distributed algorithm.
pub trait Protocol {
    /// The message type this protocol exchanges.
    type Msg: Clone;

    /// Decide this slot's action. `slot` is the global slot counter
    /// (all nodes start synchronized, per the paper's model).
    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<Self::Msg>;

    /// Receive the outcome of the slot.
    fn observe(&mut self, slot: u64, obs: Observation<Self::Msg>, rng: &mut SmallRng);

    /// Whether the node has terminated its protocol. Once `true`, the engine
    /// stops calling [`Protocol::act`] (the node stays silent) and a run
    /// driven by `run_until_done` may stop.
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Channel;

    /// A protocol that transmits its id forever — exercises the trait's
    /// default `is_done`.
    struct Chatter(u8);

    impl Protocol for Chatter {
        type Msg = u8;
        fn act(&mut self, _slot: u64, _rng: &mut SmallRng) -> Action<u8> {
            Action::Transmit {
                channel: Channel::FIRST,
                msg: self.0,
            }
        }
        fn observe(&mut self, _slot: u64, _obs: Observation<u8>, _rng: &mut SmallRng) {}
    }

    #[test]
    fn default_is_done_is_false() {
        let c = Chatter(1);
        assert!(!c.is_done());
    }
}
