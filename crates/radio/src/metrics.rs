//! Run metrics: slot, transmission, and reception accounting.

use std::fmt;

/// Counters accumulated by the engine over a run.
///
/// `slots` counts engine steps; the paper's *round* is a constant number of
/// slots defined by each protocol, so experiments convert via the protocol's
/// slots-per-round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Engine steps executed.
    pub slots: u64,
    /// Transmit actions.
    pub transmissions: u64,
    /// Listen actions.
    pub listens: u64,
    /// Idle actions (includes terminated nodes).
    pub idles: u64,
    /// Successful decodes delivered to listeners.
    pub receptions: u64,
    /// Listen slots that sensed power but decoded nothing (collision or
    /// out-of-range energy).
    pub busy_failures: u64,
    /// Listen slots on a completely silent channel.
    pub silent_listens: u64,
    /// Decodes suppressed by a dynamic channel condition (deep fade) — the
    /// SINR threshold was met but the environment dropped the reception.
    pub env_drops: u64,
    /// Per-channel transmission counts (index = channel).
    pub tx_per_channel: Vec<u64>,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records a transmission on `channel`.
    pub(crate) fn record_tx(&mut self, channel: usize) {
        self.transmissions += 1;
        if self.tx_per_channel.len() <= channel {
            self.tx_per_channel.resize(channel + 1, 0);
        }
        self.tx_per_channel[channel] += 1;
    }

    /// Fraction of listen slots that decoded a message.
    pub fn reception_rate(&self) -> f64 {
        if self.listens == 0 {
            0.0
        } else {
            self.receptions as f64 / self.listens as f64
        }
    }

    /// Decodes per transmission. The fraction of transmissions decoded by
    /// at least one listener is not cheaply measurable per-transmission,
    /// so this reports total decodes over total transmissions instead —
    /// it can exceed 1 when several listeners decode one sender.
    pub fn decodes_per_transmission(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.receptions as f64 / self.transmissions as f64
        }
    }

    /// Merges another metrics block into this one, element-wise:
    /// every counter sums, and `tx_per_channel` extends to cover the
    /// longer of the two before summing per channel. Combining runs or
    /// trials this way is exact — the result equals the metrics of the
    /// concatenated run.
    pub fn merge(&mut self, other: &Metrics) {
        self.slots += other.slots;
        self.transmissions += other.transmissions;
        self.listens += other.listens;
        self.idles += other.idles;
        self.receptions += other.receptions;
        self.busy_failures += other.busy_failures;
        self.silent_listens += other.silent_listens;
        self.env_drops += other.env_drops;
        if self.tx_per_channel.len() < other.tx_per_channel.len() {
            self.tx_per_channel.resize(other.tx_per_channel.len(), 0);
        }
        for (i, &v) in other.tx_per_channel.iter().enumerate() {
            self.tx_per_channel[i] += v;
        }
    }

    /// Alias for [`Metrics::merge`], kept for the multi-phase harness
    /// call sites that predate it.
    pub fn absorb(&mut self, other: &Metrics) {
        self.merge(other);
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slots={} tx={} rx={} busy={} rx-rate={:.3}",
            self.slots,
            self.transmissions,
            self.receptions,
            self.busy_failures,
            self.reception_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tx_grows_channels() {
        let mut m = Metrics::new();
        m.record_tx(3);
        m.record_tx(0);
        m.record_tx(3);
        assert_eq!(m.transmissions, 3);
        assert_eq!(m.tx_per_channel, vec![1, 0, 0, 2]);
    }

    #[test]
    fn rates() {
        let mut m = Metrics::new();
        assert_eq!(m.reception_rate(), 0.0);
        assert_eq!(m.decodes_per_transmission(), 0.0);
        m.listens = 10;
        m.receptions = 4;
        m.transmissions = 2;
        assert!((m.reception_rate() - 0.4).abs() < 1e-12);
        assert!((m.decodes_per_transmission() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_everything() {
        let mut a = Metrics::new();
        a.record_tx(0);
        a.slots = 5;
        a.listens = 2;
        let mut b = Metrics::new();
        b.record_tx(2);
        b.slots = 3;
        b.receptions = 1;
        a.absorb(&b);
        assert_eq!(a.slots, 8);
        assert_eq!(a.transmissions, 2);
        assert_eq!(a.receptions, 1);
        assert_eq!(a.tx_per_channel, vec![1, 0, 1]);
    }

    #[test]
    fn merge_is_element_wise_over_every_counter() {
        let mut a = Metrics {
            slots: 1,
            transmissions: 2,
            listens: 3,
            idles: 4,
            receptions: 5,
            busy_failures: 6,
            silent_listens: 7,
            env_drops: 8,
            tx_per_channel: vec![1, 2],
        };
        let b = Metrics {
            slots: 10,
            transmissions: 20,
            listens: 30,
            idles: 40,
            receptions: 50,
            busy_failures: 60,
            silent_listens: 70,
            env_drops: 80,
            tx_per_channel: vec![100],
        };
        a.merge(&b);
        let want = Metrics {
            slots: 11,
            transmissions: 22,
            listens: 33,
            idles: 44,
            receptions: 55,
            busy_failures: 66,
            silent_listens: 77,
            env_drops: 88,
            tx_per_channel: vec![101, 2],
        };
        assert_eq!(a, want);
    }

    #[test]
    fn merge_extends_tx_per_channel() {
        let mut a = Metrics::new();
        a.record_tx(0);
        let mut b = Metrics::new();
        b.record_tx(3);
        a.merge(&b);
        assert_eq!(a.tx_per_channel, vec![1, 0, 0, 1]);
        // And the shorter-into-longer direction keeps the tail.
        let mut c = Metrics::new();
        c.record_tx(5);
        c.merge(&a);
        assert_eq!(c.tx_per_channel, vec![1, 0, 0, 1, 0, 1]);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut a = Metrics::new();
        a.record_tx(1);
        a.slots = 9;
        let before = a.clone();
        a.merge(&Metrics::default());
        assert_eq!(a, before);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Metrics::new()).is_empty());
    }
}
