//! Run metrics: slot, transmission, and reception accounting.

use std::fmt;

/// Counters accumulated by the engine over a run.
///
/// `slots` counts engine steps; the paper's *round* is a constant number of
/// slots defined by each protocol, so experiments convert via the protocol's
/// slots-per-round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Engine steps executed.
    pub slots: u64,
    /// Transmit actions.
    pub transmissions: u64,
    /// Listen actions.
    pub listens: u64,
    /// Idle actions (includes terminated nodes).
    pub idles: u64,
    /// Successful decodes delivered to listeners.
    pub receptions: u64,
    /// Listen slots that sensed power but decoded nothing (collision or
    /// out-of-range energy).
    pub busy_failures: u64,
    /// Listen slots on a completely silent channel.
    pub silent_listens: u64,
    /// Decodes suppressed by a dynamic channel condition (deep fade) — the
    /// SINR threshold was met but the environment dropped the reception.
    pub env_drops: u64,
    /// Per-channel transmission counts (index = channel).
    pub tx_per_channel: Vec<u64>,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records a transmission on `channel`.
    pub(crate) fn record_tx(&mut self, channel: usize) {
        self.transmissions += 1;
        if self.tx_per_channel.len() <= channel {
            self.tx_per_channel.resize(channel + 1, 0);
        }
        self.tx_per_channel[channel] += 1;
    }

    /// Fraction of listen slots that decoded a message.
    pub fn reception_rate(&self) -> f64 {
        if self.listens == 0 {
            0.0
        } else {
            self.receptions as f64 / self.listens as f64
        }
    }

    /// Fraction of transmissions that were decoded by at least… — not
    /// measurable per-transmission cheaply; this reports decodes per
    /// transmission (can exceed 1 when several listeners decode one sender).
    pub fn decodes_per_transmission(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.receptions as f64 / self.transmissions as f64
        }
    }

    /// Merges another metrics block into this one (for multi-phase runs).
    pub fn absorb(&mut self, other: &Metrics) {
        self.slots += other.slots;
        self.transmissions += other.transmissions;
        self.listens += other.listens;
        self.idles += other.idles;
        self.receptions += other.receptions;
        self.busy_failures += other.busy_failures;
        self.silent_listens += other.silent_listens;
        self.env_drops += other.env_drops;
        if self.tx_per_channel.len() < other.tx_per_channel.len() {
            self.tx_per_channel.resize(other.tx_per_channel.len(), 0);
        }
        for (i, &v) in other.tx_per_channel.iter().enumerate() {
            self.tx_per_channel[i] += v;
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slots={} tx={} rx={} busy={} rx-rate={:.3}",
            self.slots,
            self.transmissions,
            self.receptions,
            self.busy_failures,
            self.reception_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tx_grows_channels() {
        let mut m = Metrics::new();
        m.record_tx(3);
        m.record_tx(0);
        m.record_tx(3);
        assert_eq!(m.transmissions, 3);
        assert_eq!(m.tx_per_channel, vec![1, 0, 0, 2]);
    }

    #[test]
    fn rates() {
        let mut m = Metrics::new();
        assert_eq!(m.reception_rate(), 0.0);
        assert_eq!(m.decodes_per_transmission(), 0.0);
        m.listens = 10;
        m.receptions = 4;
        m.transmissions = 2;
        assert!((m.reception_rate() - 0.4).abs() < 1e-12);
        assert!((m.decodes_per_transmission() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_everything() {
        let mut a = Metrics::new();
        a.record_tx(0);
        a.slots = 5;
        a.listens = 2;
        let mut b = Metrics::new();
        b.record_tx(2);
        b.slots = 3;
        b.receptions = 1;
        a.absorb(&b);
        assert_eq!(a.slots, 8);
        assert_eq!(a.transmissions, 2);
        assert_eq!(a.receptions, 1);
        assert_eq!(a.tx_per_channel, vec![1, 0, 1]);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Metrics::new()).is_empty());
    }
}
