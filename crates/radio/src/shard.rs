//! Spatial sharding of the simulation plane.
//!
//! A [`ShardMap`] partitions the deployment's bounding box into an `S×S`
//! grid of shards and maintains a node→shard assignment. The engine's
//! sharded Phase 2 ([`Engine::with_shards`](crate::Engine::with_shards))
//! groups each channel's listeners by shard and resolves the resulting
//! (channel × shard) units independently — sequentially or, with
//! [`Engine::with_par_shards`](crate::Engine::with_par_shards), across
//! threads — merging outcomes in deterministic shard-major order.
//!
//! # The assignment is a hint, never an input to physics
//!
//! Reception is resolved per listener by a pure function of the channel's
//! transmitter set (`mca-sinr`'s `ChannelResolver`/`TaskResolver`), so
//! *which* shard a listener is grouped under affects cache locality and
//! parallel granularity — never a single output bit. That is what lets the
//! assignment be maintained **incrementally** off the engine's
//! [`NodeEvent`](crate::NodeEvent) stream (motion beyond a threshold,
//! joins) instead of being recomputed from positions every slot: a node
//! that has drifted sub-threshold is simply resolved under its last
//! shard's task, whose halo classification is computed from the task's
//! *actual* listener bounding box and therefore stays sound.

use mca_geom::{BoundingBox, Point};

/// Hard cap on shards per axis (the scratch the engine's bucketing pass
/// keeps is `S² + 1` counters).
pub const MAX_SHARDS_PER_AXIS: u16 = 64;

/// Target minimum listeners per resolve unit: a channel's shard grid is
/// coarsened (see [`effective_shards`]) until the *expected* unit size
/// reaches this, so per-unit scheduling overhead (bucketing, bounding
/// box, halo classification) stays amortized. A channel therefore shards
/// at all only with at least `4 · MIN_UNIT_RX` listeners (the smallest
/// count whose effective grid reaches 2×2); below that it resolves as a
/// single unit. Execution-only: whether and how finely sharding engages
/// never changes an outcome. Shared by the engine and
/// `experiments bench-shards` so the benchmark measures exactly the
/// engine's policy.
pub const MIN_UNIT_RX: usize = 32;

/// Effective shards per axis for a channel with `rx` listeners: the
/// configured `s`, coarsened so `rx / s_eff²` stays at or above
/// [`MIN_UNIT_RX`]. Returns 1 (a single unit) for small channels. A pure
/// function of the two counts — which grid a channel resolves under is
/// an execution choice and never changes an outcome.
pub fn effective_shards(s: u16, rx: usize) -> u16 {
    let cap = ((rx / MIN_UNIT_RX) as f64).sqrt() as u16;
    s.min(cap).max(1)
}

/// An `S×S` spatial partition of the plane with a per-node assignment.
///
/// # Examples
///
/// ```
/// use mca_radio::ShardMap;
/// use mca_geom::Point;
///
/// let positions = vec![Point::new(0.0, 0.0), Point::new(9.0, 9.0)];
/// let map = ShardMap::new(2, &positions);
/// assert_eq!(map.shards(), 2);
/// assert_ne!(map.shard_of(0), map.shard_of(1));
/// ```
#[derive(Debug, Clone)]
pub struct ShardMap {
    s: u16,
    bounds: BoundingBox,
    inv_w: f64,
    inv_h: f64,
    assign: Vec<u16>,
}

impl ShardMap {
    /// Partitions the bounding box of `positions` into `s × s` shards and
    /// assigns every node to the shard containing its position.
    ///
    /// # Panics
    ///
    /// Panics if `s` is 0 or exceeds [`MAX_SHARDS_PER_AXIS`], or if any
    /// position is non-finite.
    pub fn new(s: u16, positions: &[Point]) -> Self {
        assert!(
            (1..=MAX_SHARDS_PER_AXIS).contains(&s),
            "shard count per axis must lie in 1..={MAX_SHARDS_PER_AXIS}, got {s}"
        );
        for (i, p) in positions.iter().enumerate() {
            assert!(p.is_finite(), "node {i} has a non-finite position");
        }
        let bounds = BoundingBox::from_points(positions.iter().copied())
            .unwrap_or_else(|| BoundingBox::square(1.0));
        // Degenerate extents (all nodes colinear or coincident) still get a
        // well-defined partition: every inverse stays finite.
        let inv_w = f64::from(s) / bounds.width().max(f64::MIN_POSITIVE);
        let inv_h = f64::from(s) / bounds.height().max(f64::MIN_POSITIVE);
        let mut map = ShardMap {
            s,
            bounds,
            inv_w,
            inv_h,
            assign: Vec::new(),
        };
        map.assign = positions.iter().map(|&p| map.locate(p)).collect();
        map
    }

    /// Shards per axis (`S`; the partition has `S²` shards).
    pub fn shards(&self) -> u16 {
        self.s
    }

    /// Total number of shards (`S²`).
    pub fn shard_count(&self) -> usize {
        usize::from(self.s) * usize::from(self.s)
    }

    /// Number of assigned nodes.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// Whether no nodes are assigned.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// The partitioned area (the deployment bounding box at build time).
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// Shard side lengths `(width, height)`.
    pub fn shard_size(&self) -> (f64, f64) {
        (
            self.bounds.width().max(f64::MIN_POSITIVE) / f64::from(self.s),
            self.bounds.height().max(f64::MIN_POSITIVE) / f64::from(self.s),
        )
    }

    /// The shard id containing `p` (positions outside the bounds clamp to
    /// the nearest boundary shard).
    pub fn locate(&self, p: Point) -> u16 {
        let s = usize::from(self.s);
        let cx = (((p.x - self.bounds.min().x) * self.inv_w) as usize).min(s - 1);
        let cy = (((p.y - self.bounds.min().y) * self.inv_h) as usize).min(s - 1);
        (cy * s + cx) as u16
    }

    /// The node's current shard assignment.
    #[inline]
    pub fn shard_of(&self, node: u32) -> u16 {
        self.assign[node as usize]
    }

    /// The node's shard under a coarsened `s_eff × s_eff` view of this
    /// map's grid (`s_eff ≤ S`; see [`effective_shards`]): full-grid
    /// columns/rows merge evenly into coarse ones, so nearby shards stay
    /// nearby.
    #[inline]
    pub fn coarse_shard_of(&self, node: u32, s_eff: u16) -> u16 {
        debug_assert!((1..=self.s).contains(&s_eff));
        let sid = self.assign[node as usize];
        let (sx, sy) = (sid % self.s, sid / self.s);
        (sy * s_eff / self.s) * s_eff + sx * s_eff / self.s
    }

    /// Reassigns `node` to the shard containing `p` — the incremental
    /// update applied when the engine observes a
    /// [`NodeEvent::Moved`](crate::NodeEvent::Moved) or
    /// [`NodeEvent::Joined`](crate::NodeEvent::Joined) for it.
    pub fn reassign(&mut self, node: u32, p: Point) {
        let sid = self.locate(p);
        self.assign[node as usize] = sid;
    }

    /// The rectangle of shard `sid` (edge shards conceptually extend
    /// beyond the bounds; this is the in-bounds rectangle).
    pub fn rect(&self, sid: u16) -> BoundingBox {
        let s = usize::from(self.s);
        let (w, h) = self.shard_size();
        let (cx, cy) = (usize::from(sid) % s, usize::from(sid) / s);
        let min = Point::new(
            self.bounds.min().x + cx as f64 * w,
            self.bounds.min().y + cy as f64 * h,
        );
        BoundingBox::new(min, Point::new(min.x + w, min.y + h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn partition_covers_and_clamps() {
        let mut rng = SmallRng::seed_from_u64(5);
        let positions: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0)))
            .collect();
        let map = ShardMap::new(4, &positions);
        assert_eq!(map.len(), 200);
        assert_eq!(map.shard_count(), 16);
        for (i, &p) in positions.iter().enumerate() {
            let sid = map.shard_of(i as u32);
            assert!(usize::from(sid) < 16);
            assert_eq!(sid, map.locate(p));
            // The in-bounds rectangle of the assigned shard contains the
            // point up to boundary ties (locate uses half-open cells).
            let r = map.rect(sid).inflated(1e-9);
            assert!(r.contains(p), "node {i} at {p:?} outside shard {sid}");
        }
        // Points far outside clamp to boundary shards.
        assert_eq!(map.locate(Point::new(-100.0, -100.0)), 0);
        assert_eq!(map.locate(Point::new(1e6, 1e6)), 15);
    }

    #[test]
    fn reassign_follows_motion() {
        let positions = vec![Point::new(1.0, 1.0), Point::new(9.0, 9.0)];
        let mut map = ShardMap::new(2, &positions);
        let before = map.shard_of(0);
        map.reassign(0, Point::new(9.0, 9.0));
        assert_ne!(map.shard_of(0), before);
        assert_eq!(map.shard_of(0), map.shard_of(1));
    }

    #[test]
    fn degenerate_geometries_are_fine() {
        // Single node, coincident nodes, a perfect line: all partition.
        for positions in [
            vec![Point::new(3.0, 3.0)],
            vec![Point::new(1.0, 1.0); 5],
            (0..10).map(|i| Point::new(i as f64, 2.0)).collect(),
        ] {
            let map = ShardMap::new(3, &positions);
            for i in 0..positions.len() {
                assert!(usize::from(map.shard_of(i as u32)) < 9);
            }
        }
        let empty = ShardMap::new(2, &[]);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "shard count per axis")]
    fn zero_shards_rejected() {
        ShardMap::new(0, &[]);
    }
}
