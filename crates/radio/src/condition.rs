//! Dynamic per-channel conditions set by an environment model.
//!
//! Unlike [`FaultPlan`](crate::FaultPlan) jamming — a *plan* fixed before
//! the run — channel conditions are mutable engine state that a dynamic
//! environment (e.g. a Gilbert–Elliot fading process in `mca-scenario`)
//! rewrites between slots. The engine consults the condition of each
//! channel when resolving receptions: `extra_interference` is fed to the
//! SINR denominator and the listener's carrier sense, and `drop` suppresses
//! successful decodes outright (deep-fade loss), which listeners observe as
//! a busy channel.

/// The condition of one channel for the current slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelCondition {
    /// Interference power added at every listener on the channel (from
    /// outside the simulated transmitter set).
    pub extra_interference: f64,
    /// When `true`, receptions on the channel are dropped even if the SINR
    /// threshold is met (deep fade); listeners sense the energy but decode
    /// nothing.
    pub drop: bool,
}

impl ChannelCondition {
    /// A clear channel: no extra interference, no drops.
    pub const CLEAR: ChannelCondition = ChannelCondition {
        extra_interference: 0.0,
        drop: false,
    };

    /// A degraded channel adding `power` interference at every listener.
    pub fn interfered(power: f64) -> Self {
        ChannelCondition {
            extra_interference: power,
            drop: false,
        }
    }

    /// A deep fade: energy `power` is sensed but nothing decodes.
    pub fn dropped(power: f64) -> Self {
        ChannelCondition {
            extra_interference: power,
            drop: true,
        }
    }

    /// Whether this condition affects the channel at all.
    pub fn is_clear(&self) -> bool {
        self.extra_interference <= 0.0 && !self.drop
    }
}

impl Default for ChannelCondition {
    fn default() -> Self {
        ChannelCondition::CLEAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_clearness() {
        assert!(ChannelCondition::CLEAR.is_clear());
        assert!(ChannelCondition::default().is_clear());
        let i = ChannelCondition::interfered(2.0);
        assert!(!i.is_clear());
        assert!(!i.drop);
        let d = ChannelCondition::dropped(0.0);
        assert!(!d.is_clear());
        assert!(d.drop);
    }
}
