//! Failure injection: crash-stop nodes and jammed channels.
//!
//! Extensions beyond the paper's fault-free model, motivated by its related
//! work on disrupted channels (Dolev et al., DISC'11, cited as [9]): an
//! adversary may disrupt up to `t` channels per slot. Experiments A2 uses
//! these to probe the robustness of the aggregation structure.

use crate::rng::mix64;
use mca_geom::Point;
use std::collections::HashMap;

/// A channel-jamming specification.
#[derive(Debug, Clone, PartialEq)]
pub enum JamSpec {
    /// Jam a fixed channel for the slot interval `[from, to)` with the given
    /// interference power at every listener.
    Fixed {
        /// Channel index to jam.
        channel: u16,
        /// First jammed slot.
        from: u64,
        /// One past the last jammed slot.
        to: u64,
        /// Interference power added at every listener on the channel.
        power: f64,
    },
    /// Each slot, jam `t` channels chosen pseudo-randomly (seeded, hence
    /// reproducible) out of `total` channels — the *t-disrupted* adversary.
    Random {
        /// Number of channels disrupted per slot.
        t: u16,
        /// Total number of channels the adversary picks from.
        total: u16,
        /// Interference power added on disrupted channels.
        power: f64,
        /// Adversary seed.
        seed: u64,
    },
}

impl JamSpec {
    /// Jamming power this spec contributes on `channel` at `slot`.
    pub fn power_at(&self, channel: u16, slot: u64) -> f64 {
        match *self {
            JamSpec::Fixed {
                channel: ch,
                from,
                to,
                power,
            } => {
                if ch == channel && slot >= from && slot < to {
                    power
                } else {
                    0.0
                }
            }
            JamSpec::Random {
                t,
                total,
                power,
                seed,
            } => {
                if total == 0 || channel >= total {
                    return 0.0;
                }
                // Rank channels by a per-slot hash; the t smallest are jammed.
                // This gives exactly t distinct disrupted channels per slot.
                let my_rank = mix64(seed ^ mix64(slot) ^ (channel as u64) << 32);
                let mut smaller = 0u16;
                for c in 0..total {
                    if c == channel {
                        continue;
                    }
                    let r = mix64(seed ^ mix64(slot) ^ (c as u64) << 32);
                    if r < my_rank || (r == my_rank && c < channel) {
                        smaller += 1;
                    }
                }
                if smaller < t {
                    power
                } else {
                    0.0
                }
            }
        }
    }
}

/// A periodic per-node power-down schedule.
///
/// Distinct from crash-stop: a sleeping node is powered off for the back
/// half of every period (it neither transmits, listens, nor observes, like
/// an absent node) but **returns with its protocol state intact** and does
/// not count as a lifecycle transition — see
/// [`FaultPlan::is_lifecycle_absent`]. Models duty-cycled radios saving
/// energy on a fixed phase/period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepSchedule {
    /// Cycle length in slots.
    pub period: u64,
    /// Slots awake at the start of each cycle; the remaining
    /// `period - on` slots are spent asleep. `on >= period` never sleeps.
    pub on: u64,
    /// Phase offset in slots (staggers schedules across nodes).
    pub phase: u64,
}

impl SleepSchedule {
    /// Whether the schedule has the node powered down at `slot`.
    pub fn asleep_at(&self, slot: u64) -> bool {
        self.period > 0 && self.on < self.period && (slot + self.phase) % self.period >= self.on
    }
}

/// A spatially-scoped jammer: receptions decoded by listeners inside
/// `radius` of `center` during `[from, to)` are destroyed (a deep fade at
/// the victim — the energy was still sensed, so the listener observes a
/// busy channel). Unlike [`JamSpec`], which degrades a whole channel
/// everywhere, a zone jam follows a *position* — the mechanism behind the
/// mobile tracking jammer in `mca-scenario`, which rewrites `center` each
/// epoch to sit on the densest live cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneJam {
    /// Jammer position.
    pub center: Point,
    /// Blast radius: listeners strictly within this distance are hit.
    pub radius: f64,
    /// Restrict the jam to one channel (`None` hits every channel).
    pub channel: Option<u16>,
    /// First jammed slot.
    pub from: u64,
    /// One past the last jammed slot.
    pub to: u64,
}

impl ZoneJam {
    /// Whether a listener at `pos` on `channel` is inside the jam at `slot`.
    pub fn hits(&self, pos: Point, channel: u16, slot: u64) -> bool {
        slot >= self.from
            && slot < self.to
            && self.channel.is_none_or(|c| c == channel)
            && pos.dist_sq(self.center) < self.radius * self.radius
    }
}

/// A plan of faults injected into a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    crashes: HashMap<u32, u64>,
    joins: HashMap<u32, u64>,
    jams: Vec<JamSpec>,
    sleeps: HashMap<u32, SleepSchedule>,
    zone_jams: Vec<ZoneJam>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Crash-stops node `node` from slot `slot` onward (it neither
    /// transmits nor listens after that).
    pub fn crash_at(&mut self, node: u32, slot: u64) -> &mut Self {
        self.crashes.insert(node, slot);
        self
    }

    /// Delays node `node`'s join until slot `slot`: before that it is not
    /// part of the network (it neither transmits, listens, nor observes).
    /// Models churn — devices powering on after the run has started.
    pub fn join_at(&mut self, node: u32, slot: u64) -> &mut Self {
        self.joins.insert(node, slot);
        self
    }

    /// Adds a jamming spec.
    pub fn jam(&mut self, spec: JamSpec) -> &mut Self {
        self.jams.push(spec);
        self
    }

    /// Puts node `node` on a duty-cycle sleep schedule (replacing any
    /// previous schedule for the node).
    pub fn sleep(&mut self, node: u32, schedule: SleepSchedule) -> &mut Self {
        self.sleeps.insert(node, schedule);
        self
    }

    /// Adds a zone jam and returns its index, so an environment model that
    /// owns the jammer can re-target it later via
    /// [`FaultPlan::zone_jams_mut`].
    pub fn zone_jam(&mut self, jam: ZoneJam) -> usize {
        self.zone_jams.push(jam);
        self.zone_jams.len() - 1
    }

    /// Whether `node` is crashed at `slot`.
    pub fn is_crashed(&self, node: u32, slot: u64) -> bool {
        self.crashes.get(&node).is_some_and(|&s| slot >= s)
    }

    /// Whether `node` has joined the network by `slot` (true unless a
    /// [`FaultPlan::join_at`] entry delays it).
    pub fn has_joined(&self, node: u32, slot: u64) -> bool {
        self.joins.get(&node).is_none_or(|&s| slot >= s)
    }

    /// Whether `node` is powered down by a duty-cycle schedule at `slot`.
    pub fn is_asleep(&self, node: u32, slot: u64) -> bool {
        self.sleeps.get(&node).is_some_and(|s| s.asleep_at(slot))
    }

    /// Whether `node`'s *lifecycle* keeps it out of `slot` — crashed, or
    /// not yet joined. Excludes duty-cycle sleep: a sleeping node is a
    /// temporary power-down that returns with state, not a membership
    /// change, so lifecycle observers
    /// ([`crate::Engine::watch_events`]) do not report it.
    pub fn is_lifecycle_absent(&self, node: u32, slot: u64) -> bool {
        self.is_crashed(node, slot) || !self.has_joined(node, slot)
    }

    /// Whether `node` takes no part in `slot` — crashed, not yet joined,
    /// or asleep on its duty cycle.
    pub fn is_absent(&self, node: u32, slot: u64) -> bool {
        self.is_lifecycle_absent(node, slot) || self.is_asleep(node, slot)
    }

    /// Total jamming power on `channel` at `slot`.
    pub fn jam_power(&self, channel: u16, slot: u64) -> f64 {
        self.jams.iter().map(|j| j.power_at(channel, slot)).sum()
    }

    /// Whether any zone jam destroys receptions for a listener at `pos` on
    /// `channel` at `slot`.
    pub fn zone_drop(&self, pos: Point, channel: u16, slot: u64) -> bool {
        self.zone_jams.iter().any(|z| z.hits(pos, channel, slot))
    }

    /// Whether the plan injects anything at all.
    pub fn is_trivial(&self) -> bool {
        self.crashes.is_empty()
            && self.joins.is_empty()
            && self.jams.is_empty()
            && self.sleeps.is_empty()
            && self.zone_jams.is_empty()
    }

    /// The scheduled crash-stops as `(node, slot)` pairs, sorted by node —
    /// a deterministic view for serialization and reporting.
    pub fn crash_events(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.crashes.iter().map(|(&n, &s)| (n, s)).collect();
        v.sort_unstable();
        v
    }

    /// The scheduled late joins as `(node, slot)` pairs, sorted by node.
    pub fn join_events(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.joins.iter().map(|(&n, &s)| (n, s)).collect();
        v.sort_unstable();
        v
    }

    /// The jamming specs, in insertion order.
    pub fn jams(&self) -> &[JamSpec] {
        &self.jams
    }

    /// The duty-cycle schedules as `(node, schedule)` pairs, sorted by
    /// node — a deterministic view for serialization and reporting.
    pub fn sleep_schedules(&self) -> Vec<(u32, SleepSchedule)> {
        let mut v: Vec<(u32, SleepSchedule)> = self.sleeps.iter().map(|(&n, &s)| (n, s)).collect();
        v.sort_unstable_by_key(|&(n, _)| n);
        v
    }

    /// The zone jams, in insertion order.
    pub fn zone_jams(&self) -> &[ZoneJam] {
        &self.zone_jams
    }

    /// Mutable zone jams — how a tracking-jammer environment model
    /// re-targets the jam it installed between slots.
    pub fn zone_jams_mut(&mut self) -> &mut [ZoneJam] {
        &mut self.zone_jams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan() {
        let p = FaultPlan::none();
        assert!(p.is_trivial());
        assert!(!p.is_crashed(0, 100));
        assert_eq!(p.jam_power(0, 100), 0.0);
    }

    #[test]
    fn crash_takes_effect_at_slot() {
        let mut p = FaultPlan::none();
        p.crash_at(3, 10);
        assert!(!p.is_crashed(3, 9));
        assert!(p.is_crashed(3, 10));
        assert!(p.is_crashed(3, 11));
        assert!(!p.is_crashed(4, 11));
        assert!(!p.is_trivial());
    }

    #[test]
    fn join_takes_effect_at_slot() {
        let mut p = FaultPlan::none();
        p.join_at(2, 5);
        assert!(!p.has_joined(2, 4));
        assert!(p.is_absent(2, 4));
        assert!(p.has_joined(2, 5));
        assert!(!p.is_absent(2, 5));
        // Nodes without an entry are joined from slot 0.
        assert!(p.has_joined(0, 0));
        assert!(!p.is_trivial());
    }

    #[test]
    fn join_then_crash_lifecycle() {
        let mut p = FaultPlan::none();
        p.join_at(7, 10);
        p.crash_at(7, 20);
        assert!(p.is_absent(7, 9), "not yet joined");
        assert!(!p.is_absent(7, 15), "alive between join and crash");
        assert!(p.is_absent(7, 20), "crashed");
    }

    #[test]
    fn fixed_jam_window() {
        let spec = JamSpec::Fixed {
            channel: 2,
            from: 5,
            to: 8,
            power: 1.5,
        };
        assert_eq!(spec.power_at(2, 4), 0.0);
        assert_eq!(spec.power_at(2, 5), 1.5);
        assert_eq!(spec.power_at(2, 7), 1.5);
        assert_eq!(spec.power_at(2, 8), 0.0);
        assert_eq!(spec.power_at(1, 6), 0.0);
    }

    #[test]
    fn random_jam_hits_exactly_t_channels() {
        let spec = JamSpec::Random {
            t: 3,
            total: 16,
            power: 2.0,
            seed: 99,
        };
        for slot in 0..50 {
            let jammed: Vec<u16> = (0..16).filter(|&c| spec.power_at(c, slot) > 0.0).collect();
            assert_eq!(jammed.len(), 3, "slot {slot}: {jammed:?}");
        }
        // Different slots jam different sets (overwhelmingly likely).
        let s0: Vec<u16> = (0..16).filter(|&c| spec.power_at(c, 0) > 0.0).collect();
        let any_diff = (1..20).any(|s| {
            let v: Vec<u16> = (0..16).filter(|&c| spec.power_at(c, s) > 0.0).collect();
            v != s0
        });
        assert!(any_diff);
    }

    #[test]
    fn random_jam_out_of_range_channel() {
        let spec = JamSpec::Random {
            t: 2,
            total: 4,
            power: 2.0,
            seed: 1,
        };
        assert_eq!(spec.power_at(10, 0), 0.0);
    }

    #[test]
    fn event_views_are_sorted_and_complete() {
        let mut p = FaultPlan::none();
        p.crash_at(9, 30);
        p.crash_at(2, 10);
        p.join_at(5, 4);
        p.jam(JamSpec::Fixed {
            channel: 1,
            from: 0,
            to: 5,
            power: 1.0,
        });
        assert_eq!(p.crash_events(), vec![(2, 10), (9, 30)]);
        assert_eq!(p.join_events(), vec![(5, 4)]);
        assert_eq!(p.jams().len(), 1);
    }

    #[test]
    fn sleep_schedule_cycles_and_staggers() {
        let s = SleepSchedule {
            period: 10,
            on: 6,
            phase: 0,
        };
        for slot in 0..6 {
            assert!(!s.asleep_at(slot), "slot {slot} should be awake");
        }
        for slot in 6..10 {
            assert!(s.asleep_at(slot), "slot {slot} should be asleep");
        }
        assert!(!s.asleep_at(10), "next cycle starts awake");
        // Phase shifts the window; on >= period never sleeps.
        let shifted = SleepSchedule {
            period: 10,
            on: 6,
            phase: 4,
        };
        assert!(shifted.asleep_at(2));
        assert!(!shifted.asleep_at(6));
        let always_on = SleepSchedule {
            period: 10,
            on: 10,
            phase: 3,
        };
        assert!((0..40).all(|s| !always_on.asleep_at(s)));
    }

    #[test]
    fn sleep_is_absent_but_not_lifecycle_absent() {
        let mut p = FaultPlan::none();
        p.sleep(
            4,
            SleepSchedule {
                period: 8,
                on: 4,
                phase: 0,
            },
        );
        assert!(!p.is_trivial());
        assert!(!p.is_absent(4, 3));
        assert!(p.is_absent(4, 5));
        assert!(p.is_asleep(4, 5));
        assert!(
            !p.is_lifecycle_absent(4, 5),
            "sleep is not a membership change"
        );
        // A crash still counts for both views.
        p.crash_at(4, 100);
        assert!(p.is_lifecycle_absent(4, 100));
        assert!(p.is_absent(4, 100));
        assert_eq!(p.sleep_schedules().len(), 1);
        assert_eq!(p.sleep_schedules()[0].0, 4);
    }

    #[test]
    fn zone_jam_hits_by_position_channel_and_window() {
        let mut p = FaultPlan::none();
        let idx = p.zone_jam(ZoneJam {
            center: Point::new(5.0, 5.0),
            radius: 2.0,
            channel: Some(1),
            from: 10,
            to: 20,
        });
        assert_eq!(idx, 0);
        assert!(!p.is_trivial());
        let inside = Point::new(5.5, 5.0);
        let outside = Point::new(8.0, 5.0);
        assert!(p.zone_drop(inside, 1, 10));
        assert!(!p.zone_drop(inside, 1, 9), "before the window");
        assert!(!p.zone_drop(inside, 1, 20), "after the window");
        assert!(!p.zone_drop(inside, 0, 15), "other channel");
        assert!(!p.zone_drop(outside, 1, 15), "out of range");
        // Re-targeting moves the blast zone.
        p.zone_jams_mut()[0].center = Point::new(8.0, 5.0);
        assert!(p.zone_drop(outside, 1, 15));
        assert!(!p.zone_drop(inside, 1, 15));
        // An all-channel jam hits every channel.
        p.zone_jams_mut()[0].channel = None;
        assert!(p.zone_drop(outside, 7, 15));
    }

    #[test]
    fn plan_sums_jammers() {
        let mut p = FaultPlan::none();
        p.jam(JamSpec::Fixed {
            channel: 0,
            from: 0,
            to: 10,
            power: 1.0,
        });
        p.jam(JamSpec::Fixed {
            channel: 0,
            from: 5,
            to: 10,
            power: 2.0,
        });
        assert_eq!(p.jam_power(0, 3), 1.0);
        assert_eq!(p.jam_power(0, 7), 3.0);
    }
}
