//! Failure injection: crash-stop nodes and jammed channels.
//!
//! Extensions beyond the paper's fault-free model, motivated by its related
//! work on disrupted channels (Dolev et al., DISC'11, cited as [9]): an
//! adversary may disrupt up to `t` channels per slot. Experiments A2 uses
//! these to probe the robustness of the aggregation structure.

use crate::rng::mix64;
use std::collections::HashMap;

/// A channel-jamming specification.
#[derive(Debug, Clone, PartialEq)]
pub enum JamSpec {
    /// Jam a fixed channel for the slot interval `[from, to)` with the given
    /// interference power at every listener.
    Fixed {
        /// Channel index to jam.
        channel: u16,
        /// First jammed slot.
        from: u64,
        /// One past the last jammed slot.
        to: u64,
        /// Interference power added at every listener on the channel.
        power: f64,
    },
    /// Each slot, jam `t` channels chosen pseudo-randomly (seeded, hence
    /// reproducible) out of `total` channels — the *t-disrupted* adversary.
    Random {
        /// Number of channels disrupted per slot.
        t: u16,
        /// Total number of channels the adversary picks from.
        total: u16,
        /// Interference power added on disrupted channels.
        power: f64,
        /// Adversary seed.
        seed: u64,
    },
}

impl JamSpec {
    /// Jamming power this spec contributes on `channel` at `slot`.
    pub fn power_at(&self, channel: u16, slot: u64) -> f64 {
        match *self {
            JamSpec::Fixed {
                channel: ch,
                from,
                to,
                power,
            } => {
                if ch == channel && slot >= from && slot < to {
                    power
                } else {
                    0.0
                }
            }
            JamSpec::Random {
                t,
                total,
                power,
                seed,
            } => {
                if total == 0 || channel >= total {
                    return 0.0;
                }
                // Rank channels by a per-slot hash; the t smallest are jammed.
                // This gives exactly t distinct disrupted channels per slot.
                let my_rank = mix64(seed ^ mix64(slot) ^ (channel as u64) << 32);
                let mut smaller = 0u16;
                for c in 0..total {
                    if c == channel {
                        continue;
                    }
                    let r = mix64(seed ^ mix64(slot) ^ (c as u64) << 32);
                    if r < my_rank || (r == my_rank && c < channel) {
                        smaller += 1;
                    }
                }
                if smaller < t {
                    power
                } else {
                    0.0
                }
            }
        }
    }
}

/// A plan of faults injected into a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    crashes: HashMap<u32, u64>,
    joins: HashMap<u32, u64>,
    jams: Vec<JamSpec>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Crash-stops node `node` from slot `slot` onward (it neither
    /// transmits nor listens after that).
    pub fn crash_at(&mut self, node: u32, slot: u64) -> &mut Self {
        self.crashes.insert(node, slot);
        self
    }

    /// Delays node `node`'s join until slot `slot`: before that it is not
    /// part of the network (it neither transmits, listens, nor observes).
    /// Models churn — devices powering on after the run has started.
    pub fn join_at(&mut self, node: u32, slot: u64) -> &mut Self {
        self.joins.insert(node, slot);
        self
    }

    /// Adds a jamming spec.
    pub fn jam(&mut self, spec: JamSpec) -> &mut Self {
        self.jams.push(spec);
        self
    }

    /// Whether `node` is crashed at `slot`.
    pub fn is_crashed(&self, node: u32, slot: u64) -> bool {
        self.crashes.get(&node).is_some_and(|&s| slot >= s)
    }

    /// Whether `node` has joined the network by `slot` (true unless a
    /// [`FaultPlan::join_at`] entry delays it).
    pub fn has_joined(&self, node: u32, slot: u64) -> bool {
        self.joins.get(&node).is_none_or(|&s| slot >= s)
    }

    /// Whether `node` takes no part in `slot` — crashed, or not yet joined.
    pub fn is_absent(&self, node: u32, slot: u64) -> bool {
        self.is_crashed(node, slot) || !self.has_joined(node, slot)
    }

    /// Total jamming power on `channel` at `slot`.
    pub fn jam_power(&self, channel: u16, slot: u64) -> f64 {
        self.jams.iter().map(|j| j.power_at(channel, slot)).sum()
    }

    /// Whether the plan injects anything at all.
    pub fn is_trivial(&self) -> bool {
        self.crashes.is_empty() && self.joins.is_empty() && self.jams.is_empty()
    }

    /// The scheduled crash-stops as `(node, slot)` pairs, sorted by node —
    /// a deterministic view for serialization and reporting.
    pub fn crash_events(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.crashes.iter().map(|(&n, &s)| (n, s)).collect();
        v.sort_unstable();
        v
    }

    /// The scheduled late joins as `(node, slot)` pairs, sorted by node.
    pub fn join_events(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.joins.iter().map(|(&n, &s)| (n, s)).collect();
        v.sort_unstable();
        v
    }

    /// The jamming specs, in insertion order.
    pub fn jams(&self) -> &[JamSpec] {
        &self.jams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan() {
        let p = FaultPlan::none();
        assert!(p.is_trivial());
        assert!(!p.is_crashed(0, 100));
        assert_eq!(p.jam_power(0, 100), 0.0);
    }

    #[test]
    fn crash_takes_effect_at_slot() {
        let mut p = FaultPlan::none();
        p.crash_at(3, 10);
        assert!(!p.is_crashed(3, 9));
        assert!(p.is_crashed(3, 10));
        assert!(p.is_crashed(3, 11));
        assert!(!p.is_crashed(4, 11));
        assert!(!p.is_trivial());
    }

    #[test]
    fn join_takes_effect_at_slot() {
        let mut p = FaultPlan::none();
        p.join_at(2, 5);
        assert!(!p.has_joined(2, 4));
        assert!(p.is_absent(2, 4));
        assert!(p.has_joined(2, 5));
        assert!(!p.is_absent(2, 5));
        // Nodes without an entry are joined from slot 0.
        assert!(p.has_joined(0, 0));
        assert!(!p.is_trivial());
    }

    #[test]
    fn join_then_crash_lifecycle() {
        let mut p = FaultPlan::none();
        p.join_at(7, 10);
        p.crash_at(7, 20);
        assert!(p.is_absent(7, 9), "not yet joined");
        assert!(!p.is_absent(7, 15), "alive between join and crash");
        assert!(p.is_absent(7, 20), "crashed");
    }

    #[test]
    fn fixed_jam_window() {
        let spec = JamSpec::Fixed {
            channel: 2,
            from: 5,
            to: 8,
            power: 1.5,
        };
        assert_eq!(spec.power_at(2, 4), 0.0);
        assert_eq!(spec.power_at(2, 5), 1.5);
        assert_eq!(spec.power_at(2, 7), 1.5);
        assert_eq!(spec.power_at(2, 8), 0.0);
        assert_eq!(spec.power_at(1, 6), 0.0);
    }

    #[test]
    fn random_jam_hits_exactly_t_channels() {
        let spec = JamSpec::Random {
            t: 3,
            total: 16,
            power: 2.0,
            seed: 99,
        };
        for slot in 0..50 {
            let jammed: Vec<u16> = (0..16).filter(|&c| spec.power_at(c, slot) > 0.0).collect();
            assert_eq!(jammed.len(), 3, "slot {slot}: {jammed:?}");
        }
        // Different slots jam different sets (overwhelmingly likely).
        let s0: Vec<u16> = (0..16).filter(|&c| spec.power_at(c, 0) > 0.0).collect();
        let any_diff = (1..20).any(|s| {
            let v: Vec<u16> = (0..16).filter(|&c| spec.power_at(c, s) > 0.0).collect();
            v != s0
        });
        assert!(any_diff);
    }

    #[test]
    fn random_jam_out_of_range_channel() {
        let spec = JamSpec::Random {
            t: 2,
            total: 4,
            power: 2.0,
            seed: 1,
        };
        assert_eq!(spec.power_at(10, 0), 0.0);
    }

    #[test]
    fn event_views_are_sorted_and_complete() {
        let mut p = FaultPlan::none();
        p.crash_at(9, 30);
        p.crash_at(2, 10);
        p.join_at(5, 4);
        p.jam(JamSpec::Fixed {
            channel: 1,
            from: 0,
            to: 5,
            power: 1.0,
        });
        assert_eq!(p.crash_events(), vec![(2, 10), (9, 30)]);
        assert_eq!(p.join_events(), vec![(5, 4)]);
        assert_eq!(p.jams().len(), 1);
    }

    #[test]
    fn plan_sums_jammers() {
        let mut p = FaultPlan::none();
        p.jam(JamSpec::Fixed {
            channel: 0,
            from: 0,
            to: 10,
            power: 1.0,
        });
        p.jam(JamSpec::Fixed {
            channel: 0,
            from: 5,
            to: 10,
            power: 2.0,
        });
        assert_eq!(p.jam_power(0, 3), 1.0);
        assert_eq!(p.jam_power(0, 7), 3.0);
    }
}
