//! Adversarial-interleaving properties of the proactive maintainer.
//!
//! `crates/bench/src/adversary_bench.rs` measures three *concrete*
//! adversaries (tracking jammer, duty-cycled sleepers, correlated
//! fading). From the maintainer's point of view every one of them
//! reduces to the same stream: detector flags (`Degraded`/`Recovered`)
//! interleaved with lifecycle churn (`Crashed`/`Joined`), arriving in an
//! order the adversary — not the maintainer — chooses. These properties
//! quantify over that space directly: *any* such interleaving must leave
//! the structure audit-clean after every proactive repair epoch, and the
//! whole evolution must be a pure function of the interleaving (the
//! determinism contract the adversary bench leans on when it compares
//! reactive and proactive arms over bit-identical worlds).

use mca_core::{
    AlgoConfig, MaintainConfig, NetworkEnv, RepairReport, StructureConfig, StructureMaintainer,
    SubstrateMode,
};
use mca_geom::Deployment;
use mca_radio::{DetectionEvent, NodeEvent, NodeId};
use mca_sinr::SinrParams;
use proptest::prelude::*;
use proptest::TestCaseError;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn world(n: usize, side: f64, seed: u64) -> (NetworkEnv, StructureConfig) {
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let deploy = Deployment::uniform(n, side, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(4, &params, n);
    let mut cfg = StructureConfig::new(algo, seed);
    cfg.substrate = SubstrateMode::Oracle;
    (env, cfg)
}

/// One adversarial op against the maintainer. The `u32` payloads are
/// reduced mod `n` at application time so any draw is a valid node.
#[derive(Debug, Clone, Copy)]
enum Op {
    Degrade(u32),
    Recover(u32),
    Crash(u32),
    Join(u32),
}

/// Degradations dominate the draw, the way a jam blast or a sleep window
/// floods the detector; churn stays a light garnish so the audit
/// tolerances are judging repair quality, not world destruction.
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, 0u32..u32::MAX).prop_map(|(sel, raw)| match sel {
        0..=3 => Op::Degrade(raw),
        4 | 5 => Op::Recover(raw),
        6 => Op::Crash(raw),
        _ => Op::Join(raw),
    })
}

/// Applies `ops` epoch by epoch, repairing proactively after each chunk.
/// Returns the per-epoch repair reports and the final flag set.
fn evolve(
    env: &NetworkEnv,
    cfg: StructureConfig,
    ops: &[Op],
    epoch_len: usize,
    seed: u64,
) -> Result<(Vec<RepairReport>, Vec<u32>), TestCaseError> {
    let n = env.positions.len() as u32;
    let mut m = StructureMaintainer::build(env, cfg, MaintainConfig::default(), None);
    let mut down: Vec<bool> = vec![false; n as usize];
    let mut downs = 0usize;
    let mut reports = Vec::new();
    for (e, chunk) in ops.chunks(epoch_len.max(1)).enumerate() {
        let now = (e as u64 + 1) * 50;
        for (k, op) in chunk.iter().enumerate() {
            let slot = now - 50 + k as u64;
            match *op {
                Op::Degrade(raw) => m.observe_detection(&DetectionEvent::Degraded {
                    node: NodeId(raw % n),
                    slot,
                    score: 0.1,
                    since: slot.saturating_sub(5),
                }),
                Op::Recover(raw) => m.observe_detection(&DetectionEvent::Recovered {
                    node: NodeId(raw % n),
                    slot,
                    score: 0.9,
                }),
                // Cap concurrent downs at n/8 so the audit judges the
                // repair, not a world with half its nodes missing.
                Op::Crash(raw) => {
                    let id = raw % n;
                    if !down[id as usize] && downs < n as usize / 8 {
                        down[id as usize] = true;
                        downs += 1;
                        m.observe(&NodeEvent::Crashed {
                            node: NodeId(id),
                            slot,
                        });
                    }
                }
                Op::Join(raw) => {
                    let id = raw % n;
                    if down[id as usize] {
                        down[id as usize] = false;
                        downs -= 1;
                        m.observe(&NodeEvent::Joined {
                            node: NodeId(id),
                            slot,
                        });
                    }
                }
            }
        }
        let report = m.repair_at(env, seed ^ e as u64, now);
        let audit = m.audit(env);
        if let Err(msg) = audit.check(&m.tolerances()) {
            return Err(TestCaseError::fail(format!(
                "epoch {e}: structure audit failed after proactive repair: {msg}"
            )));
        }
        reports.push(report);
    }
    Ok((reports, m.flagged_nodes()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any flag/recover/crash/join interleaving, chunked into epochs of
    /// any size, leaves the structure audit-clean after every proactive
    /// repair — the core robustness claim behind the adversary bench.
    #[test]
    fn random_interleavings_stay_audit_clean_under_proactive_repair(
        world_seed in 0u64..1_000,
        repair_seed in 0u64..u64::MAX,
        n in 50usize..90,
        epoch_len in 1usize..12,
        ops in proptest::collection::vec(op_strategy(), 1..48),
    ) {
        let (env, cfg) = world(n, 10.0, world_seed);
        evolve(&env, cfg, &ops, epoch_len, repair_seed)?;
    }

    /// The evolution is a pure function of the interleaving: rebuilding
    /// the same world and replaying the same ops yields bit-identical
    /// repair reports and the same final flag set.
    #[test]
    fn interleaved_evolution_is_deterministic(
        world_seed in 0u64..1_000,
        repair_seed in 0u64..u64::MAX,
        ops in proptest::collection::vec(op_strategy(), 1..32),
    ) {
        let (env, cfg) = world(70, 10.0, world_seed);
        let first = evolve(&env, cfg, &ops, 8, repair_seed)?;
        let (env2, cfg2) = world(70, 10.0, world_seed);
        let second = evolve(&env2, cfg2, &ops, 8, repair_seed)?;
        prop_assert_eq!(first, second, "replaying the interleaving diverged");
    }
}

/// Flag bookkeeping mechanics, pinned without randomness: a degradation
/// flags only live nodes, a recovery clears the flag, and a crash retires
/// it so dead nodes never queue proactive work.
#[test]
fn flags_track_liveness_transitions() {
    let (env, cfg) = world(60, 10.0, 42);
    let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
    let degraded = |node: u32, slot: u64| DetectionEvent::Degraded {
        node: NodeId(node),
        slot,
        score: 0.2,
        since: slot.saturating_sub(3),
    };
    m.observe_detection(&degraded(5, 10));
    assert!(m.is_flagged(5));
    m.observe_detection(&DetectionEvent::Recovered {
        node: NodeId(5),
        slot: 20,
        score: 0.9,
    });
    assert!(!m.is_flagged(5), "recovery must clear the flag");

    m.observe(&NodeEvent::Crashed {
        node: NodeId(7),
        slot: 25,
    });
    m.observe_detection(&degraded(7, 30));
    assert!(!m.is_flagged(7), "dead nodes take no proactive work");
}
